#include "service/fleet/fleet.hpp"

#include <algorithm>
#include <string>

namespace rsqp
{

namespace
{

std::string
coreSeries(const char* family, std::size_t core)
{
    return std::string(family) + "{core=\"" + std::to_string(core) +
           "\"}";
}

} // namespace

SolverFleet::SolverFleet(const FleetConfig& config,
                         std::size_t default_cache_capacity,
                         unsigned legacy_concurrency,
                         telemetry::MetricsRegistry& registry)
    : config_(config),
      slots_(config.slotsPerCore != 0
                 ? config.slotsPerCore
                 : (config.coreCount <= 1
                        ? std::max(1u, legacy_concurrency)
                        : 1u)),
      interleave_(config.coreCount > 1
                      ? std::max(1u, config.interleaveWidth)
                      : 1u),
      scheduler_(config.policy, std::max(1u, config.coreCount),
                 config.affinityQueueBound),
      cores_(std::max(1u, config.coreCount))
{
    const std::size_t partitionCapacity =
        config.cacheCapacityPerCore != 0 ? config.cacheCapacityPerCore
                                         : default_cache_capacity;
    registry
        .gauge("rsqp_fleet_cores",
               "Simulated solver cores behind the service")
        .set(static_cast<std::int64_t>(cores_.size()));
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        Core& core = cores_[i];
        core.cache =
            std::make_shared<CustomizationCache>(partitionCapacity);
        core.jobsTotal = &registry.counter(
            coreSeries("rsqp_fleet_core_jobs_total", i),
            "Jobs executed on this core");
        core.streamsTotal = &registry.counter(
            coreSeries("rsqp_fleet_core_streams_total", i),
            "Instruction streams dispatched to this core");
        core.interleavedTotal = &registry.counter(
            coreSeries("rsqp_fleet_core_interleaved_jobs_total", i),
            "Jobs that ran fused into a multi-QP stream");
        core.busyNsTotal = &registry.counter(
            coreSeries("rsqp_fleet_core_busy_ns_total", i),
            "Nanoseconds streams held this core");
        core.queueDepth = &registry.gauge(
            coreSeries("rsqp_fleet_core_queue_depth", i),
            "Ready sessions placed on this core");
        core.utilization = &registry.gauge(
            coreSeries("rsqp_fleet_core_utilization_percent", i),
            "Busy time over wall time per run slot");
        core.cacheHits = &registry.gauge(
            coreSeries("rsqp_fleet_core_cache_hits", i),
            "Customization-cache hits in this core's partition");
    }
}

std::vector<CoreLoad>
SolverFleet::loads() const
{
    std::vector<CoreLoad> loads(cores_.size());
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        loads[i].queuedSessions = cores_[i].ready.size();
        loads[i].runningStreams = cores_[i].running;
    }
    return loads;
}

std::size_t
SolverFleet::placeSession(const StructureFingerprint& fp)
{
    return scheduler_.place(fp, loads());
}

void
SolverFleet::enqueueReady(std::size_t core, SessionId id,
                          bool small_job)
{
    cores_[core].ready.emplace_back(id, small_job);
}

std::vector<SessionId>
SolverFleet::popStream(std::size_t core)
{
    Core& state = cores_[core];
    std::vector<SessionId> stream;
    if (state.ready.empty())
        return stream;
    // A large head job gets its own stream; a small head job pulls in
    // consecutive small successors up to the interleave width. Only
    // consecutive ones: skipping over a large job would reorder the
    // core's queue and starve it.
    const bool fuse = interleave_ > 1 && state.ready.front().second;
    const std::size_t width = fuse ? interleave_ : 1;
    while (stream.size() < width && !state.ready.empty() &&
           (stream.empty() || state.ready.front().second)) {
        stream.push_back(state.ready.front().first);
        state.ready.pop_front();
    }
    return stream;
}

void
SolverFleet::onStreamLaunched(std::size_t core, std::size_t jobs)
{
    Core& state = cores_[core];
    ++state.running;
    ++state.streams;
    state.streamsTotal->increment();
    if (jobs > 1) {
        state.interleavedJobs += static_cast<Count>(jobs);
        state.interleavedTotal->add(jobs);
    }
}

void
SolverFleet::onJobExecuted(std::size_t core, bool interleaved,
                           double device_seconds)
{
    (void)interleaved;
    Core& state = cores_[core];
    ++state.jobs;
    state.deviceSeconds += device_seconds;
    state.jobsTotal->increment();
}

void
SolverFleet::onStreamFinished(std::size_t core, double busy_seconds)
{
    Core& state = cores_[core];
    --state.running;
    state.busySeconds += busy_seconds;
    state.busyNsTotal->add(
        static_cast<std::uint64_t>(busy_seconds * 1e9));
}

CustomizationCacheStats
SolverFleet::aggregateCacheStats() const
{
    CustomizationCacheStats total;
    for (const Core& core : cores_) {
        const CustomizationCacheStats part = core.cache->stats();
        total.hits += part.hits;
        total.misses += part.misses;
        total.evictions += part.evictions;
        total.insertions += part.insertions;
        total.size += part.size;
        total.capacity += part.capacity;
        total.footprintBytes += part.footprintBytes;
    }
    return total;
}

FleetStats
SolverFleet::stats() const
{
    FleetStats stats;
    stats.wallSeconds = wall_.seconds();
    stats.cores.reserve(cores_.size());
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const Core& core = cores_[i];
        CoreStats entry;
        entry.core = i;
        entry.jobs = core.jobs;
        entry.streams = core.streams;
        entry.interleavedJobs = core.interleavedJobs;
        entry.busySeconds = core.busySeconds;
        entry.deviceSeconds = core.deviceSeconds;
        const double denominator = stats.wallSeconds * slots_;
        entry.utilizationPercent =
            denominator > 0.0 ? 100.0 * core.busySeconds / denominator
                              : 0.0;
        entry.readySessions = core.ready.size();
        entry.runningStreams = core.running;
        entry.cache = core.cache->stats();
        stats.cores.push_back(entry);
    }
    return stats;
}

void
SolverFleet::syncGauges() const
{
    const double wall = wall_.seconds();
    for (const Core& core : cores_) {
        core.queueDepth->set(
            static_cast<std::int64_t>(core.ready.size()));
        const double denominator = wall * slots_;
        core.utilization->set(static_cast<std::int64_t>(
            denominator > 0.0
                ? 100.0 * core.busySeconds / denominator + 0.5
                : 0.0));
        core.cacheHits->set(core.cache->stats().hits);
    }
}

} // namespace rsqp
