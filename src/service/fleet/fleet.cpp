#include "service/fleet/fleet.hpp"

#include <algorithm>
#include <string>

namespace rsqp
{

namespace
{

std::string
coreSeries(const char* family, std::size_t core)
{
    return std::string(family) + "{core=\"" + std::to_string(core) +
           "\"}";
}

} // namespace

SolverFleet::SolverFleet(const FleetConfig& config,
                         std::size_t default_cache_capacity,
                         unsigned legacy_concurrency,
                         const AdmissionConfig& admission,
                         telemetry::MetricsRegistry& registry)
    : config_(config),
      slots_(config.slotsPerCore != 0
                 ? config.slotsPerCore
                 : (config.coreCount <= 1
                        ? std::max(1u, legacy_concurrency)
                        : 1u)),
      interleave_(config.coreCount > 1
                      ? std::max(1u, config.interleaveWidth)
                      : 1u),
      scheduler_(config.policy, std::max(1u, config.coreCount),
                 config.affinityQueueBound),
      cores_(std::max(1u, config.coreCount))
{
    for (std::size_t c = 0; c < kAdmissionClassCount; ++c)
        classWeights_[c] = std::max<std::int64_t>(
            1, static_cast<std::int64_t>(admission.classes[c].weight));
    const std::size_t partitionCapacity =
        config.cacheCapacityPerCore != 0 ? config.cacheCapacityPerCore
                                         : default_cache_capacity;
    registry
        .gauge("rsqp_fleet_cores",
               "Simulated solver cores behind the service")
        .set(static_cast<std::int64_t>(cores_.size()));
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        Core& core = cores_[i];
        core.cache =
            std::make_shared<CustomizationCache>(partitionCapacity);
        core.jobsTotal = &registry.counter(
            coreSeries("rsqp_fleet_core_jobs_total", i),
            "Jobs executed on this core");
        core.streamsTotal = &registry.counter(
            coreSeries("rsqp_fleet_core_streams_total", i),
            "Instruction streams dispatched to this core");
        core.interleavedTotal = &registry.counter(
            coreSeries("rsqp_fleet_core_interleaved_jobs_total", i),
            "Jobs that ran fused into a multi-QP stream");
        core.busyNsTotal = &registry.counter(
            coreSeries("rsqp_fleet_core_busy_ns_total", i),
            "Nanoseconds streams held this core");
        core.queueDepth = &registry.gauge(
            coreSeries("rsqp_fleet_core_queue_depth", i),
            "Ready sessions placed on this core");
        core.utilization = &registry.gauge(
            coreSeries("rsqp_fleet_core_utilization_percent", i),
            "Busy time over wall time per run slot");
        core.cacheHits = &registry.gauge(
            coreSeries("rsqp_fleet_core_cache_hits", i),
            "Customization-cache hits in this core's partition");
        core.health = CoreHealthMachine(config_.faultDomain);
        core.faultsTotal = &registry.counter(
            coreSeries("rsqp_fleet_core_faults_total", i),
            "Injected faults delivered to this core");
        core.stateGauge = &registry.gauge(
            coreSeries("rsqp_fleet_core_state", i),
            "Core health (0 healthy, 1 degraded, 2 quarantined, "
            "3 recovering)");
    }
    failoversTotal_ = &registry.counter(
        "rsqp_fleet_failovers_total",
        "Jobs re-placed onto another core after a core fault");
    quarantinesTotal_ = &registry.counter(
        "rsqp_fleet_quarantines_total",
        "Times a core was fenced off the fleet");
    readmissionsTotal_ = &registry.counter(
        "rsqp_fleet_readmissions_total",
        "Quarantined cores readmitted by a successful probe");
    probesTotal_ =
        &registry.counter("rsqp_fleet_probes_total",
                          "Readmission probes attempted");
    invalidationsTotal_ = &registry.counter(
        "rsqp_fleet_partition_invalidations_total",
        "Cache partitions cleared on quarantine");
}

std::vector<CoreLoad>
SolverFleet::loads() const
{
    std::vector<CoreLoad> loads(cores_.size());
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        loads[i].queuedSessions = readyDepth(i);
        loads[i].runningStreams = cores_[i].running;
        loads[i].available = cores_[i].health.dispatchable();
    }
    return loads;
}

std::size_t
SolverFleet::availableCoreCount() const
{
    std::size_t available = 0;
    for (const Core& core : cores_)
        if (core.health.dispatchable())
            ++available;
    return available;
}

std::size_t
SolverFleet::placeSession(const StructureFingerprint& fp)
{
    return scheduler_.place(fp, loads());
}

void
SolverFleet::enqueueReady(std::size_t core, SessionId id,
                          AdmissionClass cls, bool small_job)
{
    cores_[core].ready[static_cast<std::size_t>(cls)].push_back(
        ReadyEntry{id, cls, small_job});
}

std::size_t
SolverFleet::readyDepth(std::size_t core) const
{
    std::size_t depth = 0;
    for (const auto& queue : cores_[core].ready)
        depth += queue.size();
    return depth;
}

std::vector<SessionId>
SolverFleet::popStream(std::size_t core)
{
    Core& state = cores_[core];
    std::vector<SessionId> stream;
    // Smooth weighted round-robin across the classes that actually
    // have work: every waiting class earns its weight, the richest
    // class dispatches and pays back the total earned this round.
    // Over a contended stretch each class receives weight/sum of the
    // dispatch decisions; an idle class accrues nothing, so it cannot
    // bank credit and burst-starve the others later.
    std::int64_t earned = 0;
    std::size_t chosen = kAdmissionClassCount;
    for (std::size_t c = 0; c < kAdmissionClassCount; ++c) {
        if (state.ready[c].empty())
            continue;
        state.wrrCredit[c] += classWeights_[c];
        earned += classWeights_[c];
        // Strictly-greater keeps ties on the most urgent class.
        if (chosen == kAdmissionClassCount ||
            state.wrrCredit[c] > state.wrrCredit[chosen])
            chosen = c;
    }
    if (chosen == kAdmissionClassCount)
        return stream;
    state.wrrCredit[chosen] -= earned;
    std::deque<ReadyEntry>& queue = state.ready[chosen];
    // A large head job gets its own stream; a small head job pulls in
    // consecutive small successors up to the interleave width. Only
    // consecutive ones (within the same class): skipping over a large
    // job would reorder the class's queue and starve it.
    const bool fuse = interleave_ > 1 && queue.front().small;
    const std::size_t width = fuse ? interleave_ : 1;
    while (stream.size() < width && !queue.empty() &&
           (stream.empty() || queue.front().small)) {
        stream.push_back(queue.front().id);
        queue.pop_front();
    }
    return stream;
}

void
SolverFleet::onStreamLaunched(std::size_t core, std::size_t jobs)
{
    Core& state = cores_[core];
    ++state.running;
    ++state.streams;
    state.streamsTotal->increment();
    if (jobs > 1) {
        state.interleavedJobs += static_cast<Count>(jobs);
        state.interleavedTotal->add(jobs);
    }
}

void
SolverFleet::quarantineSideEffects(std::size_t core)
{
    Core& state = cores_[core];
    // A failed core's resident artifacts are suspect; drop the whole
    // partition so readmitted traffic re-customizes from scratch, and
    // so the re-spilled traffic's working set lives on one failover
    // core instead of straddling a dead partition.
    state.cache->clear();
    state.degradeJobsLeft = 0;
    state.slowdown = 1.0;
    ++partitionInvalidations_;
    invalidationsTotal_->increment();
    quarantinesTotal_->increment();
    syncStateGauge(core);
}

FleetFaultAction
SolverFleet::onJobStarting(std::size_t core)
{
    Core& state = cores_[core];
    const Count coreSeq = state.jobsStarted++;
    const Count fleetSeq = fleetJobsStarted_++;
    FleetFaultAction action;
    const FleetFaultEvent* event =
        config_.faultInjector
            ? config_.faultInjector->onJobStart(core, coreSeq,
                                                fleetSeq)
            : nullptr;
    if (event != nullptr) {
        ++state.faults;
        state.faultsTotal->increment();
        switch (event->kind) {
        case FleetFaultKind::KillCore:
            state.health.onFatalFault(virtualNow_);
            quarantineSideEffects(core);
            action.kind = FleetFaultAction::Kind::FailStream;
            return action;
        case FleetFaultKind::HangCore:
            // The stream sat on the stalled core until the watchdog
            // fired: that time passed for the whole fleet.
            virtualNow_ += config_.faultDomain.stallWatchdogSeconds;
            state.health.onFatalFault(virtualNow_);
            quarantineSideEffects(core);
            action.kind = FleetFaultAction::Kind::FailStream;
            action.hang = true;
            return action;
        case FleetFaultKind::DegradeCore:
            if (state.health.onDegradeFault(virtualNow_)) {
                // Circuit breaker: enough consecutive degrades reads
                // as a failing device, not a noisy neighbor.
                quarantineSideEffects(core);
                action.kind = FleetFaultAction::Kind::FailStream;
                return action;
            }
            syncStateGauge(core);
            state.degradeJobsLeft = std::max<Count>(
                static_cast<Count>(1), event->durationJobs);
            state.slowdown = std::max<Real>(1.0,
                                            event->slowdownFactor);
            break;
        }
    }
    if (state.degradeJobsLeft > 0) {
        --state.degradeJobsLeft;
        ++state.degradedJobs;
        action.kind = FleetFaultAction::Kind::Degrade;
        action.slowdown = state.slowdown;
    }
    return action;
}

void
SolverFleet::onJobExecuted(std::size_t core, bool interleaved,
                           double device_seconds, bool degraded)
{
    (void)interleaved;
    Core& state = cores_[core];
    ++state.jobs;
    ++jobsExecuted_;
    state.deviceSeconds += device_seconds;
    virtualNow_ += device_seconds;
    state.jobsTotal->increment();
    if (!degraded) {
        const CoreHealth before = state.health.health();
        state.health.onCleanJob();
        if (state.health.health() != before)
            syncStateGauge(core);
    }
}

std::vector<ReadyEntry>
SolverFleet::drainReady(std::size_t core)
{
    std::vector<ReadyEntry> drained;
    for (auto& queue : cores_[core].ready) {
        drained.insert(drained.end(), queue.begin(), queue.end());
        queue.clear();
    }
    return drained;
}

void
SolverFleet::recordFailover(std::size_t core, Count jobs)
{
    cores_[core].failedOverJobs += jobs;
    failovers_ += jobs;
    failoversTotal_->add(static_cast<std::uint64_t>(jobs));
}

std::size_t
SolverFleet::runReadmissionProbes()
{
    std::size_t readmitted = 0;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        Core& state = cores_[i];
        if (!state.health.probeDue(virtualNow_))
            continue;
        state.health.recordProbe();
        probesTotal_->increment();
        const bool success =
            !config_.faultInjector ||
            config_.faultInjector->probeSucceeds(
                i, state.health.probeIndex());
        if (success) {
            state.health.onProbeSucceeded();
            readmissionsTotal_->increment();
            ++readmitted;
        } else {
            state.health.onProbeFailed(virtualNow_);
        }
        syncStateGauge(i);
    }
    return readmitted;
}

bool
SolverFleet::advanceVirtualToNextProbe()
{
    bool any = false;
    Real earliest = 0.0;
    for (const Core& core : cores_) {
        if (core.health.health() != CoreHealth::Quarantined)
            continue;
        if (!any || core.health.nextProbeAt() < earliest)
            earliest = core.health.nextProbeAt();
        any = true;
    }
    if (!any)
        return false;
    if (earliest > virtualNow_)
        virtualNow_ = earliest;
    return true;
}

double
SolverFleet::secondsToNextProbe() const
{
    bool any = false;
    Real earliest = 0.0;
    for (const Core& core : cores_) {
        if (core.health.health() != CoreHealth::Quarantined)
            continue;
        if (!any || core.health.nextProbeAt() < earliest)
            earliest = core.health.nextProbeAt();
        any = true;
    }
    if (!any || earliest <= virtualNow_)
        return 0.0;
    return earliest - virtualNow_;
}

double
SolverFleet::averageJobDeviceSeconds() const
{
    if (jobsExecuted_ == 0)
        return 0.0;
    double device = 0.0;
    for (const Core& core : cores_)
        device += core.deviceSeconds;
    return device / static_cast<double>(jobsExecuted_);
}

void
SolverFleet::onStreamFinished(std::size_t core, double busy_seconds)
{
    Core& state = cores_[core];
    --state.running;
    state.busySeconds += busy_seconds;
    state.busyNsTotal->add(
        static_cast<std::uint64_t>(busy_seconds * 1e9));
}

CustomizationCacheStats
SolverFleet::aggregateCacheStats() const
{
    CustomizationCacheStats total;
    for (const Core& core : cores_) {
        const CustomizationCacheStats part = core.cache->stats();
        total.hits += part.hits;
        total.misses += part.misses;
        total.evictions += part.evictions;
        total.insertions += part.insertions;
        total.size += part.size;
        total.capacity += part.capacity;
        total.footprintBytes += part.footprintBytes;
    }
    return total;
}

FleetStats
SolverFleet::stats() const
{
    FleetStats stats;
    stats.wallSeconds = wall_.seconds();
    stats.virtualSeconds = virtualNow_;
    stats.failovers = failovers_;
    stats.partitionInvalidations = partitionInvalidations_;
    stats.cores.reserve(cores_.size());
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const Core& core = cores_[i];
        CoreStats entry;
        entry.core = i;
        entry.jobs = core.jobs;
        entry.streams = core.streams;
        entry.interleavedJobs = core.interleavedJobs;
        entry.busySeconds = core.busySeconds;
        entry.deviceSeconds = core.deviceSeconds;
        const double denominator = stats.wallSeconds * slots_;
        entry.utilizationPercent =
            denominator > 0.0 ? 100.0 * core.busySeconds / denominator
                              : 0.0;
        entry.readySessions = readyDepth(i);
        entry.runningStreams = core.running;
        entry.cache = core.cache->stats();
        entry.health = core.health.health();
        entry.faults = core.faults;
        entry.quarantines = core.health.quarantines();
        entry.probes = core.health.probesAttempted();
        entry.readmissions = core.health.readmissions();
        entry.failedOverJobs = core.failedOverJobs;
        entry.degradedJobs = core.degradedJobs;
        stats.quarantines += entry.quarantines;
        stats.probes += entry.probes;
        stats.readmissions += entry.readmissions;
        stats.cores.push_back(entry);
    }
    return stats;
}

void
SolverFleet::syncGauges() const
{
    const double wall = wall_.seconds();
    for (std::size_t i = 0; i < cores_.size(); ++i) {
        const Core& core = cores_[i];
        core.queueDepth->set(
            static_cast<std::int64_t>(readyDepth(i)));
        const double denominator = wall * slots_;
        core.utilization->set(static_cast<std::int64_t>(
            denominator > 0.0
                ? 100.0 * core.busySeconds / denominator + 0.5
                : 0.0));
        core.cacheHits->set(core.cache->stats().hits);
        syncStateGauge(i);
    }
}

void
SolverFleet::syncStateGauge(std::size_t core) const
{
    cores_[core].stateGauge->set(static_cast<std::int64_t>(
        cores_[core].health.health()));
}

} // namespace rsqp
