/**
 * @file
 * Per-core health model of the solver fleet — the fault-domain state
 * machine behind failover and quarantine:
 *
 *     Healthy -> Degraded    (degrade fault delivered)
 *     Healthy/Degraded -> Quarantined
 *                            (kill or hang fault, or the circuit
 *                             breaker trips on consecutive faults)
 *     Quarantined -> Recovering
 *                            (a readmission probe succeeds)
 *     Recovering/Degraded -> Healthy
 *                            (enough consecutive clean jobs)
 *
 * Quarantined cores accept no work; their readmission probes run on
 * an exponential-backoff ladder over the fleet's *virtual clock*
 * (accumulated modeled device-seconds plus stall-watchdog charges),
 * so the whole schedule is deterministic and restart-stable: the same
 * workload and fault schedule quarantine and readmit at the same
 * virtual instants on any host, at any load.
 */

#ifndef RSQP_SERVICE_FLEET_HEALTH_HPP
#define RSQP_SERVICE_FLEET_HEALTH_HPP

#include "common/types.hpp"

namespace rsqp
{

/** Health of one solver core (gauge values are the enum order). */
enum class CoreHealth
{
    Healthy = 0,
    Degraded = 1,    ///< answering, but slowed; still dispatchable
    Quarantined = 2, ///< fenced off; waiting on readmission probes
    Recovering = 3,  ///< readmitted; proving itself with clean jobs
};

/** Printable health name ("healthy", "degraded", ...). */
const char* toString(CoreHealth health);

/** Fault-domain knobs, fixed at fleet construction. */
struct FaultDomainConfig
{
    /**
     * Virtual seconds a hung core stalls its stream before the
     * watchdog fires. Charged against the deadline budget of every
     * failed-over job in the stream and advanced on the virtual
     * clock.
     */
    Real stallWatchdogSeconds = 0.05;
    /** Consecutive non-fatal faults before the breaker quarantines. */
    unsigned circuitBreakerFaults = 3;
    /** Virtual delay before a quarantined core's first probe. */
    Real backoffBaseSeconds = 0.01;
    /** Backoff multiplier per failed probe. */
    Real backoffFactor = 2.0;
    /** Backoff ceiling (virtual seconds). */
    Real backoffMaxSeconds = 10.0;
    /** Clean jobs a Recovering/Degraded core needs to be Healthy. */
    Count recoveryJobs = 2;
};

/**
 * The per-core state machine (see file comment). Pure bookkeeping —
 * no clocks, no threads; the fleet feeds it virtual timestamps and
 * fault/probe outcomes under the service lock.
 */
class CoreHealthMachine
{
  public:
    explicit CoreHealthMachine(FaultDomainConfig config =
                                   FaultDomainConfig());

    CoreHealth health() const { return health_; }

    /** Quarantined cores must not receive streams. */
    bool dispatchable() const
    {
        return health_ != CoreHealth::Quarantined;
    }

    /** A kill/hang fault landed at virtual time `now`: quarantine and
     *  arm the first readmission probe. */
    void onFatalFault(Real now);

    /**
     * A degrade fault landed at virtual time `now`. Returns true when
     * the circuit breaker trips (consecutive faults reached the
     * configured bound) — the core is then Quarantined exactly as for
     * a fatal fault; otherwise it is Degraded.
     */
    bool onDegradeFault(Real now);

    /** A job ran to completion unslowed and unfaulted. */
    void onCleanJob();

    /** Whether the next readmission probe is due at virtual `now`. */
    bool probeDue(Real now) const
    {
        return health_ == CoreHealth::Quarantined && now >= nextProbeAt_;
    }

    /** The probe failed: push the next one out exponentially. */
    void onProbeFailed(Real now);

    /** The probe succeeded: readmit into Recovering. */
    void onProbeSucceeded();

    /** Virtual deadline of the next probe (Quarantined only). */
    Real nextProbeAt() const { return nextProbeAt_; }

    /** 0-based index of the next probe within this quarantine. */
    Count probeIndex() const { return probeIndex_; }

    Count quarantines() const { return quarantines_; }
    Count readmissions() const { return readmissions_; }
    Count probesAttempted() const { return probes_; }

    /** Count one attempted probe (fleet calls before the oracle). */
    void recordProbe() { ++probes_; }

  private:
    void quarantineAt(Real now);

    /** Current backoff delay: base * factor^probeIndex, capped. */
    Real backoffDelay() const;

    FaultDomainConfig config_;
    CoreHealth health_ = CoreHealth::Healthy;
    unsigned consecutiveFaults_ = 0;
    Count cleanJobs_ = 0;    ///< consecutive, since last fault/readmit
    Real nextProbeAt_ = 0.0;
    Count probeIndex_ = 0;   ///< within the current quarantine
    Count quarantines_ = 0;
    Count readmissions_ = 0;
    Count probes_ = 0;
};

} // namespace rsqp

#endif // RSQP_SERVICE_FLEET_HEALTH_HPP
