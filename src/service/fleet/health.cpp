#include "service/fleet/health.hpp"

#include <algorithm>

namespace rsqp
{

const char*
toString(CoreHealth health)
{
    switch (health) {
      case CoreHealth::Healthy: return "healthy";
      case CoreHealth::Degraded: return "degraded";
      case CoreHealth::Quarantined: return "quarantined";
      case CoreHealth::Recovering: return "recovering";
    }
    return "unknown";
}

CoreHealthMachine::CoreHealthMachine(FaultDomainConfig config)
    : config_(config)
{
}

Real
CoreHealthMachine::backoffDelay() const
{
    Real delay = config_.backoffBaseSeconds;
    for (Count i = 0; i < probeIndex_; ++i) {
        delay *= config_.backoffFactor;
        if (delay >= config_.backoffMaxSeconds)
            return config_.backoffMaxSeconds;
    }
    return std::min(delay, config_.backoffMaxSeconds);
}

void
CoreHealthMachine::quarantineAt(Real now)
{
    health_ = CoreHealth::Quarantined;
    ++quarantines_;
    consecutiveFaults_ = 0;
    cleanJobs_ = 0;
    probeIndex_ = 0;
    nextProbeAt_ = now + backoffDelay();
}

void
CoreHealthMachine::onFatalFault(Real now)
{
    quarantineAt(now);
}

bool
CoreHealthMachine::onDegradeFault(Real now)
{
    cleanJobs_ = 0;
    ++consecutiveFaults_;
    if (consecutiveFaults_ >= config_.circuitBreakerFaults) {
        quarantineAt(now);
        return true;
    }
    health_ = CoreHealth::Degraded;
    return false;
}

void
CoreHealthMachine::onCleanJob()
{
    consecutiveFaults_ = 0;
    if (health_ != CoreHealth::Degraded &&
        health_ != CoreHealth::Recovering)
        return;
    if (++cleanJobs_ >= config_.recoveryJobs) {
        health_ = CoreHealth::Healthy;
        cleanJobs_ = 0;
    }
}

void
CoreHealthMachine::onProbeFailed(Real now)
{
    ++probeIndex_;
    nextProbeAt_ = now + backoffDelay();
}

void
CoreHealthMachine::onProbeSucceeded()
{
    health_ = CoreHealth::Recovering;
    ++readmissions_;
    cleanJobs_ = 0;
    probeIndex_ = 0;
}

} // namespace rsqp
