/**
 * @file
 * Placement scheduler of the multi-core device fleet: which solver
 * core gets the next ready session.
 *
 * The real deployment packs 16-56 solver cores per FPGA; which core a
 * job lands on decides whether the per-structure customization
 * artifact is already resident. The Affinity policy therefore maps a
 * structure fingerprint to a *stable* preferred core — a pure function
 * of the fingerprint, so identical structures route identically across
 * service restarts — and falls back to the least-loaded core only
 * when the preferred core's queue exceeds its bound (hot structure,
 * saturated core: better a cold customization than an idle fleet).
 */

#ifndef RSQP_SERVICE_FLEET_PLACEMENT_HPP
#define RSQP_SERVICE_FLEET_PLACEMENT_HPP

#include <cstddef>
#include <vector>

#include "service/fingerprint.hpp"

namespace rsqp
{

/** How the fleet routes ready sessions onto solver cores. */
enum class PlacementPolicy
{
    Affinity,    ///< fingerprint-stable core, least-loaded overflow
    LeastLoaded, ///< always the core with the fewest waiting jobs
    RoundRobin,  ///< rotate, ignoring structure and load
};

/** Printable policy name ("affinity", "least_loaded", "round_robin"). */
const char* toString(PlacementPolicy policy);

/** Load summary of one core, as seen by the placement decision. */
struct CoreLoad
{
    std::size_t queuedSessions = 0; ///< ready sessions waiting
    unsigned runningStreams = 0;    ///< instruction streams in flight
    /** Quarantined cores are unavailable: no policy may pick them.
     *  (When *no* core is available the caller must hold the work
     *  back; place() then falls back to the affinity target so its
     *  return value stays total.) */
    bool available = true;
};

/**
 * The placement decision. Pure apart from the round-robin cursor: the
 * same (policy, fingerprint, loads) always yields the same core, which
 * the determinism tests — and restart-stable affinity — rely on.
 */
class PlacementScheduler
{
  public:
    PlacementScheduler(PlacementPolicy policy, std::size_t core_count,
                       std::size_t affinity_queue_bound);

    /** Pick the core for a session whose head job has fingerprint
     *  `fp`, given the current per-core loads (size == coreCount). */
    std::size_t place(const StructureFingerprint& fp,
                      const std::vector<CoreLoad>& loads);

    /**
     * The affinity target: a pure function of the fingerprint digest,
     * identical across processes and restarts. Non-cacheable
     * fingerprints have no artifact to be hot and get no preference.
     */
    static std::size_t preferredCore(const StructureFingerprint& fp,
                                     std::size_t core_count);

    /**
     * The affinity target restricted to an explicit candidate set —
     * the deterministic *re-spill* used when the preferred core is
     * quarantined: the same fingerprint maps to the same failover
     * core for as long as the survivor set is the same, so a hot
     * structure's traffic re-warms one partition instead of smearing
     * across the fleet. `candidates` must be non-empty and sorted
     * ascending (the order the fleet naturally produces).
     */
    static std::size_t
    preferredAmong(const StructureFingerprint& fp,
                   const std::vector<std::size_t>& candidates);

    PlacementPolicy policy() const { return policy_; }
    std::size_t coreCount() const { return coreCount_; }
    std::size_t affinityQueueBound() const { return bound_; }

  private:
    /** Lowest-index core among those with minimal total load. */
    std::size_t leastLoaded(const std::vector<CoreLoad>& loads) const;

    PlacementPolicy policy_;
    std::size_t coreCount_;
    std::size_t bound_;
    std::size_t nextRoundRobin_ = 0;
};

} // namespace rsqp

#endif // RSQP_SERVICE_FLEET_PLACEMENT_HPP
