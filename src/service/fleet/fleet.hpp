/**
 * @file
 * The multi-core device fleet: N simulated solver cores behind one
 * service front-end, mirroring the 16-56 solver-core FPGA deployments
 * the paper's economics assume.
 *
 * Each core owns its slice of the serving state: a private
 * customization-cache partition (an artifact is hot on exactly the
 * core its structures route to), bounded run slots (a core is one
 * device: one instruction stream at a time unless configured wider),
 * a ready queue of sessions placed on it, and per-core metrics
 * (jobs, streams, busy time, utilization, queue depth, cache hits)
 * registered as labeled series in the service's metrics registry.
 *
 * Co-scheduling models `mib_sched.py`'s temporal instruction
 * interleaving: when several *small* QPs are queued on one core, the
 * fleet fuses up to `interleaveWidth` of them into one instruction
 * stream — one dispatch, one run-slot occupancy window — instead of
 * cycling the core per tiny job.
 *
 * The fleet is a passive component: every method must be called under
 * the owning SolverService's lock. Execution still happens on the
 * shared thread pool; cores model placement and occupancy, not
 * threads.
 */

#ifndef RSQP_SERVICE_FLEET_FLEET_HPP
#define RSQP_SERVICE_FLEET_FLEET_HPP

#include <deque>
#include <memory>
#include <vector>

#include "common/timer.hpp"
#include "service/customization_cache.hpp"
#include "service/fleet/placement.hpp"
#include "telemetry/metrics.hpp"

namespace rsqp
{

/** Handle of one open session (never reused within a service). */
using SessionId = Count;

/** Fleet shape and placement behavior, fixed at service construction. */
struct FleetConfig
{
    /** Simulated solver cores (>= 1). */
    unsigned coreCount = 1;
    /** How ready sessions are routed onto cores. */
    PlacementPolicy policy = PlacementPolicy::Affinity;
    /**
     * Concurrent instruction streams per core. 0 = auto: with one
     * core, the service's legacy maxConcurrency (exact pre-fleet
     * behavior); with more, 1 — a core is one device.
     */
    unsigned slotsPerCore = 0;
    /** Ready-queue depth beyond which affinity spills to least-loaded. */
    std::size_t affinityQueueBound = 4;
    /** Max small QPs fused into one interleaved instruction stream
     *  (effective only with coreCount > 1; 1 disables fusing). */
    unsigned interleaveWidth = 4;
    /** A job with n + m <= this counts as small (interleavable). */
    Index smallJobThreshold = 128;
    /** Per-core cache partition capacity (0 = the service's
     *  cacheCapacity in every partition). */
    std::size_t cacheCapacityPerCore = 0;
};

/** Point-in-time counters of one solver core. */
struct CoreStats
{
    std::size_t core = 0;
    Count jobs = 0;            ///< jobs executed to completion
    Count streams = 0;         ///< instruction streams dispatched
    Count interleavedJobs = 0; ///< jobs that ran fused with others
    double busySeconds = 0.0;  ///< wall time streams held this core
    /** Simulated device occupancy: sum of the jobs' modeled on-device
     *  run times. Host-load independent, so scaling benches gate on
     *  it instead of wall clock. */
    double deviceSeconds = 0.0;
    double utilizationPercent = 0.0; ///< busy / (wall * slots)
    std::size_t readySessions = 0;   ///< placed, waiting for a slot
    unsigned runningStreams = 0;
    CustomizationCacheStats cache;   ///< this core's partition
};

/** Fleet-wide snapshot: one entry per core. */
struct FleetStats
{
    double wallSeconds = 0.0; ///< since fleet construction
    std::vector<CoreStats> cores;
};

/** The core array + placement state (externally locked; see file
 *  comment). */
class SolverFleet
{
  public:
    /**
     * @param default_cache_capacity Partition capacity when the config
     *        leaves cacheCapacityPerCore at 0.
     * @param legacy_concurrency Run slots of a single-core fleet when
     *        slotsPerCore is auto (the pre-fleet maxConcurrency).
     * @param registry Receives the per-core labeled series; must
     *        outlive the fleet.
     */
    SolverFleet(const FleetConfig& config,
                std::size_t default_cache_capacity,
                unsigned legacy_concurrency,
                telemetry::MetricsRegistry& registry);

    std::size_t coreCount() const { return cores_.size(); }
    unsigned slotsPerCore() const { return slots_; }

    /** This core's customization-cache partition (never null). */
    const std::shared_ptr<CustomizationCache>&
    coreCache(std::size_t core) const
    {
        return cores_[core].cache;
    }

    /** Route a ready session by its head job's fingerprint. */
    std::size_t placeSession(const StructureFingerprint& fp);

    /** Append a placed session to its core's ready queue. */
    void enqueueReady(std::size_t core, SessionId id, bool small_job);

    bool
    hasCapacity(std::size_t core) const
    {
        return cores_[core].running < slots_;
    }

    std::size_t
    readyDepth(std::size_t core) const
    {
        return cores_[core].ready.size();
    }

    /**
     * Pop the sessions forming the next instruction stream of `core`:
     * one session, or — when the head and its successors are small
     * jobs on a multi-core fleet — up to interleaveWidth of them.
     */
    std::vector<SessionId> popStream(std::size_t core);

    /** A stream of `jobs` jobs took a run slot on `core`. */
    void onStreamLaunched(std::size_t core, std::size_t jobs);

    /** One job of a stream on `core` ran to a status, occupying the
     *  simulated device for `device_seconds` of modeled time. */
    void onJobExecuted(std::size_t core, bool interleaved,
                       double device_seconds);

    /** The stream released its slot after `busy_seconds` of wall time. */
    void onStreamFinished(std::size_t core, double busy_seconds);

    /** Sum of every partition's counters (capacity sums too). */
    CustomizationCacheStats aggregateCacheStats() const;

    FleetStats stats() const;

    /** Refresh utilization / queue-depth / cache-hit gauges. */
    void syncGauges() const;

  private:
    struct Core
    {
        /** Ready sessions; bool marks the head job small. */
        std::deque<std::pair<SessionId, bool>> ready;
        unsigned running = 0;    ///< streams holding a slot
        Count jobs = 0;
        Count streams = 0;
        Count interleavedJobs = 0;
        double busySeconds = 0.0;
        double deviceSeconds = 0.0;
        std::shared_ptr<CustomizationCache> cache;

        telemetry::Counter* jobsTotal = nullptr;
        telemetry::Counter* streamsTotal = nullptr;
        telemetry::Counter* interleavedTotal = nullptr;
        telemetry::Counter* busyNsTotal = nullptr;
        telemetry::Gauge* queueDepth = nullptr;
        telemetry::Gauge* utilization = nullptr;
        telemetry::Gauge* cacheHits = nullptr;
    };

    std::vector<CoreLoad> loads() const;

    FleetConfig config_;
    unsigned slots_;
    unsigned interleave_;
    PlacementScheduler scheduler_;
    std::vector<Core> cores_;
    Timer wall_; ///< utilization denominator
};

} // namespace rsqp

#endif // RSQP_SERVICE_FLEET_FLEET_HPP
