/**
 * @file
 * The multi-core device fleet: N simulated solver cores behind one
 * service front-end, mirroring the 16-56 solver-core FPGA deployments
 * the paper's economics assume.
 *
 * Each core owns its slice of the serving state: a private
 * customization-cache partition (an artifact is hot on exactly the
 * core its structures route to), bounded run slots (a core is one
 * device: one instruction stream at a time unless configured wider),
 * per-admission-class ready queues drained by smooth weighted
 * round-robin (so Realtime traffic keeps its configured share of the
 * core even while Batch work is backed up behind it), and per-core
 * metrics (jobs, streams, busy time, utilization, queue depth, cache
 * hits) registered as labeled series in the service's metrics
 * registry.
 *
 * Co-scheduling models `mib_sched.py`'s temporal instruction
 * interleaving: when several *small* QPs are queued on one core, the
 * fleet fuses up to `interleaveWidth` of them into one instruction
 * stream — one dispatch, one run-slot occupancy window — instead of
 * cycling the core per tiny job.
 *
 * The fleet is a passive component: every method must be called under
 * the owning SolverService's lock. Execution still happens on the
 * shared thread pool; cores model placement and occupancy, not
 * threads.
 */

#ifndef RSQP_SERVICE_FLEET_FLEET_HPP
#define RSQP_SERVICE_FLEET_FLEET_HPP

#include <array>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "common/fault_injection.hpp"
#include "common/timer.hpp"
#include "service/admission.hpp"
#include "service/customization_cache.hpp"
#include "service/fleet/health.hpp"
#include "service/fleet/placement.hpp"
#include "telemetry/metrics.hpp"

namespace rsqp
{

/** Handle of one open session (never reused within a service). */
using SessionId = Count;

/** One placed session waiting in a core's ready queue. */
struct ReadyEntry
{
    SessionId id = 0;
    /** Admission class of the session's head job — the weighted-fair
     *  dispatch key. */
    AdmissionClass cls = AdmissionClass::Interactive;
    /** Head job's n + m is under the interleaving threshold. */
    bool small = false;
};

/** Fleet shape and placement behavior, fixed at service construction. */
struct FleetConfig
{
    /** Simulated solver cores (>= 1). */
    unsigned coreCount = 1;
    /** How ready sessions are routed onto cores. */
    PlacementPolicy policy = PlacementPolicy::Affinity;
    /**
     * Concurrent instruction streams per core. 0 = auto: with one
     * core, the service's legacy maxConcurrency (exact pre-fleet
     * behavior); with more, 1 — a core is one device.
     */
    unsigned slotsPerCore = 0;
    /** Ready-queue depth beyond which affinity spills to least-loaded. */
    std::size_t affinityQueueBound = 4;
    /** Max small QPs fused into one interleaved instruction stream
     *  (effective only with coreCount > 1; 1 disables fusing). */
    unsigned interleaveWidth = 4;
    /** A job with n + m <= this counts as small (interleavable). */
    Index smallJobThreshold = 128;
    /** Per-core cache partition capacity (0 = the service's
     *  cacheCapacity in every partition). */
    std::size_t cacheCapacityPerCore = 0;
    /** Health-model knobs: stall watchdog, breaker, probe backoff. */
    FaultDomainConfig faultDomain;
    /**
     * Whole-core fault schedule (chaos tests / bench_chaos). Null =
     * no injected faults; the health model still tracks state. The
     * injector is consulted only under the service lock — give every
     * concurrently running service its own instance.
     */
    std::shared_ptr<FleetFaultInjector> faultInjector;
};

/** What the fault domain decided as a job was about to start. */
struct FleetFaultAction
{
    enum class Kind
    {
        None,       ///< run the job normally
        Degrade,    ///< run it, but inflate its modeled device time
        FailStream, ///< core failed: fail over the rest of the stream
    };
    Kind kind = Kind::None;
    /** FailStream: the core hung and the stall watchdog fired; the
     *  watchdog charge applies to every failed-over job's budget. */
    bool hang = false;
    /** Degrade: modeled-device-time multiplier. */
    Real slowdown = 1.0;
};

/** Point-in-time counters of one solver core. */
struct CoreStats
{
    std::size_t core = 0;
    Count jobs = 0;            ///< jobs executed to completion
    Count streams = 0;         ///< instruction streams dispatched
    Count interleavedJobs = 0; ///< jobs that ran fused with others
    double busySeconds = 0.0;  ///< wall time streams held this core
    /** Simulated device occupancy: sum of the jobs' modeled on-device
     *  run times. Host-load independent, so scaling benches gate on
     *  it instead of wall clock. */
    double deviceSeconds = 0.0;
    double utilizationPercent = 0.0; ///< busy / (wall * slots)
    std::size_t readySessions = 0;   ///< placed, waiting for a slot
    unsigned runningStreams = 0;
    CustomizationCacheStats cache;   ///< this core's partition

    CoreHealth health = CoreHealth::Healthy;
    Count faults = 0;         ///< injected faults delivered here
    Count quarantines = 0;    ///< times this core was fenced off
    Count probes = 0;         ///< readmission probes attempted
    Count readmissions = 0;   ///< probes that succeeded
    Count failedOverJobs = 0; ///< jobs this core lost to failover
    Count degradedJobs = 0;   ///< jobs run at an inflated device time
};

/** Fleet-wide snapshot: one entry per core. */
struct FleetStats
{
    double wallSeconds = 0.0;    ///< since fleet construction
    /** Virtual clock: accumulated modeled device-seconds plus
     *  stall-watchdog charges. Drives probe backoff; deterministic. */
    double virtualSeconds = 0.0;
    Count failovers = 0;         ///< jobs re-placed off failed cores
    Count quarantines = 0;
    Count readmissions = 0;
    Count probes = 0;
    Count partitionInvalidations = 0;
    std::vector<CoreStats> cores;
};

/** The core array + placement state (externally locked; see file
 *  comment). */
class SolverFleet
{
  public:
    /**
     * @param default_cache_capacity Partition capacity when the config
     *        leaves cacheCapacityPerCore at 0.
     * @param legacy_concurrency Run slots of a single-core fleet when
     *        slotsPerCore is auto (the pre-fleet maxConcurrency).
     * @param admission Class weights driving each core's weighted-fair
     *        ready-queue dispatch.
     * @param registry Receives the per-core labeled series; must
     *        outlive the fleet.
     */
    SolverFleet(const FleetConfig& config,
                std::size_t default_cache_capacity,
                unsigned legacy_concurrency,
                const AdmissionConfig& admission,
                telemetry::MetricsRegistry& registry);

    std::size_t coreCount() const { return cores_.size(); }
    unsigned slotsPerCore() const { return slots_; }

    /** This core's customization-cache partition (never null). */
    const std::shared_ptr<CustomizationCache>&
    coreCache(std::size_t core) const
    {
        return cores_[core].cache;
    }

    /** Route a ready session by its head job's fingerprint. */
    std::size_t placeSession(const StructureFingerprint& fp);

    /** Append a placed session to its core's ready queue, under the
     *  head job's admission class. */
    void enqueueReady(std::size_t core, SessionId id,
                      AdmissionClass cls, bool small_job);

    bool
    hasCapacity(std::size_t core) const
    {
        return cores_[core].running < slots_;
    }

    /** Free slot *and* not quarantined — the pump's dispatch gate. */
    bool
    canDispatch(std::size_t core) const
    {
        return hasCapacity(core) && dispatchable(core);
    }

    /** Health gate only (any state but Quarantined). */
    bool
    dispatchable(std::size_t core) const
    {
        return cores_[core].health.dispatchable();
    }

    CoreHealth
    coreHealth(std::size_t core) const
    {
        return cores_[core].health.health();
    }

    /** Cores currently allowed to take work. */
    std::size_t availableCoreCount() const;

    std::size_t readyDepth(std::size_t core) const;

    /**
     * Pop the sessions forming the next instruction stream of `core`.
     * Which admission class supplies the stream is decided by smooth
     * weighted round-robin over the core's non-empty class queues
     * (every waiting class earns its weight in credit per decision;
     * the highest credit dispatches, ties going to the more urgent
     * class), so under contention each class drains in proportion to
     * its configured weight instead of strict FIFO. Within the chosen
     * class: one session, or — when the head and its successors are
     * small jobs on a multi-core fleet — up to interleaveWidth of
     * them.
     */
    std::vector<SessionId> popStream(std::size_t core);

    /** A stream of `jobs` jobs took a run slot on `core`. */
    void onStreamLaunched(std::size_t core, std::size_t jobs);

    /**
     * Consult the fault domain as a job is about to start on `core`.
     * Counts the start, delivers any scheduled fault, and drives the
     * health machine: a kill/hang (or a breaker trip) quarantines the
     * core — its cache partition is invalidated and the first
     * readmission probe is armed — and returns FailStream, telling the
     * caller to fail the stream's remaining jobs over instead of
     * running them. A hang additionally advances the virtual clock by
     * the stall-watchdog charge.
     */
    FleetFaultAction onJobStarting(std::size_t core);

    /**
     * One job of a stream on `core` ran to a status, occupying the
     * simulated device for `device_seconds` of modeled time (already
     * inflated if the job ran degraded). Advances the virtual clock;
     * a clean (non-degraded) job also feeds the health machine's
     * recovery count.
     */
    void onJobExecuted(std::size_t core, bool interleaved,
                       double device_seconds, bool degraded = false);

    /**
     * Take the whole ready queue of a (newly quarantined) core, in
     * class-priority order. The service re-places each entry; none may
     * stay parked on a fenced core or it could wait out the entire
     * quarantine.
     */
    std::vector<ReadyEntry> drainReady(std::size_t core);

    /** `jobs` jobs were pulled off `core` by a failover. */
    void recordFailover(std::size_t core, Count jobs);

    /**
     * Attempt the readmission probe of every quarantined core whose
     * backoff has elapsed on the virtual clock. Probe outcomes come
     * from the fault injector (no injector: probes always succeed).
     * Returns the number of cores readmitted.
     */
    std::size_t runReadmissionProbes();

    /**
     * Jump the virtual clock to the earliest pending probe deadline —
     * the escape hatch when every core is quarantined and nothing is
     * running, so no device time would otherwise accrue. Returns false
     * if no core is quarantined.
     */
    bool advanceVirtualToNextProbe();

    double virtualNow() const { return virtualNow_; }

    /** Virtual seconds until the earliest pending readmission probe
     *  (0 when none is pending or one is already due). */
    double secondsToNextProbe() const;

    /** Stall charge per hung stream (config passthrough). */
    double
    stallWatchdogSeconds() const
    {
        return config_.faultDomain.stallWatchdogSeconds;
    }

    /** Mean modeled device time per executed job (0 before the first
     *  job) — the service's retry-after estimator. */
    double averageJobDeviceSeconds() const;

    /** The stream released its slot after `busy_seconds` of wall time. */
    void onStreamFinished(std::size_t core, double busy_seconds);

    /** Sum of every partition's counters (capacity sums too). */
    CustomizationCacheStats aggregateCacheStats() const;

    FleetStats stats() const;

    /** Refresh utilization / queue-depth / cache-hit gauges. */
    void syncGauges() const;

  private:
    struct Core
    {
        /** Ready sessions, one queue per admission class; FIFO within
         *  a class, weighted round-robin across classes. */
        std::array<std::deque<ReadyEntry>, kAdmissionClassCount> ready;
        /** Smooth-WRR credit per class (see popStream). */
        std::array<std::int64_t, kAdmissionClassCount> wrrCredit{};
        unsigned running = 0;    ///< streams holding a slot
        Count jobs = 0;
        Count streams = 0;
        Count interleavedJobs = 0;
        double busySeconds = 0.0;
        double deviceSeconds = 0.0;
        std::shared_ptr<CustomizationCache> cache;

        CoreHealthMachine health;
        Count jobsStarted = 0;    ///< fault-injection sequence number
        Count faults = 0;         ///< injected faults delivered here
        Count failedOverJobs = 0; ///< jobs lost to failover
        Count degradedJobs = 0;
        Count degradeJobsLeft = 0; ///< remaining slowed jobs
        Real slowdown = 1.0;       ///< while degradeJobsLeft > 0

        telemetry::Counter* jobsTotal = nullptr;
        telemetry::Counter* streamsTotal = nullptr;
        telemetry::Counter* interleavedTotal = nullptr;
        telemetry::Counter* busyNsTotal = nullptr;
        telemetry::Counter* faultsTotal = nullptr;
        telemetry::Gauge* queueDepth = nullptr;
        telemetry::Gauge* utilization = nullptr;
        telemetry::Gauge* cacheHits = nullptr;
        telemetry::Gauge* stateGauge = nullptr;
    };

    std::vector<CoreLoad> loads() const;

    /** Fence `core` off: clear its cache partition (stale artifacts
     *  must not survive a failed core), count, update the gauge. The
     *  health machine is already Quarantined when this runs. */
    void quarantineSideEffects(std::size_t core);

    void syncStateGauge(std::size_t core) const;

    FleetConfig config_;
    unsigned slots_;
    unsigned interleave_;
    /** Dispatch weight per admission class (>= 1 each). */
    std::array<std::int64_t, kAdmissionClassCount> classWeights_;
    PlacementScheduler scheduler_;
    std::vector<Core> cores_;
    Timer wall_; ///< utilization denominator

    Real virtualNow_ = 0.0;   ///< see FleetStats::virtualSeconds
    Count fleetJobsStarted_ = 0;
    Count jobsExecuted_ = 0;
    Count failovers_ = 0;
    Count partitionInvalidations_ = 0;

    telemetry::Counter* failoversTotal_ = nullptr;
    telemetry::Counter* quarantinesTotal_ = nullptr;
    telemetry::Counter* readmissionsTotal_ = nullptr;
    telemetry::Counter* probesTotal_ = nullptr;
    telemetry::Counter* invalidationsTotal_ = nullptr;
};

} // namespace rsqp

#endif // RSQP_SERVICE_FLEET_FLEET_HPP
