/**
 * @file
 * Multi-client QP solving service: session registry + weighted-fair
 * admission plane over the shared thread pool, executing on a
 * multi-core device fleet.
 *
 * The client surface is asynchronous: submitAsync() takes a
 * SubmitOptions (deadline, admission class, cacheability, warm-start
 * policy) and a completion callback invoked exactly once, off the
 * service lock, with the request's SessionResult; it returns a
 * RequestToken that cancel() can revoke while the request still waits
 * in the queue. submit() is a thin future adapter over submitAsync(),
 * and solve() is submit().get(). The old positional-deadline
 * overloads forward to the same path and are deprecated.
 *
 * The service owns one SolverSession per client and a SolverFleet of
 * N simulated solver cores (each with its own customization-cache
 * partition, run slots, and metrics), and turns concurrent
 * submissions into a deterministic execution: requests of the *same*
 * session run strictly in submission order (a session is never on two
 * workers at once), while different sessions run in parallel up to
 * the fleet's slot capacity. Ready sessions are routed onto cores by
 * the placement scheduler — by default structure-fingerprint
 * affinity, so same-structure jobs land where the customization
 * artifact is already hot — and drained per-core by smooth weighted
 * round-robin across admission classes, so Realtime work keeps its
 * configured share of every core under Batch backlog. Combined with
 * the pool's deterministic kernels this makes every session's result
 * stream independent of load, scheduling, and core count.
 *
 * Admission control is explicit and non-blocking: each class has an
 * optional depth bound on top of the service-wide one, and when the
 * global queue is full an arriving request of a higher class sheds
 * the newest queued request of the lowest populated class below it
 * (Batch before Interactive before Realtime). Overflow and shed both
 * resolve SolveStatus::Rejected immediately — carrying a class-aware
 * retryAfterSeconds back-off hint sized to the class's backlog and
 * weighted share of the surviving capacity — and a request whose
 * deadline expires while waiting yields SolveStatus::TimeLimitReached
 * without ever touching the session's solver state.
 *
 * The fleet is also a fault domain: a core that a fault kills or
 * hangs is quarantined (its cache partition invalidated), the jobs it
 * held return to the placement scheduler with their deadline budget
 * decremented by any stall-watchdog charge and re-execute on a
 * healthy core — bitwise identical to an undisturbed run, because a
 * fault only ever fires *before* a job touches its session.
 * Quarantined cores earn readmission through exponential-backoff
 * probes on the fleet's deterministic virtual clock.
 */

#ifndef RSQP_SERVICE_SERVICE_HPP
#define RSQP_SERVICE_SERVICE_HPP

#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "service/admission.hpp"
#include "service/fleet/fleet.hpp"
#include "service/session.hpp"
#include "telemetry/metrics.hpp"

namespace rsqp
{

/** Completion token of submitAsync(): invoked exactly once per
 *  admitted or rejected request, never under the service lock. */
using SolveCallback = std::function<void(SessionResult)>;

/** Service-wide configuration, fixed at construction. */
struct ServiceConfig
{
    /** Max requests waiting across all sessions; overflow is shed
     *  from a lower class or Rejected. */
    std::size_t maxQueueDepth = 64;
    /** Max sessions solving at once on a single-core fleet (0 =
     *  execution.numThreads, then effectiveNumThreads() when that is 0
     *  too). With coreCount > 1 concurrency is the fleet's slot
     *  capacity instead (see FleetConfig::slotsPerCore). */
    unsigned maxConcurrency = 0;
    /** Customization-cache capacity in artifacts per core partition
     *  (0 disables). */
    std::size_t cacheCapacity = 16;
    /** Deadline applied when a request passes none (0 = unlimited). */
    Real defaultDeadlineSeconds = 0.0;
    /** Smallest retry-after hint attached to an overflow rejection
     *  (seconds); the estimate never reports "retry immediately". */
    Real retryAfterFloorSeconds = 0.001;
    /** Per-class weights and depth bounds of the admission plane. */
    AdmissionConfig admission;
    /** Execution resources: default concurrency cap of the service. */
    ExecutionConfig execution;
    /** Enable the global trace recorder for the service's lifetime. */
    bool tracing = false;
    /** Device-fleet shape: core count, placement policy, interleaving. */
    FleetConfig fleet;
};

/** Per-admission-class slice of the service counters. */
struct ClassStats
{
    Count submitted = 0;
    Count completed = 0; ///< ran to a solver status
    Count solved = 0;    ///< completed with SolveStatus::Solved (goodput)
    Count rejected = 0;  ///< per-class or global bound hit on arrival
    Count shed = 0;      ///< evicted from the queue by a higher class
    Count cancelled = 0; ///< revoked via RequestToken before launch
    Count expired = 0;   ///< deadline passed while queued
    std::size_t queueDepth = 0; ///< waiting right now
};

/** Service-wide counter snapshot. */
struct ServiceStats
{
    Count submitted = 0;
    Count completed = 0;  ///< ran to a solver status
    Count rejected = 0;   ///< queue overflow / unknown or closed session
    Count expired = 0;    ///< deadline passed while queued
    Count cancelled = 0;  ///< revoked via RequestToken before launch
    Count shed = 0;       ///< queued jobs evicted by a higher class
    Count shutdownDrained = 0; ///< resolved ShuttingDown by the dtor
    Count failovers = 0;       ///< jobs re-placed off failed cores
    Count quarantines = 0;     ///< cores fenced off so far
    Count readmissions = 0;    ///< quarantines lifted by a probe
    Count retryAfterHints = 0; ///< rejections that carried a hint
    /** Hint attached to the most recent overflow rejection (s). */
    double lastRetryAfterSeconds = 0.0;
    std::size_t queueDepth = 0;      ///< requests waiting right now
    std::size_t peakQueueDepth = 0;  ///< high-water mark
    std::size_t openSessions = 0;
    /** Aggregated over every core's cache partition. */
    CustomizationCacheStats cache;
    /** Per-class slices (indexed by AdmissionClass). */
    std::array<ClassStats, kAdmissionClassCount> perClass;

    const ClassStats& of(AdmissionClass cls) const
    {
        return perClass[static_cast<std::size_t>(cls)];
    }
};

/** The multi-client front-end (see file comment). */
class SolverService
{
  public:
    explicit SolverService(ServiceConfig config = ServiceConfig());

    /**
     * Shutdown contract: requests that are already executing (or
     * fused into a launched stream) run to their real status; requests
     * still waiting in a queue resolve immediately with
     * SolveStatus::ShuttingDown — shed load, deliberately distinct
     * from Rejected so clients can tell "service went away" from "I
     * sent something bad". Blocks until every admitted request has
     * resolved; no callback is ever abandoned.
     */
    ~SolverService();

    SolverService(const SolverService&) = delete;
    SolverService& operator=(const SolverService&) = delete;

    /** Register a client; its solver state lives until closeSession. */
    SessionId openSession(SessionConfig config = SessionConfig());

    /**
     * Close a session: queued requests complete as Rejected, a running
     * request finishes normally, and the solver state is dropped.
     */
    void closeSession(SessionId id);

    /**
     * Enqueue one request; `callback` receives its SessionResult
     * exactly once, off the service lock, on whichever thread resolves
     * the request (a pool worker, a canceller, or — for an immediate
     * rejection — the caller itself, before submitAsync returns).
     * Never blocks on solver work: overflow beyond the class/global
     * queue bounds and unknown/closed sessions resolve Rejected
     * immediately (overflow carries a class-aware retryAfterSeconds
     * hint). A positive options.deadlineSeconds (queue wait included)
     * expires queued requests to TimeLimitReached and hands the
     * remaining budget to the session as the solve's time budget.
     *
     * The returned token stays valid until the request resolves; pass
     * it to cancel() to revoke the request while it still waits.
     */
    RequestToken submitAsync(SessionId id, QpProblem problem,
                             SubmitOptions options,
                             SolveCallback callback);

    /**
     * Revoke a queued request. Returns true — and resolves the
     * request's callback with SolveStatus::Cancelled, exactly once —
     * only while the request is still waiting in its session's queue;
     * once launched (or already resolved) the request runs to its
     * real status and cancel returns false. Session solver state is
     * never touched by a cancellation.
     */
    bool cancel(const RequestToken& token);

    /** submitAsync() wrapped in a std::future. */
    std::future<SessionResult> submit(SessionId id, QpProblem problem,
                                      SubmitOptions options = {});

    /** submit() + get(): the synchronous convenience path. */
    SessionResult solve(SessionId id, QpProblem problem,
                        SubmitOptions options = {});

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    /** @deprecated Pass SubmitOptions{.deadlineSeconds = ...}. */
    [[deprecated("pass SubmitOptions instead of a positional deadline")]]
    std::future<SessionResult> submit(SessionId id, QpProblem problem,
                                      Real deadline_seconds);

    /** @deprecated Pass SubmitOptions{.deadlineSeconds = ...}. */
    [[deprecated("pass SubmitOptions instead of a positional deadline")]]
    SessionResult solve(SessionId id, QpProblem problem,
                        Real deadline_seconds);
#pragma GCC diagnostic pop

    /** Block until no request is queued or running. */
    void waitIdle();

    ServiceStats stats() const;

    /** Per-session counters (zeros for unknown sessions). */
    SessionStats sessionStats(SessionId id) const;

    /** Per-core fleet snapshot: jobs, streams, utilization, caches. */
    FleetStats fleetStats() const;

    /**
     * Point-in-time snapshot of the service registry (queue depth,
     * admission counters, per-class rsqp_service_class_* series,
     * cache effectiveness, per-session solve counts, per-core fleet
     * gauges, wait/execute histograms).
     */
    telemetry::MetricsSnapshot metricsSnapshot() const;

    /** metricsSnapshot() in Prometheus text exposition format. */
    std::string metricsText() const;

    /**
     * Drain the global trace recorder as Chrome trace_event JSON
     * (spans recorded by every solve that ran while tracing was
     * enabled; empty under -DRSQP_TELEMETRY=OFF).
     */
    std::string dumpTrace() const;

    /** The registry backing stats()/metricsText() (test access). */
    telemetry::MetricsRegistry& registry() { return registry_; }

    /** Core 0's customization-cache partition (never null; the whole
     *  cache of a default single-core fleet). */
    const std::shared_ptr<CustomizationCache>& cache() const
    {
        return cache_;
    }

  private:
    struct Job
    {
        QpProblem problem;
        /** The request's options verbatim (class, cacheability,
         *  warm-start policy); the resolved deadline lives below. */
        SubmitOptions options;
        SessionId session = 0;   ///< owner (cancel's lookup key)
        Real deadline = 0.0;     ///< seconds, 0 = unlimited
        std::chrono::steady_clock::time_point enqueued;
        /** Invoked exactly once by whichever path resolves the job. */
        SolveCallback callback;
        /** Placement key (structure-only, value-blind). */
        StructureFingerprint fp;
        /** n + m under the fleet's interleaving threshold. */
        bool small = false;
        /** Virtual stall-watchdog charges accumulated by failovers
         *  off hung cores; counts against the deadline budget. */
        double stallSeconds = 0.0;
        /** Times this job was pulled off a failed core. */
        Count failovers = 0;
    };

    struct SessionState
    {
        std::unique_ptr<SolverSession> session;
        std::deque<std::shared_ptr<Job>> pending;
        bool running = false;
        bool open = true;
        /** Copied under the service lock after every finished job, so
         *  sessionStats() never races with a worker mid-solve. */
        SessionStats statsSnapshot;
        /** Registry counter "...session_solves_total{session=...}". */
        telemetry::Counter* solvesCounter = nullptr;
    };

    /** Registry handles of one admission class's labeled series. */
    struct ClassMetrics
    {
        telemetry::Counter* submitted = nullptr;
        telemetry::Counter* completed = nullptr;
        telemetry::Counter* solved = nullptr;
        telemetry::Counter* rejected = nullptr;
        telemetry::Counter* shed = nullptr;
        telemetry::Counter* cancelled = nullptr;
        telemetry::Counter* expired = nullptr;
        telemetry::Gauge* queueDepth = nullptr;
        telemetry::Histogram* retryAfterUs = nullptr;
    };

    /** One dispatch decision taken under the lock, launched outside:
     *  an instruction stream of one or more jobs bound to one core. */
    struct Launch
    {
        struct Entry
        {
            SessionId id;
            SessionState* state;
            std::shared_ptr<Job> job;
        };
        std::size_t core = 0;
        std::vector<Entry> entries;
    };

    static std::size_t classIndex(AdmissionClass cls)
    {
        return static_cast<std::size_t>(cls);
    }

    /** Route a newly ready session onto a fleet core (locked); with
     *  every core fenced it parks the session in unplaced_ instead. */
    void placeReadyLocked(SessionId id, SessionState& state);

    /** Re-place parked sessions once a core is available (locked). */
    void drainUnplacedLocked();

    /** Pop streams off ready cores into `launches` (locked). */
    void dispatchLocked(std::vector<Launch>& launches);

    /**
     * Run readmission probes, re-place parked sessions, and move
     * ready sessions into streams up to the fleet's capacity. When
     * every core is quarantined with work queued and nothing running,
     * force the virtual clock forward to the next probe so the fleet
     * cannot deadlock waiting for device time that will never accrue.
     */
    void pumpLocked(std::vector<Launch>& launches);

    /**
     * A fault killed `stream`'s core before entry `from_index`
     * started. Return entries [from_index, end) to their sessions'
     * pending queues (front, preserving order), charge the stall
     * watchdog on a hang, re-place the sessions and the core's drained
     * ready queue, and count the failovers. Jobs whose session is
     * closed — or the whole service shutting down — are appended to
     * `shed` with the status to resolve outside the lock.
     */
    void failOverStreamLocked(
        Launch& stream, std::size_t from_index, bool hang,
        std::vector<Launch>& launches,
        std::vector<std::pair<std::shared_ptr<Job>, SolveStatus>>&
            shed);

    /**
     * Evict the newest queued job of the lowest populated class
     * strictly below `cls` to make room at the full global queue
     * (locked). Returns the evicted job — the caller resolves it
     * Rejected outside the lock — or null when no lower class has
     * queued work.
     */
    std::shared_ptr<Job> shedLowerClassLocked(AdmissionClass cls);

    /** Remove one queued job from the admission accounting (locked). */
    void unqueueLocked(const std::shared_ptr<Job>& job);

    /** Back-off hint for an overflow rejection of `cls`: the class's
     *  backlog over its weighted share of the surviving slot
     *  capacity, plus the wait for the next readmission probe when no
     *  core is available (locked). Monotone in the class backlog, and
     *  never smaller for a lower class at equal backlog. */
    Real retryAfterEstimateLocked(AdmissionClass cls) const;

    /** Count + histogram a hint about to be attached (locked). */
    void recordRetryHintLocked(AdmissionClass cls, Real hint);

    /** Hand collected streams to the thread pool (lock released). */
    void launch(std::vector<Launch>& launches);

    /** Worker-side execution of one instruction stream. */
    void runStream(Launch stream);

    /** Fold a dying session's label series into the retired counter
     *  and drop it from the registry (locked). */
    void retireSessionSeriesLocked(SessionId id, SessionState& state);

    /** Refresh cache/session/fleet gauges from their sources (locked). */
    void syncGaugesLocked() const;

    ServiceConfig config_;
    unsigned maxConcurrency_;

    /**
     * Registry backing every service counter; ServiceStats is
     * assembled from these. The registry outlives every handle the
     * members below cache.
     */
    mutable telemetry::MetricsRegistry registry_;
    /** Core array + placement state; mutated under mutex_ only. */
    SolverFleet fleet_;
    std::shared_ptr<CustomizationCache> cache_;  ///< core 0 partition
    telemetry::Counter& submitted_;
    telemetry::Counter& completed_;
    telemetry::Counter& rejected_;
    telemetry::Counter& expired_;
    telemetry::Counter& cancelled_;
    telemetry::Counter& shedTotal_;
    telemetry::Counter& shutdownDrained_;
    telemetry::Counter& retryAfterHints_;
    telemetry::Counter& retiredSessionSolves_;
    telemetry::Gauge& queueDepth_;
    telemetry::Gauge& peakQueueDepth_;
    telemetry::Gauge& openSessions_;
    telemetry::Gauge& cacheHits_;
    telemetry::Gauge& cacheMisses_;
    telemetry::Gauge& cacheEvictions_;
    telemetry::Gauge& cacheSize_;
    telemetry::Histogram& queueWaitNs_;
    telemetry::Histogram& executeNs_;
    telemetry::Histogram& retryAfterUs_;
    /** rsqp_service_class_*{class="..."} series, one set per class. */
    std::array<ClassMetrics, kAdmissionClassCount> classMetrics_;

    mutable std::mutex mutex_;
    std::condition_variable idleCv_;
    std::unordered_map<SessionId, std::unique_ptr<SessionState>>
        sessions_;
    /** Ready sessions with no available core to park on (every core
     *  quarantined); re-placed when a probe readmits one. */
    std::deque<SessionId> unplaced_;
    unsigned activeRuns_ = 0;  ///< streams in flight, fleet-wide
    std::size_t queuedJobs_ = 0;
    /** Waiting requests per admission class (sums to queuedJobs_). */
    std::array<std::size_t, kAdmissionClassCount> classQueued_{};
    SessionId nextId_ = 1;
    bool shuttingDown_ = false;
    double lastRetryAfterSeconds_ = 0.0;
};

} // namespace rsqp

#endif // RSQP_SERVICE_SERVICE_HPP
