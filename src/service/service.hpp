/**
 * @file
 * Multi-client QP solving service: session registry + bounded
 * admission queue over the shared thread pool, executing on a
 * multi-core device fleet.
 *
 * The service owns one SolverSession per client and a SolverFleet of
 * N simulated solver cores (each with its own customization-cache
 * partition, run slots, and metrics), and turns concurrent submit()
 * calls into a deterministic execution: requests of the *same*
 * session run strictly in submission order (a session is never on two
 * workers at once), while different sessions run in parallel up to
 * the fleet's slot capacity. Ready sessions are routed onto cores by
 * the placement scheduler — by default structure-fingerprint
 * affinity, so same-structure jobs land where the customization
 * artifact is already hot. Combined with the pool's deterministic
 * kernels this makes every session's result stream independent of
 * load, scheduling, and core count.
 *
 * Admission control is explicit and non-blocking: a full queue yields
 * SolveStatus::Rejected immediately — carrying a retryAfterSeconds
 * back-off hint sized to the backlog and surviving capacity — and a
 * request whose deadline expires while waiting yields
 * SolveStatus::TimeLimitReached without ever touching the session's
 * solver state.
 *
 * The fleet is also a fault domain: a core that a fault kills or
 * hangs is quarantined (its cache partition invalidated), the jobs it
 * held return to the placement scheduler with their deadline budget
 * decremented by any stall-watchdog charge and re-execute on a
 * healthy core — bitwise identical to an undisturbed run, because a
 * fault only ever fires *before* a job touches its session.
 * Quarantined cores earn readmission through exponential-backoff
 * probes on the fleet's deterministic virtual clock.
 */

#ifndef RSQP_SERVICE_SERVICE_HPP
#define RSQP_SERVICE_SERVICE_HPP

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "service/fleet/fleet.hpp"
#include "service/session.hpp"
#include "telemetry/metrics.hpp"

namespace rsqp
{

/** Service-wide configuration, fixed at construction. */
struct ServiceConfig
{
    /** Max requests waiting across all sessions; overflow is Rejected. */
    std::size_t maxQueueDepth = 64;
    /** Max sessions solving at once on a single-core fleet (0 =
     *  execution.numThreads, then effectiveNumThreads() when that is 0
     *  too). With coreCount > 1 concurrency is the fleet's slot
     *  capacity instead (see FleetConfig::slotsPerCore). */
    unsigned maxConcurrency = 0;
    /** Customization-cache capacity in artifacts per core partition
     *  (0 disables). */
    std::size_t cacheCapacity = 16;
    /** Deadline applied when submit() passes none (0 = unlimited). */
    Real defaultDeadlineSeconds = 0.0;
    /** Smallest retry-after hint attached to an overflow rejection
     *  (seconds); the estimate never reports "retry immediately". */
    Real retryAfterFloorSeconds = 0.001;
    /** Execution resources: default concurrency cap of the service. */
    ExecutionConfig execution;
    /** Enable the global trace recorder for the service's lifetime. */
    bool tracing = false;
    /** Device-fleet shape: core count, placement policy, interleaving. */
    FleetConfig fleet;
};

/** Service-wide counter snapshot. */
struct ServiceStats
{
    Count submitted = 0;
    Count completed = 0;  ///< ran to a solver status
    Count rejected = 0;   ///< queue overflow / unknown or closed session
    Count expired = 0;    ///< deadline passed while queued
    Count shutdownDrained = 0; ///< resolved ShuttingDown by the dtor
    Count failovers = 0;       ///< jobs re-placed off failed cores
    Count quarantines = 0;     ///< cores fenced off so far
    Count readmissions = 0;    ///< quarantines lifted by a probe
    Count retryAfterHints = 0; ///< rejections that carried a hint
    /** Hint attached to the most recent overflow rejection (s). */
    double lastRetryAfterSeconds = 0.0;
    std::size_t queueDepth = 0;      ///< requests waiting right now
    std::size_t peakQueueDepth = 0;  ///< high-water mark
    std::size_t openSessions = 0;
    /** Aggregated over every core's cache partition. */
    CustomizationCacheStats cache;
};

/** The multi-client front-end (see file comment). */
class SolverService
{
  public:
    explicit SolverService(ServiceConfig config = ServiceConfig());

    /**
     * Shutdown contract: requests that are already executing (or
     * fused into a launched stream) run to their real status; requests
     * still waiting in a queue resolve immediately with
     * SolveStatus::ShuttingDown — shed load, deliberately distinct
     * from Rejected so clients can tell "service went away" from "I
     * sent something bad". Blocks until every admitted request has
     * resolved; no future is ever abandoned.
     */
    ~SolverService();

    SolverService(const SolverService&) = delete;
    SolverService& operator=(const SolverService&) = delete;

    /** Register a client; its solver state lives until closeSession. */
    SessionId openSession(SessionConfig config = SessionConfig());

    /**
     * Close a session: queued requests complete as Rejected, a running
     * request finishes normally, and the solver state is dropped.
     */
    void closeSession(SessionId id);

    /**
     * Enqueue one request. Never blocks: overflow and unknown/closed
     * sessions resolve the future immediately with Rejected. A
     * positive deadline (seconds, queue wait included) expires queued
     * requests to TimeLimitReached and hands the remaining budget to
     * the session as the solve's time budget; 0 uses the config
     * default.
     */
    std::future<SessionResult> submit(SessionId id, QpProblem problem,
                                      Real deadline_seconds = 0.0);

    /** submit() + get(): the synchronous convenience path. */
    SessionResult solve(SessionId id, QpProblem problem,
                        Real deadline_seconds = 0.0);

    /** Block until no request is queued or running. */
    void waitIdle();

    ServiceStats stats() const;

    /** Per-session counters (zeros for unknown sessions). */
    SessionStats sessionStats(SessionId id) const;

    /** Per-core fleet snapshot: jobs, streams, utilization, caches. */
    FleetStats fleetStats() const;

    /**
     * Point-in-time snapshot of the service registry (queue depth,
     * admission counters, cache effectiveness, per-session solve
     * counts, per-core fleet gauges, wait/execute histograms).
     */
    telemetry::MetricsSnapshot metricsSnapshot() const;

    /** metricsSnapshot() in Prometheus text exposition format. */
    std::string metricsText() const;

    /**
     * Drain the global trace recorder as Chrome trace_event JSON
     * (spans recorded by every solve that ran while tracing was
     * enabled; empty under -DRSQP_TELEMETRY=OFF).
     */
    std::string dumpTrace() const;

    /** The registry backing stats()/metricsText() (test access). */
    telemetry::MetricsRegistry& registry() { return registry_; }

    /** Core 0's customization-cache partition (never null; the whole
     *  cache of a default single-core fleet). */
    const std::shared_ptr<CustomizationCache>& cache() const
    {
        return cache_;
    }

  private:
    struct Job
    {
        QpProblem problem;
        Real deadline = 0.0;  ///< seconds, 0 = unlimited
        std::chrono::steady_clock::time_point enqueued;
        std::promise<SessionResult> promise;
        /** Placement key (structure-only, value-blind). */
        StructureFingerprint fp;
        /** n + m under the fleet's interleaving threshold. */
        bool small = false;
        /** Virtual stall-watchdog charges accumulated by failovers
         *  off hung cores; counts against the deadline budget. */
        double stallSeconds = 0.0;
        /** Times this job was pulled off a failed core. */
        Count failovers = 0;
    };

    struct SessionState
    {
        std::unique_ptr<SolverSession> session;
        std::deque<std::shared_ptr<Job>> pending;
        bool running = false;
        bool open = true;
        /** Copied under the service lock after every finished job, so
         *  sessionStats() never races with a worker mid-solve. */
        SessionStats statsSnapshot;
        /** Registry counter "...session_solves_total{session=...}". */
        telemetry::Counter* solvesCounter = nullptr;
    };

    /** One dispatch decision taken under the lock, launched outside:
     *  an instruction stream of one or more jobs bound to one core. */
    struct Launch
    {
        struct Entry
        {
            SessionId id;
            SessionState* state;
            std::shared_ptr<Job> job;
        };
        std::size_t core = 0;
        std::vector<Entry> entries;
    };

    /** Route a newly ready session onto a fleet core (locked); with
     *  every core fenced it parks the session in unplaced_ instead. */
    void placeReadyLocked(SessionId id, SessionState& state);

    /** Re-place parked sessions once a core is available (locked). */
    void drainUnplacedLocked();

    /** Pop streams off ready cores into `launches` (locked). */
    void dispatchLocked(std::vector<Launch>& launches);

    /**
     * Run readmission probes, re-place parked sessions, and move
     * ready sessions into streams up to the fleet's capacity. When
     * every core is quarantined with work queued and nothing running,
     * force the virtual clock forward to the next probe so the fleet
     * cannot deadlock waiting for device time that will never accrue.
     */
    void pumpLocked(std::vector<Launch>& launches);

    /**
     * A fault killed `stream`'s core before entry `from_index`
     * started. Return entries [from_index, end) to their sessions'
     * pending queues (front, preserving order), charge the stall
     * watchdog on a hang, re-place the sessions and the core's drained
     * ready queue, and count the failovers. Jobs whose session is
     * closed — or the whole service shutting down — are appended to
     * `shed` with the status to resolve outside the lock.
     */
    void failOverStreamLocked(
        Launch& stream, std::size_t from_index, bool hang,
        std::vector<Launch>& launches,
        std::vector<std::pair<std::shared_ptr<Job>, SolveStatus>>&
            shed);

    /** Back-off hint for an overflow rejection: backlog over
     *  surviving slot capacity, plus the wait for the next
     *  readmission probe when no core is available (locked). */
    Real retryAfterEstimateLocked() const;

    /** Hand collected streams to the thread pool (lock released). */
    void launch(std::vector<Launch>& launches);

    /** Worker-side execution of one instruction stream. */
    void runStream(Launch stream);

    /** Fold a dying session's label series into the retired counter
     *  and drop it from the registry (locked). */
    void retireSessionSeriesLocked(SessionId id, SessionState& state);

    /** Refresh cache/session/fleet gauges from their sources (locked). */
    void syncGaugesLocked() const;

    ServiceConfig config_;
    unsigned maxConcurrency_;

    /**
     * Registry backing every service counter; PR 4's bespoke counter
     * members are gone, ServiceStats is assembled from these. The
     * registry outlives every handle the members below cache.
     */
    mutable telemetry::MetricsRegistry registry_;
    /** Core array + placement state; mutated under mutex_ only. */
    SolverFleet fleet_;
    std::shared_ptr<CustomizationCache> cache_;  ///< core 0 partition
    telemetry::Counter& submitted_;
    telemetry::Counter& completed_;
    telemetry::Counter& rejected_;
    telemetry::Counter& expired_;
    telemetry::Counter& shutdownDrained_;
    telemetry::Counter& retryAfterHints_;
    telemetry::Counter& retiredSessionSolves_;
    telemetry::Gauge& queueDepth_;
    telemetry::Gauge& peakQueueDepth_;
    telemetry::Gauge& openSessions_;
    telemetry::Gauge& cacheHits_;
    telemetry::Gauge& cacheMisses_;
    telemetry::Gauge& cacheEvictions_;
    telemetry::Gauge& cacheSize_;
    telemetry::Histogram& queueWaitNs_;
    telemetry::Histogram& executeNs_;
    telemetry::Histogram& retryAfterUs_;

    mutable std::mutex mutex_;
    std::condition_variable idleCv_;
    std::unordered_map<SessionId, std::unique_ptr<SessionState>>
        sessions_;
    /** Ready sessions with no available core to park on (every core
     *  quarantined); re-placed when a probe readmits one. */
    std::deque<SessionId> unplaced_;
    unsigned activeRuns_ = 0;  ///< streams in flight, fleet-wide
    std::size_t queuedJobs_ = 0;
    SessionId nextId_ = 1;
    bool shuttingDown_ = false;
    double lastRetryAfterSeconds_ = 0.0;
};

} // namespace rsqp

#endif // RSQP_SERVICE_SERVICE_HPP
