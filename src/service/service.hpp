/**
 * @file
 * Multi-client QP solving service: session registry + bounded
 * admission queue over the shared thread pool.
 *
 * The service owns one SolverSession per client and one shared
 * CustomizationCache, and turns concurrent submit() calls into a
 * deterministic execution: requests of the *same* session run strictly
 * in submission order (a session is never on two workers at once),
 * while different sessions run in parallel up to a concurrency cap.
 * Combined with the pool's deterministic kernels this makes every
 * session's result stream independent of load and scheduling.
 *
 * Admission control is explicit and non-blocking: a full queue yields
 * SolveStatus::Rejected immediately, and a request whose deadline
 * expires while waiting yields SolveStatus::TimeLimitReached without
 * ever touching the session's solver state.
 */

#ifndef RSQP_SERVICE_SERVICE_HPP
#define RSQP_SERVICE_SERVICE_HPP

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "service/session.hpp"
#include "telemetry/metrics.hpp"

namespace rsqp
{

/** Handle of one open session (never reused within a service). */
using SessionId = Count;

/** Service-wide configuration, fixed at construction. */
struct ServiceConfig
{
    /** Max requests waiting across all sessions; overflow is Rejected. */
    std::size_t maxQueueDepth = 64;
    /** Max sessions solving at once (0 = execution.numThreads, then
     *  effectiveNumThreads() when that is 0 too). */
    unsigned maxConcurrency = 0;
    /** Customization-cache capacity in artifacts (0 disables). */
    std::size_t cacheCapacity = 16;
    /** Deadline applied when submit() passes none (0 = unlimited). */
    Real defaultDeadlineSeconds = 0.0;
    /** Execution resources: default concurrency cap of the service. */
    ExecutionConfig execution;
    /** Enable the global trace recorder for the service's lifetime. */
    bool tracing = false;
};

/** Service-wide counter snapshot. */
struct ServiceStats
{
    Count submitted = 0;
    Count completed = 0;  ///< ran to a solver status
    Count rejected = 0;   ///< queue overflow / unknown or closed session
    Count expired = 0;    ///< deadline passed while queued
    std::size_t queueDepth = 0;      ///< requests waiting right now
    std::size_t peakQueueDepth = 0;  ///< high-water mark
    std::size_t openSessions = 0;
    CustomizationCacheStats cache;
};

/** The multi-client front-end (see file comment). */
class SolverService
{
  public:
    explicit SolverService(ServiceConfig config = ServiceConfig());

    /** Drains gracefully: blocks until every admitted request finished. */
    ~SolverService();

    SolverService(const SolverService&) = delete;
    SolverService& operator=(const SolverService&) = delete;

    /** Register a client; its solver state lives until closeSession. */
    SessionId openSession(SessionConfig config = SessionConfig());

    /**
     * Close a session: queued requests complete as Rejected, a running
     * request finishes normally, and the solver state is dropped.
     */
    void closeSession(SessionId id);

    /**
     * Enqueue one request. Never blocks: overflow and unknown/closed
     * sessions resolve the future immediately with Rejected. A
     * positive deadline (seconds, queue wait included) expires queued
     * requests to TimeLimitReached and hands the remaining budget to
     * the session as the solve's time budget; 0 uses the config
     * default.
     */
    std::future<SessionResult> submit(SessionId id, QpProblem problem,
                                      Real deadline_seconds = 0.0);

    /** submit() + get(): the synchronous convenience path. */
    SessionResult solve(SessionId id, QpProblem problem,
                        Real deadline_seconds = 0.0);

    /** Block until no request is queued or running. */
    void waitIdle();

    ServiceStats stats() const;

    /** Per-session counters (zeros for unknown sessions). */
    SessionStats sessionStats(SessionId id) const;

    /**
     * Point-in-time snapshot of the service registry (queue depth,
     * admission counters, cache effectiveness, per-session solve
     * counts, wait/execute histograms).
     */
    telemetry::MetricsSnapshot metricsSnapshot() const;

    /** metricsSnapshot() in Prometheus text exposition format. */
    std::string metricsText() const;

    /**
     * Drain the global trace recorder as Chrome trace_event JSON
     * (spans recorded by every solve that ran while tracing was
     * enabled; empty under -DRSQP_TELEMETRY=OFF).
     */
    std::string dumpTrace() const;

    /** The registry backing stats()/metricsText() (test access). */
    telemetry::MetricsRegistry& registry() { return registry_; }

    /** The shared customization cache (never null). */
    const std::shared_ptr<CustomizationCache>& cache() const
    {
        return cache_;
    }

  private:
    struct Job
    {
        QpProblem problem;
        Real deadline = 0.0;  ///< seconds, 0 = unlimited
        std::chrono::steady_clock::time_point enqueued;
        std::promise<SessionResult> promise;
    };

    struct SessionState
    {
        std::unique_ptr<SolverSession> session;
        std::deque<std::shared_ptr<Job>> pending;
        bool running = false;
        bool open = true;
        /** Copied under the service lock after every finished job, so
         *  sessionStats() never races with a worker mid-solve. */
        SessionStats statsSnapshot;
        /** Registry counter "...session_solves_total{session=...}". */
        telemetry::Counter* solvesCounter = nullptr;
    };

    /** One dispatch decision taken under the lock, launched outside. */
    struct Launch
    {
        SessionId id;
        SessionState* state;
        std::shared_ptr<Job> job;
    };

    /** Move ready sessions into launches up to the concurrency cap. */
    void pumpLocked(std::vector<Launch>& launches);

    /** Hand collected launches to the thread pool (lock released). */
    void launch(std::vector<Launch>& launches);

    /** Worker-side execution of one admitted request. */
    void runJob(SessionId id, SessionState* state,
                const std::shared_ptr<Job>& job);

    /** Refresh cache/session gauges from their sources (locked). */
    void syncGaugesLocked() const;

    ServiceConfig config_;
    unsigned maxConcurrency_;
    std::shared_ptr<CustomizationCache> cache_;

    /**
     * Registry backing every service counter; PR 4's bespoke counter
     * members are gone, ServiceStats is assembled from these. The
     * registry outlives every handle the members below cache.
     */
    mutable telemetry::MetricsRegistry registry_;
    telemetry::Counter& submitted_;
    telemetry::Counter& completed_;
    telemetry::Counter& rejected_;
    telemetry::Counter& expired_;
    telemetry::Gauge& queueDepth_;
    telemetry::Gauge& peakQueueDepth_;
    telemetry::Gauge& openSessions_;
    telemetry::Gauge& cacheHits_;
    telemetry::Gauge& cacheMisses_;
    telemetry::Gauge& cacheEvictions_;
    telemetry::Gauge& cacheSize_;
    telemetry::Histogram& queueWaitNs_;
    telemetry::Histogram& executeNs_;

    mutable std::mutex mutex_;
    std::condition_variable idleCv_;
    std::unordered_map<SessionId, std::unique_ptr<SessionState>>
        sessions_;
    std::deque<SessionId> ready_;  ///< sessions with work, not running
    unsigned activeRuns_ = 0;
    std::size_t queuedJobs_ = 0;
    SessionId nextId_ = 1;
};

} // namespace rsqp

#endif // RSQP_SERVICE_SERVICE_HPP
