#include "service/admission.hpp"

namespace rsqp
{

const char*
admissionClassName(AdmissionClass cls)
{
    switch (cls) {
      case AdmissionClass::Realtime: return "realtime";
      case AdmissionClass::Interactive: return "interactive";
      case AdmissionClass::Batch: return "batch";
    }
    return "unknown";
}

} // namespace rsqp
