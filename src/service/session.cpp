#include "session.hpp"

#include <chrono>
#include <utility>

#include "common/logging.hpp"
#include "osqp/validate.hpp"

namespace rsqp
{

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

} // namespace

SolverSession::SolverSession(SessionConfig config,
                             std::shared_ptr<CustomizationCache> cache)
    : config_(std::move(config)), cache_(std::move(cache))
{}

SolverSession::~SolverSession() = default;

bool
SolverSession::sameStructure(const QpProblem& problem) const
{
    // Exact index comparison, not the fingerprint: the parametric path
    // feeds values straight into the live solver's CSC slots, so a
    // hash collision here would silently corrupt the solve.
    return problem.numVariables() == current_.numVariables() &&
           problem.numConstraints() == current_.numConstraints() &&
           problem.pUpper.colPtr() == current_.pUpper.colPtr() &&
           problem.pUpper.rowIdx() == current_.pUpper.rowIdx() &&
           problem.a.colPtr() == current_.a.colPtr() &&
           problem.a.rowIdx() == current_.a.rowIdx();
}

void
SolverSession::rebuild(const QpProblem& problem, bool cacheable,
                       SessionResult& result)
{
    if (config_.engine == SessionEngine::Host) {
        // Route through the backend factory: settings.firstOrder picks
        // ADMM (default, bit-for-bit the old path), accelerated ADMM,
        // PDHG, or the Auto selector driver.
        host_ = makeBackend(problem, config_.osqp);
        haveSolver_ = true;
        return;
    }

    // A non-cacheable request neither reads nor publishes artifacts:
    // its one-off structure customizes privately and the hot working
    // set survives untouched.
    const bool useCache = cacheable && cache_ != nullptr;
    StructureFingerprint fp;
    std::shared_ptr<const CustomizationArtifact> artifact;
    if (useCache) {
        fp = fingerprintCustomization(problem, config_.custom);
        artifact = cache_->find(fp);
    }
    device_ = std::make_unique<RsqpSolver>(problem, config_.osqp,
                                           config_.custom,
                                           std::move(artifact));
    if (device_->customizationReused()) {
        result.cacheHit = true;
        ++stats_.cacheHits;
    } else if (useCache) {
        ++stats_.cacheMisses;
        cache_->insert(fp,
                       std::make_shared<CustomizationArtifact>(
                           freezeCustomization(device_->customization())));
    }
    haveSolver_ = true;
}

void
SolverSession::applyParametricUpdates(const QpProblem& problem)
{
    const bool qChanged = problem.q != current_.q;
    const bool boundsChanged =
        problem.l != current_.l || problem.u != current_.u;
    const bool pChanged =
        problem.pUpper.values() != current_.pUpper.values();
    const bool aChanged = problem.a.values() != current_.a.values();

    if (config_.engine == SessionEngine::Device) {
        if (qChanged)
            device_->updateLinearCost(problem.q);
        if (boundsChanged)
            device_->updateBounds(problem.l, problem.u);
        if (pChanged || aChanged)
            device_->updateMatrixValues(
                pChanged ? problem.pUpper.values() : Vector(),
                aChanged ? problem.a.values() : Vector());
    } else {
        if (qChanged)
            host_->updateLinearCost(problem.q);
        if (boundsChanged)
            host_->updateBounds(problem.l, problem.u);
        if (pChanged || aChanged)
            host_->updateMatrixValues(
                pChanged ? problem.pUpper.values() : Vector(),
                aChanged ? problem.a.values() : Vector());
    }
}

SessionResult
SolverSession::solve(const QpProblem& problem, Real time_budget,
                     bool cacheable, WarmStartPolicy warm_start)
{
    SessionResult result;

    // Gate malformed requests before they can touch the live solver:
    // a bad request must not cost the client its warm state or its
    // parametric diff base.
    result.validation = validateProblem(problem);
    if (!result.validation.ok()) {
        ++stats_.solves;
        ++stats_.invalidRequests;
        result.status = SolveStatus::InvalidProblem;
        return result;
    }
    ++stats_.solves;

    const auto setupStart = std::chrono::steady_clock::now();
    if (haveSolver_ && sameStructure(problem)) {
        applyParametricUpdates(problem);
        result.parametricReuse = true;
        ++stats_.parametricSolves;
    } else {
        rebuild(problem, cacheable, result);
        ++stats_.rebuilds;
        haveWarm_ = false;  // a fresh solver means a fresh structure
    }
    current_ = problem;
    result.setupSeconds = secondsSince(setupStart);
    stats_.setupSecondsTotal += result.setupSeconds;
    const SolveRoute route =
        result.parametricReuse
            ? SolveRoute::Parametric
            : (result.cacheHit ? SolveRoute::CacheThaw
                               : SolveRoute::FullCustomize);

    const Index n = problem.numVariables();
    const Index m = problem.numConstraints();
    const bool wantWarm =
        warm_start == WarmStartPolicy::SessionDefault
            ? config_.autoWarmStart
            : warm_start == WarmStartPolicy::Apply;
    if (wantWarm && haveWarm_ &&
        lastX_.size() == static_cast<std::size_t>(n) &&
        lastY_.size() == static_cast<std::size_t>(m)) {
        const bool applied =
            config_.engine == SessionEngine::Device
                ? device_->warmStart(lastX_, lastY_)
                : host_->warmStart(lastX_, lastY_);
        if (applied) {
            result.warmStarted = true;
            ++stats_.warmStarts;
        }
    }

    const auto solveStart = std::chrono::steady_clock::now();
    if (config_.engine == SessionEngine::Device) {
        RsqpResult run = device_->solve();
        result.status = run.status;
        result.x = std::move(run.x);
        result.y = std::move(run.y);
        result.z = std::move(run.z);
        result.iterations = run.iterations;
        result.objective = run.objective;
        result.primRes = run.primRes;
        result.dualRes = run.dualRes;
        result.deviceSeconds = run.deviceSeconds;
        result.telemetry = run.telemetry;
    } else {
        // The host engine enforces the deadline in-loop; each request
        // re-arms the limit so budgets never leak across requests.
        host_->setTimeLimit(time_budget > 0.0 ? time_budget
                                              : config_.osqp.timeLimit);
        OsqpResult run = host_->solve();
        result.status = run.info.status;
        result.x = std::move(run.x);
        result.y = std::move(run.y);
        result.z = std::move(run.z);
        result.iterations = run.info.iterations;
        result.objective = run.info.objective;
        result.primRes = run.info.primRes;
        result.dualRes = run.info.dualRes;
        result.hotPath = run.info.hotPath;
        result.telemetry = run.info.telemetry;
    }
    result.solveSeconds = secondsSince(solveStart);
    stats_.solveSecondsTotal += result.solveSeconds;
    result.telemetry.route = route;
    result.telemetry.setupSeconds = result.setupSeconds;
    result.telemetry.solveSeconds = result.solveSeconds;

    if (!result.x.empty() && !result.y.empty()) {
        lastX_ = result.x;
        lastY_ = result.y;
        haveWarm_ = true;
    }
    return result;
}

void
SolverSession::bindCache(std::shared_ptr<CustomizationCache> cache)
{
    cache_ = std::move(cache);
}

void
SolverSession::reset()
{
    device_.reset();
    host_.reset();
    haveSolver_ = false;
    haveWarm_ = false;
    lastX_.clear();
    lastY_.clear();
    current_ = QpProblem();
}

} // namespace rsqp
