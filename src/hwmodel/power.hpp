/**
 * @file
 * Power models for the Fig. 13 energy-efficiency comparison.
 *
 * The paper measured a steady ~19 W on the U50 (xbutil) across the
 * whole benchmark and 44-126 W on the RTX 3070 (nvidia-smi), with GPU
 * draw rising on the bandwidth-saturating large problems. We model the
 * FPGA as a flat draw with a small width-dependent term and the GPU as
 * idle power plus a utilization-proportional dynamic term.
 */

#ifndef RSQP_HWMODEL_POWER_HPP
#define RSQP_HWMODEL_POWER_HPP

#include "arch/config.hpp"
#include "common/types.hpp"

namespace rsqp
{

/** Steady FPGA board power (W) while solving. */
Real fpgaPowerWatts(const ArchConfig& config);

/**
 * GPU board power (W) at a given memory-bandwidth utilization in
 * [0, 1]; clamped into the 44-126 W envelope the paper measured.
 */
Real gpuPowerWatts(Real utilization);

/** Active single-socket CPU package power (W) for the MKL baseline. */
Real cpuPowerWatts();

/**
 * Power efficiency as plotted in Fig. 13: problem instances solved per
 * second per watt.
 */
Real powerEfficiency(Real solve_time_seconds, Real watts);

} // namespace rsqp

#endif // RSQP_HWMODEL_POWER_HPP
