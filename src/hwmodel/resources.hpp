/**
 * @file
 * Analytic hardware cost model of a generated RSQP architecture.
 *
 * Substitutes for the vendor CAD flow (synthesis + place&route) the
 * paper used to fill Table 3. The model is calibrated against the
 * eleven synthesized design points the paper reports:
 *
 *  - DSP usage is exactly 5 DSPs per datapath lane in every Table 3
 *    row, so dsp = 5 * C.
 *  - FF/LUT grow affinely with the datapath width and with the total
 *    number of MAC-tree outputs (each extra output adds a dedicated
 *    result path plus alignment muxing).
 *  - fmax starts at the 300 MHz HLS target and degrades with "routing
 *    pressure" outputs * C — wide datapaths with many tree taps feed
 *    the brown alignment/routing network of Fig. 1, which is exactly
 *    where the paper locates the frequency loss of candidates like
 *    64{64a4e1g} (121 MHz).
 *
 * Absolute accuracy is ~15-20% against Table 3; the ranking and the
 * diminishing-returns shape (the point of the table) are preserved.
 */

#ifndef RSQP_HWMODEL_RESOURCES_HPP
#define RSQP_HWMODEL_RESOURCES_HPP

#include "arch/config.hpp"
#include "common/types.hpp"

namespace rsqp
{

/** Estimated FPGA resource usage of one architecture. */
struct ResourceEstimate
{
    Index dsp = 0;
    Index ff = 0;
    Index lut = 0;
};

/** Resource estimate of an architecture configuration. */
ResourceEstimate estimateResources(const ArchConfig& config);

/** Achievable clock frequency (MHz) after routing, capped at 300. */
Real estimateFmaxMhz(const ArchConfig& config);

/** True if the design fits the U50 (DSP budget check). */
bool fitsU50(const ResourceEstimate& estimate);

} // namespace rsqp

#endif // RSQP_HWMODEL_RESOURCES_HPP
