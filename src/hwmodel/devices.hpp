/**
 * @file
 * Device catalog — the evaluation platforms of Table 2.
 */

#ifndef RSQP_HWMODEL_DEVICES_HPP
#define RSQP_HWMODEL_DEVICES_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace rsqp
{

/** One evaluation platform (a Table 2 row). */
struct DeviceSpec
{
    std::string device;        ///< "FPGA" / "CPU" / "GPU"
    std::string model;         ///< commercial model name
    Real peakTeraflops = 0.0;  ///< peak FP32 throughput
    Index lithographyNm = 0;   ///< process node
    Real tdpWatts = 0.0;       ///< thermal design power
};

/** AMD-Xilinx Alveo U50 (the RSQP platform). */
DeviceSpec u50Fpga();

/** Intel i7-10700KF (the OSQP+MKL baseline host). */
DeviceSpec i7Cpu();

/** NVIDIA RTX 3070 (the cuOSQP platform). */
DeviceSpec rtx3070Gpu();

/** All Table 2 rows in paper order. */
std::vector<DeviceSpec> platformTable();

/** U50 physical resource budget (for over-subscription checks). */
struct FpgaBudget
{
    Index dsp = 5952;
    Real onChipMemoryMb = 28.4;
    Real hbmGb = 8.0;
};

FpgaBudget u50Budget();

} // namespace rsqp

#endif // RSQP_HWMODEL_DEVICES_HPP
