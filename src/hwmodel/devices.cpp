#include "devices.hpp"

namespace rsqp
{

DeviceSpec
u50Fpga()
{
    return {"FPGA", "AMD-Xilinx U50", 0.3, 16, 75.0};
}

DeviceSpec
i7Cpu()
{
    return {"CPU", "Intel i7-10700KF", 0.5, 14, 125.0};
}

DeviceSpec
rtx3070Gpu()
{
    return {"GPU", "NVIDIA RTX3070", 20.0, 8, 220.0};
}

std::vector<DeviceSpec>
platformTable()
{
    return {u50Fpga(), i7Cpu(), rtx3070Gpu()};
}

FpgaBudget
u50Budget()
{
    return FpgaBudget{};
}

} // namespace rsqp
