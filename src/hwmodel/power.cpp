#include "power.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace rsqp
{

Real
fpgaPowerWatts(const ArchConfig& config)
{
    // ~15 W static (HBM + shell) plus a datapath term; C = 64 lands on
    // the paper's measured ~19 W.
    return 15.0 + static_cast<Real>(config.c) / 16.0;
}

Real
gpuPowerWatts(Real utilization)
{
    RSQP_ASSERT(utilization >= 0.0 && utilization <= 1.0,
                "utilization must be in [0, 1]");
    const Real raw = 38.0 + 180.0 * utilization;
    return std::clamp(raw, 44.0, 126.0);
}

Real
cpuPowerWatts()
{
    // Single-socket active package power of the i7-10700KF under a
    // mostly single-threaded sparse workload.
    return 65.0;
}

Real
powerEfficiency(Real solve_time_seconds, Real watts)
{
    RSQP_ASSERT(solve_time_seconds > 0.0 && watts > 0.0,
                "efficiency needs positive time and power");
    return 1.0 / (solve_time_seconds * watts);
}

} // namespace rsqp
