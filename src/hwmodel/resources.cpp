#include "resources.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "hwmodel/devices.hpp"

namespace rsqp
{

ResourceEstimate
estimateResources(const ArchConfig& config)
{
    const Real c = static_cast<Real>(config.c);
    const Real outputs =
        static_cast<Real>(config.structures.totalOutputs());

    ResourceEstimate estimate;
    // Each FP32 multiply-add lane costs 5 DSPs in the Table 3 designs.
    estimate.dsp = static_cast<Index>(5 * config.c);
    // Datapath registers scale with C; each MAC output adds a result
    // path (accumulator, tag, alignment slot).
    estimate.ff = static_cast<Index>(700.0 * c + 300.0 * outputs + 1000.0);
    estimate.lut = static_cast<Index>(470.0 * c + 240.0 * outputs + 800.0);
    // The customized CVB adds index-translation tables.
    if (config.compressedCvb) {
        estimate.ff += static_cast<Index>(40.0 * c);
        estimate.lut += static_cast<Index>(55.0 * c);
    }
    return estimate;
}

Real
estimateFmaxMhz(const ArchConfig& config)
{
    const Real pressure = static_cast<Real>(config.c) *
        static_cast<Real>(config.structures.totalOutputs());
    // 300 MHz HLS target, eroded by the alignment/routing network.
    const Real fmax = 300.0 / (1.0 + std::pow(pressure / 2500.0, 1.2));
    return fmax;
}

bool
fitsU50(const ResourceEstimate& estimate)
{
    return estimate.dsp <= u50Budget().dsp;
}

} // namespace rsqp
