/**
 * @file
 * ExecutionConfig: the one place execution-resource knobs live.
 *
 * PR 1 grew three independent `numThreads` fields (OsqpSettings,
 * CustomizeSettings, ArchConfig) that all meant the same thing and
 * had to be kept in sync by hand. PR 5 collapsed them onto this
 * struct behind deprecated forwarding aliases; the aliases are now
 * removed and every consumer reads execution.numThreads directly.
 */

#ifndef RSQP_COMMON_EXECUTION_HPP
#define RSQP_COMMON_EXECUTION_HPP

#include "common/types.hpp"

namespace rsqp
{

/**
 * Numeric precision of the PCG hot path.
 *
 * Fp64 runs the inner linear solves entirely in double. MixedFp32
 * stores the operator and iterate vectors in fp32 (the precision of
 * the paper's FPGA MAC trees) and accumulates reductions in fp64,
 * wrapped in an fp64 iterative-refinement loop so the returned
 * solution meets the same fp64 tolerance as the pure-double path.
 */
enum class PrecisionMode : int
{
    Fp64 = 0,
    MixedFp32 = 1,
};

/** Printable precision-mode name ("fp64" / "mixed-fp32"). */
inline const char*
precisionModeName(PrecisionMode mode)
{
    return mode == PrecisionMode::MixedFp32 ? "mixed-fp32" : "fp64";
}

/** Execution-resource configuration shared by all solve paths. */
struct ExecutionConfig
{
    /**
     * Worker threads for the parallel hot path. 0 means "use the
     * hardware concurrency"; 1 forces fully serial execution. The
     * result is bitwise-identical at every setting — threading only
     * changes wall clock, never the deterministic reduction order.
     */
    Index numThreads = 0;

    /** Numeric precision of the PCG inner solves. */
    PrecisionMode precision = PrecisionMode::Fp64;
};

} // namespace rsqp

#endif // RSQP_COMMON_EXECUTION_HPP
