/**
 * @file
 * ExecutionConfig: the one place execution-resource knobs live.
 *
 * PR 1 grew three independent `numThreads` fields (OsqpSettings,
 * CustomizeSettings, ArchConfig) that all meant the same thing and
 * had to be kept in sync by hand. They are now deprecated aliases;
 * each consumer carries an ExecutionConfig and resolves the effective
 * thread count through resolveNumThreads(), which honors a non-zero
 * legacy field so old call sites keep working for one release.
 */

#ifndef RSQP_COMMON_EXECUTION_HPP
#define RSQP_COMMON_EXECUTION_HPP

#include "common/types.hpp"

namespace rsqp
{

/** Execution-resource configuration shared by all solve paths. */
struct ExecutionConfig
{
    /**
     * Worker threads for the parallel hot path. 0 means "use the
     * hardware concurrency"; 1 forces fully serial execution. The
     * result is bitwise-identical at every setting — threading only
     * changes wall clock, never the deterministic reduction order.
     */
    Index numThreads = 0;
};

/**
 * Effective thread count given a config and the value of a deprecated
 * legacy `numThreads` alias: the legacy field wins when it was set
 * (non-zero), so pre-ExecutionConfig call sites keep their behavior.
 */
inline Index
resolveNumThreads(const ExecutionConfig& execution, Index legacy)
{
    return legacy != 0 ? legacy : execution.numThreads;
}

} // namespace rsqp

#endif // RSQP_COMMON_EXECUTION_HPP
