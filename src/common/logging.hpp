/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * RSQP_FATAL is for user errors (bad problem data, invalid settings):
 * it throws rsqp::FatalError so library users can catch and recover.
 * RSQP_PANIC is for internal invariant violations (library bugs): it
 * aborts after printing the location.
 */

#ifndef RSQP_COMMON_LOGGING_HPP
#define RSQP_COMMON_LOGGING_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace rsqp
{

/** Exception thrown on unrecoverable *user* errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {}
};

namespace detail
{

[[noreturn]] void fatalImpl(const char* file, int line,
                            const std::string& msg);
[[noreturn]] void panicImpl(const char* file, int line,
                            const std::string& msg);
void warnImpl(const char* file, int line, const std::string& msg);
void informImpl(const std::string& msg);

/** Stream-compose a message from variadic arguments. */
template <typename... Args>
std::string
composeMessage(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Verbosity control for inform/warn output (errors always print). */
void setLogVerbose(bool verbose);
bool logVerbose();

} // namespace rsqp

/** Unrecoverable user error: throws rsqp::FatalError. */
#define RSQP_FATAL(...)                                                     \
    ::rsqp::detail::fatalImpl(__FILE__, __LINE__,                           \
        ::rsqp::detail::composeMessage(__VA_ARGS__))

/** Internal invariant violation: prints and aborts. */
#define RSQP_PANIC(...)                                                     \
    ::rsqp::detail::panicImpl(__FILE__, __LINE__,                           \
        ::rsqp::detail::composeMessage(__VA_ARGS__))

/** Checked invariant; panics with the stringified condition on failure. */
#define RSQP_ASSERT(cond, ...)                                              \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::rsqp::detail::panicImpl(__FILE__, __LINE__,                   \
                ::rsqp::detail::composeMessage("assertion failed: ", #cond, \
                    " ", ##__VA_ARGS__));                                   \
        }                                                                   \
    } while (0)

/** Non-fatal diagnostic for suspicious-but-survivable conditions. */
#define RSQP_WARN(...)                                                      \
    ::rsqp::detail::warnImpl(__FILE__, __LINE__,                            \
        ::rsqp::detail::composeMessage(__VA_ARGS__))

/** Status message for the user; suppressed unless verbose. */
#define RSQP_INFORM(...)                                                    \
    ::rsqp::detail::informImpl(                                             \
        ::rsqp::detail::composeMessage(__VA_ARGS__))

#endif // RSQP_COMMON_LOGGING_HPP
