/**
 * @file
 * Deterministic pseudo-random number generation for problem synthesis.
 *
 * All benchmark problems are generated from explicit seeds so every
 * experiment in the repository is exactly reproducible. The generator is
 * xoshiro256** (public-domain algorithm by Blackman & Vigna) implemented
 * from the published description.
 */

#ifndef RSQP_COMMON_RANDOM_HPP
#define RSQP_COMMON_RANDOM_HPP

#include <cstdint>
#include <vector>

#include "types.hpp"

namespace rsqp
{

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also be
 * plugged into <random> distributions if ever needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit output. */
    result_type operator()();

    /** Uniform real in [0, 1). */
    Real uniform();

    /** Uniform real in [lo, hi). */
    Real uniform(Real lo, Real hi);

    /** Standard normal via Box-Muller (deterministic, cached pair). */
    Real normal();

    /** Normal with the given mean and standard deviation. */
    Real normal(Real mean, Real stddev);

    /** Uniform integer in [0, n), n > 0. */
    Index uniformIndex(Index n);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(Real p);

    /**
     * Sample k distinct indices from [0, n) in increasing order.
     * Uses Floyd's algorithm; O(k log k).
     */
    IndexVector sampleDistinct(Index n, Index k);

    /** Random permutation of [0, n) via Fisher-Yates. */
    IndexVector permutation(Index n);

  private:
    std::uint64_t next64();

    std::uint64_t state_[4];
    bool hasCachedNormal_ = false;
    Real cachedNormal_ = 0.0;
};

} // namespace rsqp

#endif // RSQP_COMMON_RANDOM_HPP
