#include "logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace rsqp
{

namespace
{
std::atomic<bool> g_verbose{false};
} // namespace

void
setLogVerbose(bool verbose)
{
    g_verbose.store(verbose, std::memory_order_relaxed);
}

bool
logVerbose()
{
    return g_verbose.load(std::memory_order_relaxed);
}

namespace detail
{

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::string full = std::string("rsqp fatal: ") + msg + " [" + file +
        ":" + std::to_string(line) + "]";
    throw FatalError(full);
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "rsqp panic: %s [%s:%d]\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::abort();
}

void
warnImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "rsqp warn: %s [%s:%d]\n", msg.c_str(), file,
                 line);
}

void
informImpl(const std::string& msg)
{
    if (logVerbose())
        std::fprintf(stderr, "rsqp: %s\n", msg.c_str());
}

} // namespace detail
} // namespace rsqp
