#include "fault_injection.hpp"

#include <cstring>
#include <limits>

#include "common/logging.hpp"

namespace rsqp
{

namespace
{

/** splitmix64 finalizer — the repo's standard seeding mixer. */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

thread_local FaultInjector* tActiveInjector = nullptr;

} // namespace

FaultInjector::FaultInjector(FaultInjectionConfig config)
    : config_(config)
{
    RSQP_ASSERT(config_.ratePerWord >= 0.0 && config_.ratePerWord <= 1.0,
                "fault rate must be a probability, got ",
                config_.ratePerWord);
    RSQP_ASSERT(config_.nanFraction >= 0.0 && config_.nanFraction <= 1.0,
                "nanFraction must be a probability, got ",
                config_.nanFraction);
}

std::uint64_t
FaultInjector::wordHash(std::uint64_t stream, std::uint64_t index) const
{
    return mix64(mix64(mix64(config_.seed ^ epoch_) ^ stream) ^ index);
}

Real
FaultInjector::corruptWord(Real value, std::uint64_t stream,
                           std::uint64_t index)
{
    if (!config_.enabled || config_.ratePerWord <= 0.0)
        return value;
    const std::uint64_t h = wordHash(stream, index);
    // Top 53 bits as a uniform fraction in [0, 1).
    const Real draw =
        static_cast<Real>(h >> 11) * 0x1.0p-53;
    if (draw >= config_.ratePerWord)
        return value;

    ++faults_;
    // Low bits (independent of the acceptance draw) pick the flavor.
    if (static_cast<Real>(h & 0xff) <
        config_.nanFraction * 256.0) {
        ++nans_;
        return std::numeric_limits<Real>::quiet_NaN();
    }
    ++bitFlips_;
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(Real),
                  "bit-flip model assumes a 64-bit Real");
    std::memcpy(&bits, &value, sizeof(bits));
    bits ^= 1ULL << ((h >> 8) % 64);
    std::memcpy(&value, &bits, sizeof(bits));
    return value;
}

void
FaultInjector::corruptVector(Vector& v, std::uint64_t stream)
{
    if (!config_.enabled || config_.ratePerWord <= 0.0)
        return;
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = corruptWord(v[i], stream, static_cast<std::uint64_t>(i));
}

void
FaultInjector::resetCounters()
{
    faults_.store(0);
    bitFlips_.store(0);
    nans_.store(0);
}

const char*
toString(FleetFaultKind kind)
{
    switch (kind) {
      case FleetFaultKind::KillCore: return "kill";
      case FleetFaultKind::HangCore: return "hang";
      case FleetFaultKind::DegradeCore: return "degrade";
    }
    return "unknown";
}

FleetFaultInjector::FleetFaultInjector(
    std::vector<FleetFaultEvent> schedule)
{
    schedule_.reserve(schedule.size());
    for (FleetFaultEvent& event : schedule)
        schedule_.push_back({event, false});
}

std::vector<FleetFaultEvent>
FleetFaultInjector::standardSchedule(std::uint64_t seed,
                                     Count horizon_jobs)
{
    // Trigger points in the middle half of the horizon: early enough
    // to fire on any reasonable workload, late enough that the fleet
    // has warm traffic to fail over.
    const Count span = horizon_jobs > 4 ? horizon_jobs / 2 : 1;
    const Count base = horizon_jobs > 4 ? horizon_jobs / 4 : 1;

    FleetFaultEvent kill;
    kill.kind = FleetFaultKind::KillCore;
    kill.core = kAnyCore;
    kill.atFleetJob = base + static_cast<Count>(mix64(seed) % span);
    kill.failProbes = 1;  // one failed probe: the backoff must double

    FleetFaultEvent hang;
    hang.kind = FleetFaultKind::HangCore;
    hang.core = kAnyCore;
    hang.atFleetJob =
        base + static_cast<Count>(mix64(seed ^ 0x68616e67ULL) % span);
    // A hang scheduled on the same start index as the kill would fire
    // on the kill's failover job; keep the two events apart.
    if (hang.atFleetJob == kill.atFleetJob)
        ++hang.atFleetJob;

    return {kill, hang};
}

const FleetFaultEvent*
FleetFaultInjector::onJobStart(std::size_t core,
                               Count core_jobs_started,
                               Count fleet_jobs_started)
{
    for (Scheduled& entry : schedule_) {
        if (entry.delivered)
            continue;
        const FleetFaultEvent& event = entry.event;
        const bool due =
            event.core == kAnyCore
                ? fleet_jobs_started >= event.atFleetJob
                : (event.core == core &&
                   core_jobs_started >= event.atCoreJob);
        if (!due)
            continue;
        entry.delivered = true;
        probeGates_[core] = event.failProbes;
        switch (event.kind) {
          case FleetFaultKind::KillCore: ++kills_; break;
          case FleetFaultKind::HangCore: ++hangs_; break;
          case FleetFaultKind::DegradeCore: ++degrades_; break;
        }
        return &entry.event;
    }
    return nullptr;
}

bool
FleetFaultInjector::probeSucceeds(std::size_t core,
                                  Count probe_index) const
{
    const auto it = probeGates_.find(core);
    return it == probeGates_.end() || probe_index >= it->second;
}

FaultScope::FaultScope(FaultInjector* injector)
    : prev_(tActiveInjector)
{
    if (injector != nullptr && injector->enabled())
        tActiveInjector = injector;
}

FaultScope::~FaultScope()
{
    tActiveInjector = prev_;
}

FaultInjector*
activeFaultInjector()
{
    return tActiveInjector;
}

} // namespace rsqp
