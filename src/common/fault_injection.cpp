#include "fault_injection.hpp"

#include <cstring>
#include <limits>

#include "common/logging.hpp"

namespace rsqp
{

namespace
{

/** splitmix64 finalizer — the repo's standard seeding mixer. */
inline std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

thread_local FaultInjector* tActiveInjector = nullptr;

} // namespace

FaultInjector::FaultInjector(FaultInjectionConfig config)
    : config_(config)
{
    RSQP_ASSERT(config_.ratePerWord >= 0.0 && config_.ratePerWord <= 1.0,
                "fault rate must be a probability, got ",
                config_.ratePerWord);
    RSQP_ASSERT(config_.nanFraction >= 0.0 && config_.nanFraction <= 1.0,
                "nanFraction must be a probability, got ",
                config_.nanFraction);
}

std::uint64_t
FaultInjector::wordHash(std::uint64_t stream, std::uint64_t index) const
{
    return mix64(mix64(mix64(config_.seed ^ epoch_) ^ stream) ^ index);
}

Real
FaultInjector::corruptWord(Real value, std::uint64_t stream,
                           std::uint64_t index)
{
    if (!config_.enabled || config_.ratePerWord <= 0.0)
        return value;
    const std::uint64_t h = wordHash(stream, index);
    // Top 53 bits as a uniform fraction in [0, 1).
    const Real draw =
        static_cast<Real>(h >> 11) * 0x1.0p-53;
    if (draw >= config_.ratePerWord)
        return value;

    ++faults_;
    // Low bits (independent of the acceptance draw) pick the flavor.
    if (static_cast<Real>(h & 0xff) <
        config_.nanFraction * 256.0) {
        ++nans_;
        return std::numeric_limits<Real>::quiet_NaN();
    }
    ++bitFlips_;
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(Real),
                  "bit-flip model assumes a 64-bit Real");
    std::memcpy(&bits, &value, sizeof(bits));
    bits ^= 1ULL << ((h >> 8) % 64);
    std::memcpy(&value, &bits, sizeof(bits));
    return value;
}

void
FaultInjector::corruptVector(Vector& v, std::uint64_t stream)
{
    if (!config_.enabled || config_.ratePerWord <= 0.0)
        return;
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = corruptWord(v[i], stream, static_cast<std::uint64_t>(i));
}

void
FaultInjector::resetCounters()
{
    faults_.store(0);
    bitFlips_.store(0);
    nans_.store(0);
}

FaultScope::FaultScope(FaultInjector* injector)
    : prev_(tActiveInjector)
{
    if (injector != nullptr && injector->enabled())
        tActiveInjector = injector;
}

FaultScope::~FaultScope()
{
    tActiveInjector = prev_;
}

FaultInjector*
activeFaultInjector()
{
    return tActiveInjector;
}

} // namespace rsqp
