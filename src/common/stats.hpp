/**
 * @file
 * Small statistics helpers used by benchmark harnesses and reports.
 */

#ifndef RSQP_COMMON_STATS_HPP
#define RSQP_COMMON_STATS_HPP

#include <string>
#include <vector>

#include "types.hpp"

namespace rsqp
{

/** Streaming mean/min/max/stddev accumulator (Welford's algorithm). */
class RunningStats
{
  public:
    void add(double value);

    std::size_t count() const { return count_; }
    double mean() const { return mean_; }
    double min() const;
    double max() const;
    double variance() const;
    double stddev() const;

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Percentile of a sample (linear interpolation); p in [0, 100]. */
double percentile(std::vector<double> samples, double p);

/** Geometric mean; values must be strictly positive. */
double geometricMean(const std::vector<double>& values);

/** Render a double with fixed precision (helper for table output). */
std::string formatFixed(double value, int digits);

/** Render a double in scientific notation with the given digits. */
std::string formatSci(double value, int digits);

} // namespace rsqp

#endif // RSQP_COMMON_STATS_HPP
