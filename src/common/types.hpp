/**
 * @file
 * Fundamental scalar and index types shared by every RSQP module.
 *
 * The solver numerics use double precision ("Real"); the simulated
 * accelerator datapath additionally supports single precision to mirror
 * the FP32 MAC trees of the paper's FPGA implementation.
 */

#ifndef RSQP_COMMON_TYPES_HPP
#define RSQP_COMMON_TYPES_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace rsqp
{

/** Index type used for matrix dimensions and sparse coordinates. */
using Index = std::int32_t;

/** Wide index type used for non-zero counts and cycle counters. */
using Count = std::int64_t;

/** Scalar type of the reference solver numerics. */
using Real = double;

/** Scalar type of the simulated accelerator datapath (FP32 MAC trees). */
using ArchReal = float;

/** Dense vector of solver scalars. */
using Vector = std::vector<Real>;

/** Dense fp32 vector for the mixed-precision PCG storage mirrors. */
using FloatVector = std::vector<ArchReal>;

/** Dense vector of indices. */
using IndexVector = std::vector<Index>;

/** A value representing "positive infinity" for constraint bounds. */
inline constexpr Real kInf = 1e30;

/** Machine epsilon wrapper for Real. */
inline constexpr Real kEps = std::numeric_limits<Real>::epsilon();

/** Clamp helper mirroring the OSQP projection operator semantics. */
inline Real
clampReal(Real v, Real lo, Real hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

} // namespace rsqp

#endif // RSQP_COMMON_TYPES_HPP
