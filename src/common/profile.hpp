/**
 * @file
 * Lightweight hot-path profiler for the matrix-free KKT pipeline.
 *
 * The indirect (PCG) backend spends essentially all of its time in six
 * kernel families: the three SpMV passes of the reduced operator
 * (P, A, A'), the fused CG vector updates, the preconditioner apply and
 * the dot/norm reductions. Each family gets a nanosecond accumulator
 * and a call counter so a solve can report exactly where its wall clock
 * went — the software twin of the per-stage utilization counters an
 * RSQP bitstream exposes over its status registers.
 *
 * Activation is scoped, not global: a HotPathProfilerScope installs a
 * profiler in a thread-local slot and every ProfileScope constructed on
 * that thread while the slot is non-null records into it. With no
 * active profiler a ProfileScope is two branches and no clock read, so
 * instrumented kernels stay cheap for callers that never profile.
 * Counters are relaxed atomics: concurrent batch solves each install
 * their own profiler on their own thread, and a snapshot taken while
 * another thread records still reads consistent per-cell values.
 */

#ifndef RSQP_COMMON_PROFILE_HPP
#define RSQP_COMMON_PROFILE_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace rsqp
{

/** Kernel families of the indirect-backend hot path. */
enum class ProfilePhase
{
    SpmvP,          ///< y = (P + sigma I) x row-gather (full-CSR P)
    SpmvA,          ///< w = diag(rho) A x row-gather (CSR mirror of A)
    SpmvAt,         ///< y += A' w row-gather (A' view of A's CSC)
    FusedVectorOps, ///< fused CG updates (axpyDot, xMinusAlphaPDot, ...)
    Precond,        ///< Jacobi apply (+ fused dot)
    Reduction,      ///< stand-alone dot / norm reductions
};

/** Number of ProfilePhase values. */
inline constexpr std::size_t kNumProfilePhases = 6;

/** Snake-case phase name used as the JSON key. */
const char* toString(ProfilePhase phase);

/** Accumulated cost of one phase. */
struct ProfilePhaseStats
{
    std::uint64_t nanoseconds = 0;
    std::uint64_t calls = 0;
};

/** Plain snapshot of a HotPathProfiler, safe to copy and compare. */
struct HotPathProfile
{
    std::array<ProfilePhaseStats, kNumProfilePhases> phases;

    const ProfilePhaseStats&
    operator[](ProfilePhase phase) const
    {
        return phases[static_cast<std::size_t>(phase)];
    }

    /** Sum of the per-phase nanosecond accumulators. */
    std::uint64_t totalNanoseconds() const;

    /** Sum of the per-phase call counters. */
    std::uint64_t totalCalls() const;

    /**
     * One-line JSON object: a {"ns": ..., "calls": ...} entry per phase
     * keyed by toString(phase), plus "total_ns" and "total_calls".
     */
    std::string toJson() const;
};

/** Thread-safe accumulator the scoped timers record into. */
class HotPathProfiler
{
  public:
    /** Add one timed call to a phase. */
    void
    record(ProfilePhase phase, std::uint64_t nanoseconds)
    {
        Cell& cell = cells_[static_cast<std::size_t>(phase)];
        cell.nanoseconds.fetch_add(nanoseconds,
                                   std::memory_order_relaxed);
        cell.calls.fetch_add(1, std::memory_order_relaxed);
    }

    /** Zero every counter. */
    void reset();

    /** Copy the counters into a plain HotPathProfile. */
    HotPathProfile snapshot() const;

  private:
    struct Cell
    {
        std::atomic<std::uint64_t> nanoseconds{0};
        std::atomic<std::uint64_t> calls{0};
    };

    std::array<Cell, kNumProfilePhases> cells_;
};

/** Profiler the calling thread currently records into (may be null). */
HotPathProfiler* activeHotPathProfiler();

/**
 * RAII activation of a profiler for the calling thread; restores the
 * previous active profiler (scopes nest). Passing nullptr suspends
 * profiling for the scope's lifetime.
 */
class HotPathProfilerScope
{
  public:
    explicit HotPathProfilerScope(HotPathProfiler* profiler);
    ~HotPathProfilerScope();

    HotPathProfilerScope(const HotPathProfilerScope&) = delete;
    HotPathProfilerScope& operator=(const HotPathProfilerScope&) = delete;

  private:
    HotPathProfiler* prev_;
};

/**
 * Scoped timer: records the enclosed region into the calling thread's
 * active profiler, or does nothing when no profiler is active.
 */
class ProfileScope
{
  public:
    explicit ProfileScope(ProfilePhase phase)
        : profiler_(activeHotPathProfiler()), phase_(phase)
    {
        if (profiler_ != nullptr)
            start_ = std::chrono::steady_clock::now();
    }

    ~ProfileScope()
    {
        if (profiler_ != nullptr) {
            const auto dt = std::chrono::steady_clock::now() - start_;
            profiler_->record(
                phase_,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        dt)
                        .count()));
        }
    }

    ProfileScope(const ProfileScope&) = delete;
    ProfileScope& operator=(const ProfileScope&) = delete;

  private:
    HotPathProfiler* profiler_;
    ProfilePhase phase_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace rsqp

#endif // RSQP_COMMON_PROFILE_HPP
