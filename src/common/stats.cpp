#include "stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "logging.hpp"

namespace rsqp
{

void
RunningStats::add(double value)
{
    if (count_ == 0) {
        min_ = value;
        max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
}

double
RunningStats::min() const
{
    RSQP_ASSERT(count_ > 0, "min() of empty stats");
    return min_;
}

double
RunningStats::max() const
{
    RSQP_ASSERT(count_ > 0, "max() of empty stats");
    return max_;
}

double
RunningStats::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> samples, double p)
{
    RSQP_ASSERT(!samples.empty(), "percentile of empty sample");
    RSQP_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    std::sort(samples.begin(), samples.end());
    if (samples.size() == 1)
        return samples.front();
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

double
geometricMean(const std::vector<double>& values)
{
    RSQP_ASSERT(!values.empty(), "geometricMean of empty sample");
    double log_sum = 0.0;
    for (double v : values) {
        RSQP_ASSERT(v > 0.0, "geometricMean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string
formatFixed(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
formatSci(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", digits, value);
    return buf;
}

} // namespace rsqp
