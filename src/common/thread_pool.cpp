#include "thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "common/logging.hpp"
#if RSQP_TELEMETRY_ENABLED
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#endif

namespace rsqp
{

namespace
{

#if RSQP_TELEMETRY_ENABLED
/** Process-wide pool metrics (shared by every ThreadPool instance). */
struct PoolMetrics
{
    telemetry::Counter& tasks;
    telemetry::Gauge& queueDepth;
    telemetry::Histogram& waitNs;
};

PoolMetrics&
poolMetrics()
{
    static PoolMetrics metrics{
        telemetry::MetricsRegistry::global().counter(
            "rsqp_threadpool_tasks_total",
            "Tasks submitted to the worker-pool queue"),
        telemetry::MetricsRegistry::global().gauge(
            "rsqp_threadpool_queue_depth",
            "Tasks currently waiting in the worker-pool queue"),
        telemetry::MetricsRegistry::global().histogram(
            "rsqp_threadpool_queue_wait_ns",
            "Nanoseconds a task waited in the queue before a worker "
            "picked it up"),
    };
    return metrics;
}
#endif

/** Innermost NumThreadsScope override of this thread (0 = none). */
thread_local Index tlsNumThreads = 0;

/** Is this thread currently running inside a parallel region? */
thread_local bool tlsInsideWorker = false;

std::atomic<Index> processNumThreads{0};

struct InsideWorkerScope
{
    bool prev;
    InsideWorkerScope() : prev(tlsInsideWorker) { tlsInsideWorker = true; }
    ~InsideWorkerScope() { tlsInsideWorker = prev; }
};

} // namespace

unsigned
hardwareConcurrency()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void
setProcessNumThreads(Index n)
{
    RSQP_ASSERT(n >= 0, "setProcessNumThreads: negative count");
    processNumThreads.store(n);
}

Index
effectiveNumThreads()
{
    if (tlsNumThreads > 0)
        return tlsNumThreads;
    const Index process_default = processNumThreads.load();
    if (process_default > 0)
        return process_default;
    return static_cast<Index>(hardwareConcurrency());
}

NumThreadsScope::NumThreadsScope(Index n) : prev_(tlsNumThreads)
{
    RSQP_ASSERT(n >= 0, "NumThreadsScope: negative count");
    if (n > 0)
        tlsNumThreads = n;
}

NumThreadsScope::~NumThreadsScope()
{
    tlsNumThreads = prev_;
}

ThreadPool::ThreadPool(unsigned num_workers)
{
    workers_.reserve(num_workers);
    for (unsigned i = 0; i < num_workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    InsideWorkerScope inside;
    while (true) {
        QueuedTask task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop requested and queue drained
            task = std::move(queue_.front());
            queue_.pop_front();
#if RSQP_TELEMETRY_ENABLED
            poolMetrics().queueDepth.set(
                static_cast<std::int64_t>(queue_.size()));
#endif
        }
#if RSQP_TELEMETRY_ENABLED
        poolMetrics().waitNs.observe(telemetry::traceNowNs() -
                                     task.enqueuedNs);
#endif
        task.fn();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                idle_.notify_all();
        }
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (workers_.empty()) {
        // No workers: degenerate inline execution keeps submit() usable.
        InsideWorkerScope inside;
        task();
        return;
    }
    QueuedTask queued;
    queued.fn = std::move(task);
#if RSQP_TELEMETRY_ENABLED
    queued.enqueuedNs = telemetry::traceNowNs();
#endif
    {
        std::lock_guard<std::mutex> lock(mutex_);
        RSQP_ASSERT(!stop_, "submit on a stopping ThreadPool");
        queue_.push_back(std::move(queued));
        ++inFlight_;
#if RSQP_TELEMETRY_ENABLED
        poolMetrics().tasks.increment();
        poolMetrics().queueDepth.set(
            static_cast<std::int64_t>(queue_.size()));
#endif
    }
    wake_.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::parallelFor(Index begin, Index end, Index grain,
                        const std::function<void(Index, Index)>& fn,
                        unsigned max_workers)
{
    if (end <= begin)
        return;
    if (grain < 1)
        grain = 1;
    const Count span = static_cast<Count>(end) - begin;
    const Count num_chunks = (span + grain - 1) / grain;

    Count budget = max_workers > 0 ? static_cast<Count>(max_workers)
                                   : static_cast<Count>(
                                         effectiveNumThreads());
    budget = std::min(budget,
                      static_cast<Count>(workers_.size()) + 1);
    budget = std::min(budget, num_chunks);

    if (budget <= 1 || tlsInsideWorker) {
        // Serial fallback / nested region: same chunk arithmetic is
        // preserved by callers that care (reduceSum iterates chunks in
        // order); elementwise bodies are order-insensitive anyway.
        InsideWorkerScope inside;
        fn(begin, end);
        return;
    }

    // Completion state lives on the heap, kept alive by the tasks
    // themselves: a helper still queued when the caller returns (all
    // chunks already claimed and finished) wakes up later, fails to
    // claim a chunk and touches only this block — never the caller's
    // stack frame. The caller waits on finished == num_chunks, and a
    // chunk can only be claimed before it is finished, so fn (captured
    // by reference below) outlives every fn() call.
    struct RegionState
    {
        std::atomic<Count> nextChunk{0};
        std::atomic<bool> failed{false};
        std::mutex mutex; // guards finished and error
        std::condition_variable done;
        Count finished = 0;
        std::exception_ptr error;
    };
    auto state = std::make_shared<RegionState>();

    auto run_chunks = [state, begin, end, grain, num_chunks, &fn] {
        InsideWorkerScope inside;
        Count finished_here = 0;
        while (true) {
            const Count chunk = state->nextChunk.fetch_add(1);
            if (chunk >= num_chunks)
                break;
            // After a failure the remaining chunks are still claimed
            // and counted (so the caller's wait terminates) but their
            // bodies are skipped.
            if (!state->failed.load(std::memory_order_relaxed)) {
                const Index b =
                    begin + static_cast<Index>(chunk * grain);
                const Index e = static_cast<Index>(std::min<Count>(
                    static_cast<Count>(b) + grain, end));
                try {
                    fn(b, e);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(state->mutex);
                    if (!state->error)
                        state->error = std::current_exception();
                    state->failed.store(true);
                }
            }
            ++finished_here;
        }
        if (finished_here > 0) {
            std::lock_guard<std::mutex> lock(state->mutex);
            state->finished += finished_here;
            if (state->finished == num_chunks)
                state->done.notify_all();
        }
    };

    for (Count i = 0; i + 1 < budget; ++i)
        submit(run_chunks);
    run_chunks();

    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(state->mutex);
        state->done.wait(
            lock, [&] { return state->finished == num_chunks; });
        error = state->error;
    }
    if (error)
        std::rethrow_exception(error);
}

Real
ThreadPool::reduceSum(Index begin, Index end, Index grain,
                      const std::function<Real(Index, Index)>& partial,
                      unsigned max_workers)
{
    if (end <= begin)
        return 0.0;
    if (grain < 1)
        grain = 1;
    const Count span = static_cast<Count>(end) - begin;
    const Count num_chunks = (span + grain - 1) / grain;
    std::vector<Real> partials(static_cast<std::size_t>(num_chunks),
                               0.0);
    parallelFor(
        0, static_cast<Index>(num_chunks), 1,
        [&](Index cb, Index ce) {
            for (Index c = cb; c < ce; ++c) {
                const Index b =
                    begin + static_cast<Index>(
                                static_cast<Count>(c) * grain);
                const Index e = static_cast<Index>(std::min<Count>(
                    static_cast<Count>(b) + grain, end));
                partials[static_cast<std::size_t>(c)] = partial(b, e);
            }
        },
        max_workers);
    Real acc = partials[0];
    for (std::size_t c = 1; c < partials.size(); ++c)
        acc += partials[c];
    return acc;
}

Real
ThreadPool::reduceMax(Index begin, Index end, Index grain, Real identity,
                      const std::function<Real(Index, Index)>& partial,
                      unsigned max_workers)
{
    if (end <= begin)
        return identity;
    if (grain < 1)
        grain = 1;
    const Count span = static_cast<Count>(end) - begin;
    const Count num_chunks = (span + grain - 1) / grain;
    std::vector<Real> partials(static_cast<std::size_t>(num_chunks),
                               identity);
    parallelFor(
        0, static_cast<Index>(num_chunks), 1,
        [&](Index cb, Index ce) {
            for (Index c = cb; c < ce; ++c) {
                const Index b =
                    begin + static_cast<Index>(
                                static_cast<Count>(c) * grain);
                const Index e = static_cast<Index>(std::min<Count>(
                    static_cast<Count>(b) + grain, end));
                partials[static_cast<std::size_t>(c)] = partial(b, e);
            }
        },
        max_workers);
    Real acc = identity;
    for (Real v : partials)
        acc = std::max(acc, v);
    return acc;
}

ThreadPool&
ThreadPool::global()
{
    // Capacity, not policy: per-call width is bounded by the caller's
    // effectiveNumThreads(). A floor of 3 workers keeps the parallel
    // machinery exercised (tests, TSan) even on small hosts.
    static ThreadPool pool(std::max(3u, hardwareConcurrency() - 1));
    return pool;
}

bool
ThreadPool::insideWorker()
{
    return tlsInsideWorker;
}

} // namespace rsqp
