/**
 * @file
 * Fixed-size worker pool shared by the hot execution paths: the
 * parallel vector kernels (linalg/vector_ops), the simulated SpMV
 * engine lanes (arch/machine) and the multi-instance batch solver
 * (core/rsqp_solver::solveBatch).
 *
 * Design goals, in priority order:
 *
 *  1. **Determinism.** Numeric results must not depend on the thread
 *     count or on scheduling. parallelFor partitions a range into
 *     chunks of a *fixed* grain, so the chunk boundaries depend only on
 *     the range and grain; reduceSum stores one partial per chunk in a
 *     pre-allocated slot and combines the partials in ascending chunk
 *     order. A reduction therefore produces bitwise-identical results
 *     run-to-run at any thread count (1 included).
 *  2. **Nested safety.** A parallelFor issued from inside a pool task
 *     runs inline (serially) instead of re-entering the pool, so
 *     nested parallel regions (e.g. a threaded solve inside
 *     solveBatch) can never deadlock and never oversubscribe.
 *  3. **Exact legacy fallback.** With an effective thread count of 1
 *     the pool is bypassed entirely: the body runs inline on the
 *     calling thread.
 *
 * The effective thread count is resolved per calling thread:
 * a NumThreadsScope override if one is active, else the process-wide
 * default (setProcessNumThreads), else std::thread::hardware_concurrency.
 */

#ifndef RSQP_COMMON_THREAD_POOL_HPP
#define RSQP_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "telemetry/config.hpp"

namespace rsqp
{

/** Hardware thread count (always >= 1). */
unsigned hardwareConcurrency();

/**
 * Process-wide default thread count: 0 restores the hardware default.
 * Applies to every thread with no active NumThreadsScope.
 */
void setProcessNumThreads(Index n);

/**
 * Thread count the calling thread would use for a parallel region
 * (>= 1): the innermost NumThreadsScope override, else the process
 * default, else hardwareConcurrency().
 */
Index effectiveNumThreads();

/**
 * RAII thread-local override of the effective thread count, used to
 * plumb the OsqpSettings / ArchConfig num_threads knobs down to the
 * kernels without widening every call signature. 0 = inherit.
 */
class NumThreadsScope
{
  public:
    explicit NumThreadsScope(Index n);
    ~NumThreadsScope();

    NumThreadsScope(const NumThreadsScope&) = delete;
    NumThreadsScope& operator=(const NumThreadsScope&) = delete;

  private:
    Index prev_;
};

/** Fixed-size worker pool with deterministic partitioned reductions. */
class ThreadPool
{
  public:
    /** Spawn num_workers worker threads (0 = everything runs inline). */
    explicit ThreadPool(unsigned num_workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads (the caller participates on top). */
    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Fire-and-forget task; safe to call from inside a pool task. */
    void submit(std::function<void()> task);

    /** Block until the submit() queue is empty and all tasks finished. */
    void waitIdle();

    /**
     * Apply fn(chunk_begin, chunk_end) over [begin, end) partitioned
     * into grain-sized chunks, using at most max_workers threads
     * (0 = the caller's effectiveNumThreads()). Blocks until every
     * chunk finished — but not until every queued helper task was
     * dequeued: helpers that start after the range is drained no-op
     * against heap-owned region state, so a busy pool never stalls an
     * unrelated caller. The first exception thrown by fn is rethrown
     * here. Runs inline when the budget is 1, the range is a single
     * chunk, or the caller is already inside a pool task.
     */
    void parallelFor(Index begin, Index end, Index grain,
                     const std::function<void(Index, Index)>& fn,
                     unsigned max_workers = 0);

    /**
     * Deterministic partitioned sum: partial(chunk_begin, chunk_end)
     * is evaluated once per fixed grain-sized chunk and the partials
     * are combined in ascending chunk order — the result depends only
     * on (begin, end, grain), never on the thread count.
     */
    Real reduceSum(Index begin, Index end, Index grain,
                   const std::function<Real(Index, Index)>& partial,
                   unsigned max_workers = 0);

    /** Like reduceSum but combining with max (order-insensitive). */
    Real reduceMax(Index begin, Index end, Index grain, Real identity,
                   const std::function<Real(Index, Index)>& partial,
                   unsigned max_workers = 0);

    /** The shared process-wide pool used by all rsqp kernels. */
    static ThreadPool& global();

    /** Is the calling thread inside a task of any ThreadPool? */
    static bool insideWorker();

  private:
    /**
     * Queue element: the task plus its enqueue timestamp, so workers
     * can report queue-wait time to the metrics registry. The stamp
     * compiles out with the rest of the timed telemetry.
     */
    struct QueuedTask
    {
        std::function<void()> fn;
#if RSQP_TELEMETRY_ENABLED
        std::uint64_t enqueuedNs = 0;
#endif
    };

    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<QueuedTask> queue_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::size_t inFlight_ = 0;
    bool stop_ = false;
};

/** Grain (elements per chunk) of the deterministic reductions. */
inline constexpr Index kParallelGrain = 4096;

/** Minimum range length before a kernel goes parallel. */
inline constexpr Index kParallelThreshold = 8192;

/**
 * Convenience wrapper over the global pool: chunk [0, n) with the
 * default grain when worthwhile, else run body(0, n) inline. Templated
 * on the body so the inline path never materializes a std::function —
 * a serial caller (1 effective thread, small range, or nested inside a
 * worker) performs zero heap allocations here, which the steady-state
 * PCG loop relies on.
 */
template <typename Body>
inline void
parallelForRange(Index n, Body&& body)
{
    if (n <= 0)
        return;
    if (n < kParallelThreshold || effectiveNumThreads() <= 1 ||
        ThreadPool::insideWorker()) {
        body(0, n);
        return;
    }
    ThreadPool::global().parallelFor(0, n, kParallelGrain,
                                     std::forward<Body>(body));
}

} // namespace rsqp

#endif // RSQP_COMMON_THREAD_POOL_HPP
