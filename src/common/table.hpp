/**
 * @file
 * Minimal fixed-width text table writer used by the benchmark harnesses
 * to print the rows/series corresponding to the paper's tables and
 * figures, plus a CSV emitter for downstream plotting.
 */

#ifndef RSQP_COMMON_TABLE_HPP
#define RSQP_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace rsqp
{

/** Accumulates rows of strings and renders an aligned text table. */
class TextTable
{
  public:
    /** Define the column headers; locks the column count. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

    /** Render with column alignment and a separator rule. */
    void print(std::ostream& os) const;

    /** Render as CSV (no alignment, comma-separated, quoted as needed). */
    void printCsv(std::ostream& os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rsqp

#endif // RSQP_COMMON_TABLE_HPP
