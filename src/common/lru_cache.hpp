/**
 * @file
 * Bounded least-recently-used cache with hit/miss/eviction counters.
 *
 * Generic building block of the service layer's customization cache:
 * an intrusive recency list over an unordered map, O(1) find/insert,
 * strict capacity bound (the least recently *touched* entry is evicted
 * on overflow). Not thread-safe by itself — owners that share a cache
 * across threads wrap it in their own lock (see
 * service/customization_cache.hpp).
 */

#ifndef RSQP_COMMON_LRU_CACHE_HPP
#define RSQP_COMMON_LRU_CACHE_HPP

#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/types.hpp"

namespace rsqp
{

/** Counter snapshot of one LruCache. */
struct LruCacheStats
{
    Count hits = 0;
    Count misses = 0;
    Count evictions = 0;
    Count insertions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache
{
  public:
    /** Capacity 0 disables the cache: every find misses. */
    explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

    std::size_t size() const { return order_.size(); }
    std::size_t capacity() const { return capacity_; }

    /**
     * Look up a key; a hit moves the entry to most-recently-used and
     * returns a pointer into the cache (valid until the next mutation),
     * a miss returns nullptr. Both bump the stats counters.
     */
    Value*
    find(const Key& key)
    {
        auto it = map_.find(key);
        if (it == map_.end()) {
            ++stats_.misses;
            return nullptr;
        }
        ++stats_.hits;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->second;
    }

    /**
     * Insert (or overwrite) a key as most-recently-used; returns the
     * displaced value, if any — the previous value of an overwritten
     * key, or the LRU entry evicted to respect the capacity bound.
     * With capacity 0 the value itself is returned unstored.
     */
    std::optional<Value>
    insert(const Key& key, Value value)
    {
        if (capacity_ == 0)
            return std::optional<Value>(std::move(value));
        ++stats_.insertions;
        auto it = map_.find(key);
        if (it != map_.end()) {
            order_.splice(order_.begin(), order_, it->second);
            std::optional<Value> displaced(
                std::move(it->second->second));
            it->second->second = std::move(value);
            return displaced;
        }
        order_.emplace_front(key, std::move(value));
        map_.emplace(key, order_.begin());
        if (order_.size() <= capacity_)
            return std::nullopt;
        ++stats_.evictions;
        std::optional<Value> evicted(std::move(order_.back().second));
        map_.erase(order_.back().first);
        order_.pop_back();
        return evicted;
    }

    void
    clear()
    {
        map_.clear();
        order_.clear();
    }

    LruCacheStats
    stats() const
    {
        LruCacheStats snapshot = stats_;
        snapshot.size = order_.size();
        snapshot.capacity = capacity_;
        return snapshot;
    }

  private:
    std::size_t capacity_;
    std::list<std::pair<Key, Value>> order_;  ///< front = most recent
    std::unordered_map<Key,
                       typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        map_;
    LruCacheStats stats_;
};

} // namespace rsqp

#endif // RSQP_COMMON_LRU_CACHE_HPP
