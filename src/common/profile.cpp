#include "profile.hpp"

namespace rsqp
{

namespace
{

thread_local HotPathProfiler* tActiveProfiler = nullptr;

} // namespace

const char*
toString(ProfilePhase phase)
{
    switch (phase) {
    case ProfilePhase::SpmvP:
        return "spmv_p";
    case ProfilePhase::SpmvA:
        return "spmv_a";
    case ProfilePhase::SpmvAt:
        return "spmv_at";
    case ProfilePhase::FusedVectorOps:
        return "fused_vector_ops";
    case ProfilePhase::Precond:
        return "precond";
    case ProfilePhase::Reduction:
        return "reduction";
    }
    return "unknown";
}

std::uint64_t
HotPathProfile::totalNanoseconds() const
{
    std::uint64_t total = 0;
    for (const ProfilePhaseStats& stats : phases)
        total += stats.nanoseconds;
    return total;
}

std::uint64_t
HotPathProfile::totalCalls() const
{
    std::uint64_t total = 0;
    for (const ProfilePhaseStats& stats : phases)
        total += stats.calls;
    return total;
}

std::string
HotPathProfile::toJson() const
{
    std::string json = "{";
    for (std::size_t i = 0; i < kNumProfilePhases; ++i) {
        const ProfilePhaseStats& stats = phases[i];
        json += '"';
        json += toString(static_cast<ProfilePhase>(i));
        json += "\":{\"ns\":";
        json += std::to_string(stats.nanoseconds);
        json += ",\"calls\":";
        json += std::to_string(stats.calls);
        json += "},";
    }
    json += "\"total_ns\":";
    json += std::to_string(totalNanoseconds());
    json += ",\"total_calls\":";
    json += std::to_string(totalCalls());
    json += '}';
    return json;
}

void
HotPathProfiler::reset()
{
    for (Cell& cell : cells_) {
        cell.nanoseconds.store(0, std::memory_order_relaxed);
        cell.calls.store(0, std::memory_order_relaxed);
    }
}

HotPathProfile
HotPathProfiler::snapshot() const
{
    HotPathProfile profile;
    for (std::size_t i = 0; i < kNumProfilePhases; ++i) {
        profile.phases[i].nanoseconds =
            cells_[i].nanoseconds.load(std::memory_order_relaxed);
        profile.phases[i].calls =
            cells_[i].calls.load(std::memory_order_relaxed);
    }
    return profile;
}

HotPathProfiler*
activeHotPathProfiler()
{
    return tActiveProfiler;
}

HotPathProfilerScope::HotPathProfilerScope(HotPathProfiler* profiler)
    : prev_(tActiveProfiler)
{
    tActiveProfiler = profiler;
}

HotPathProfilerScope::~HotPathProfilerScope()
{
    tActiveProfiler = prev_;
}

} // namespace rsqp
