/**
 * @file
 * Deterministic soft-error fault injection for the simulated
 * accelerator and the software PCG path.
 *
 * The model follows the FPGA soft-error literature: a streamed memory
 * word (HBM burst, MAC-tree output register) occasionally arrives with
 * a flipped bit or as a poisoned NaN. Injection decisions are a *pure
 * function* of (seed, epoch, stream tag, word index), so a run is
 * exactly reproducible at any host thread count: the parallel SpMV
 * lanes see the same faults no matter how chains are scheduled.
 *
 * The injector never aborts a computation — its whole purpose is to
 * exercise the detection and recovery machinery (problem validation,
 * divergence watchdog, PCG breakdown fallback) end to end.
 */

#ifndef RSQP_COMMON_FAULT_INJECTION_HPP
#define RSQP_COMMON_FAULT_INJECTION_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace rsqp
{

/** Knobs of the seeded soft-error model. */
struct FaultInjectionConfig
{
    /** Master switch; everything below is ignored when false. */
    bool enabled = false;
    /** Seed of the deterministic fault stream. */
    std::uint64_t seed = 0;
    /** Probability that one streamed word is corrupted. */
    Real ratePerWord = 1e-4;
    /** Fraction of faults injected as quiet NaN (rest are bit flips). */
    Real nanFraction = 0.25;
};

/**
 * Seeded fault injector. Cheap to query: one 64-bit hash per word.
 *
 * Counters are atomic so concurrent victims (e.g. batch solves each
 * owning an injector, or future parallel hooks) stay well-defined.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultInjectionConfig config);

    bool enabled() const { return config_.enabled; }
    const FaultInjectionConfig& config() const { return config_; }

    /**
     * Advance the fault epoch: the next run/solve sees a fresh,
     * still-deterministic fault pattern. Without this a retry would
     * deterministically replay the exact faults that broke the first
     * attempt and recovery could never succeed.
     */
    void advanceEpoch()
    {
        ++epoch_;
        nonce_.store(0);
    }
    std::uint64_t epoch() const { return epoch_; }

    /**
     * Fresh per-call stream offset for hook sites that re-execute with
     * the same word indices (e.g. one PCG solve per ADMM iteration).
     * Without it a single unlucky hash draw would deterministically
     * poison the same word of *every* re-execution and recovery could
     * never make progress. Resets with the epoch; calls arrive in a
     * deterministic order (the ADMM loop is sequential), so runs stay
     * reproducible.
     */
    std::uint64_t acquireNonce() { return nonce_.fetch_add(1); }

    /**
     * Possibly corrupt one streamed word. Pure in (seed, epoch,
     * stream, index) apart from the statistics counters.
     */
    Real corruptWord(Real value, std::uint64_t stream,
                     std::uint64_t index);

    /** Corrupt a whole vector stream (index = element position). */
    void corruptVector(Vector& v, std::uint64_t stream);

    // --- Statistics ----------------------------------------------------

    Count faultsInjected() const { return faults_.load(); }
    Count bitFlipsInjected() const { return bitFlips_.load(); }
    Count nansInjected() const { return nans_.load(); }
    void resetCounters();

  private:
    std::uint64_t wordHash(std::uint64_t stream,
                           std::uint64_t index) const;

    FaultInjectionConfig config_;
    std::uint64_t epoch_ = 0;
    std::atomic<std::uint64_t> nonce_{0};
    std::atomic<Count> faults_{0};
    std::atomic<Count> bitFlips_{0};
    std::atomic<Count> nans_{0};
};

/**
 * RAII installation of a thread-local "active" injector, used to reach
 * hook points (the software PCG operator stream) without widening
 * every call signature. Passing nullptr is a no-op scope.
 */
class FaultScope
{
  public:
    explicit FaultScope(FaultInjector* injector);
    ~FaultScope();

    FaultScope(const FaultScope&) = delete;
    FaultScope& operator=(const FaultScope&) = delete;

  private:
    FaultInjector* prev_;
};

/** The calling thread's active injector (nullptr if none). */
FaultInjector* activeFaultInjector();

// --- Fleet-level (whole-core) fault injection ------------------------

/** What happens to a solver core when a fleet fault fires. */
enum class FleetFaultKind
{
    KillCore,    ///< core dies mid-stream; in-flight work is lost
    HangCore,    ///< core stalls until the stall watchdog fires
    DegradeCore, ///< core keeps answering, but modeled time inflates
};

/** Printable kind name ("kill", "hang", "degrade"). */
const char* toString(FleetFaultKind kind);

/** Special core index: "whichever core starts the matching job". */
inline constexpr std::size_t kAnyCore = ~static_cast<std::size_t>(0);

/**
 * One scheduled fleet fault. Triggers are expressed in *job starts*
 * (deterministic under a fixed submission order), not wall time, so a
 * chaos run replays identically on any host:
 *
 *  - core == kAnyCore: fires on the first job start once the
 *    fleet-wide start counter reaches `atFleetJob` (guaranteed to hit
 *    as long as the workload is long enough — a quarantined core
 *    never starts jobs, so a later event lands on a surviving core);
 *  - core == i: fires on core i's own `atCoreJob`-th start (targeted
 *    tests that want to kill a specific affinity core).
 */
struct FleetFaultEvent
{
    FleetFaultKind kind = FleetFaultKind::KillCore;
    std::size_t core = kAnyCore;
    Count atFleetJob = 0; ///< fleet-wide start threshold (kAnyCore)
    Count atCoreJob = 0;  ///< per-core start threshold (targeted core)
    /** DegradeCore: modeled-time multiplier for the affected jobs. */
    Real slowdownFactor = 4.0;
    /** DegradeCore: number of consecutive jobs slowed. */
    Count durationJobs = 1;
    /** Readmission probes that fail before the core heals. */
    Count failProbes = 0;
};

/**
 * Seeded whole-core fault injector for the solver fleet: a determinis-
 * tic schedule of kill/hang/degrade events plus the oracle readmission
 * probes consult. Each event fires at most once. All methods are
 * called under the owning service's lock — one injector per service;
 * never share an instance between concurrently running fleets.
 */
class FleetFaultInjector
{
  public:
    /** Empty schedule: never faults (health tracking still runs). */
    FleetFaultInjector() = default;

    explicit FleetFaultInjector(std::vector<FleetFaultEvent> schedule);

    /**
     * The canonical chaos schedule used by bench_chaos and the
     * chaos-smoke CI gate: one KillCore and one HangCore event (each
     * kAnyCore, so both are guaranteed to land on live cores), with
     * seeded trigger points inside [1, horizon_jobs) and one failed
     * readmission probe on the kill to exercise the backoff ladder.
     */
    static std::vector<FleetFaultEvent>
    standardSchedule(std::uint64_t seed, Count horizon_jobs);

    bool enabled() const { return !schedule_.empty(); }
    std::vector<FleetFaultEvent> schedule() const
    {
        std::vector<FleetFaultEvent> events;
        events.reserve(schedule_.size());
        for (const Scheduled& entry : schedule_)
            events.push_back(entry.event);
        return events;
    }

    /**
     * The fault (if any) firing as `core` starts a job, given its own
     * start count and the fleet-wide start count (both *before* this
     * job). Marks the event delivered and remembers it as the core's
     * latest fault so probeSucceeds can consult its failProbes.
     */
    const FleetFaultEvent* onJobStart(std::size_t core,
                                      Count core_jobs_started,
                                      Count fleet_jobs_started);

    /**
     * Whether readmission probe number `probe_index` (0-based within
     * the current quarantine) of `core` finds the core healthy again.
     * Cores with no recorded fault always probe healthy.
     */
    bool probeSucceeds(std::size_t core, Count probe_index) const;

    Count killsDelivered() const { return kills_; }
    Count hangsDelivered() const { return hangs_; }
    Count degradesDelivered() const { return degrades_; }

  private:
    struct Scheduled
    {
        FleetFaultEvent event;
        bool delivered = false;
    };

    std::vector<Scheduled> schedule_;
    /** core -> failProbes of the latest fault delivered to it. */
    std::unordered_map<std::size_t, Count> probeGates_;
    Count kills_ = 0;
    Count hangs_ = 0;
    Count degrades_ = 0;
};

/**
 * Stream tags naming each injection site. Distinct tags decorrelate
 * the fault patterns of different hardware structures under one seed;
 * hook sites may add a per-call offset (e.g. the PCG iteration) so a
 * word position is not deterministically faulty across calls.
 */
namespace fault_streams
{
constexpr std::uint64_t kHbmLoad = 0x48424d4cULL;    ///< 'HBML'
constexpr std::uint64_t kHbmStore = 0x48424d53ULL;   ///< 'HBMS'
constexpr std::uint64_t kSpmvValues = 0x53505656ULL; ///< 'SPVV' matrix stream
constexpr std::uint64_t kMacOutput = 0x4d414343ULL;  ///< 'MACC' accumulation
constexpr std::uint64_t kPcgOperator = 0x50434f50ULL; ///< 'PCOP' software K·p
constexpr std::uint64_t kPdhgOperator = 0x50444f50ULL; ///< 'PDOP' PDHG A·x̄
} // namespace fault_streams

} // namespace rsqp

#endif // RSQP_COMMON_FAULT_INJECTION_HPP
