/**
 * @file
 * Wall-clock timing helpers used by the CPU baseline measurements.
 */

#ifndef RSQP_COMMON_TIMER_HPP
#define RSQP_COMMON_TIMER_HPP

#include <chrono>

namespace rsqp
{

/** Simple monotonic stopwatch reporting seconds. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        const auto dt = Clock::now() - start_;
        return std::chrono::duration<double>(dt).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Accumulates time across multiple start/stop windows. */
class AccumulatingTimer
{
  public:
    void
    start()
    {
        timer_.reset();
        running_ = true;
    }

    void
    stop()
    {
        if (running_) {
            total_ += timer_.seconds();
            running_ = false;
        }
    }

    /** Total accumulated seconds over all completed windows. */
    double totalSeconds() const { return total_; }

    void
    clear()
    {
        total_ = 0.0;
        running_ = false;
    }

  private:
    Timer timer_;
    double total_ = 0.0;
    bool running_ = false;
};

} // namespace rsqp

#endif // RSQP_COMMON_TIMER_HPP
