#include "random.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "logging.hpp"

namespace rsqp
{

namespace
{

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

inline std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto& word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next64()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

Rng::result_type
Rng::operator()()
{
    return next64();
}

Real
Rng::uniform()
{
    // 53 uniform mantissa bits -> double in [0, 1).
    return static_cast<Real>(next64() >> 11) * 0x1.0p-53;
}

Real
Rng::uniform(Real lo, Real hi)
{
    return lo + (hi - lo) * uniform();
}

Real
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    Real u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const Real u2 = uniform();
    const Real radius = std::sqrt(-2.0 * std::log(u1));
    const Real angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

Real
Rng::normal(Real mean, Real stddev)
{
    return mean + stddev * normal();
}

Index
Rng::uniformIndex(Index n)
{
    RSQP_ASSERT(n > 0, "uniformIndex needs a positive range");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t range = static_cast<std::uint64_t>(n);
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t draw = 0;
    do {
        draw = next64();
    } while (draw >= limit);
    return static_cast<Index>(draw % range);
}

bool
Rng::bernoulli(Real p)
{
    return uniform() < p;
}

IndexVector
Rng::sampleDistinct(Index n, Index k)
{
    RSQP_ASSERT(k >= 0 && k <= n, "sampleDistinct: need 0 <= k <= n");
    // Floyd's algorithm produces k distinct values uniformly.
    std::set<Index> chosen;
    for (Index j = n - k; j < n; ++j) {
        const Index t = uniformIndex(j + 1);
        if (!chosen.insert(t).second)
            chosen.insert(j);
    }
    return IndexVector(chosen.begin(), chosen.end());
}

IndexVector
Rng::permutation(Index n)
{
    IndexVector perm(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i)
        perm[static_cast<std::size_t>(i)] = i;
    for (Index i = n - 1; i > 0; --i)
        std::swap(perm[static_cast<std::size_t>(i)],
                  perm[static_cast<std::size_t>(uniformIndex(i + 1))]);
    return perm;
}

} // namespace rsqp
