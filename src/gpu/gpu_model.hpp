/**
 * @file
 * Analytic timing/power model of cuOSQP on an RTX 3070-class GPU.
 *
 * Substitution for the physical GPU of the paper's comparison. The
 * model is driven by the *measured* algorithmic trajectory (ADMM
 * iterations, total PCG iterations, termination checks) of our own
 * indirect OSQP solve, so it shares iteration counts with the other
 * backends; only the per-iteration time is modeled:
 *
 *  - every CUDA kernel pays a fixed launch overhead (the reason cuOSQP
 *    loses to the CPU on small problems, as the paper reports), and
 *  - matrix/vector traffic is charged against an effective HBM
 *    bandwidth (the reason the GPU wins only on the largest problems).
 */

#ifndef RSQP_GPU_GPU_MODEL_HPP
#define RSQP_GPU_GPU_MODEL_HPP

#include "common/types.hpp"
#include "osqp/problem.hpp"
#include "osqp/settings.hpp"
#include "osqp/status.hpp"

namespace rsqp
{

/** Tunable constants of the GPU model (Ampere-class defaults). */
struct GpuModelParams
{
    Real launchOverheadSec = 5e-6;   ///< per kernel launch
    Real effectiveBandwidth = 320e9; ///< bytes/s (448 GB/s peak HBM)
    Real pcieBandwidth = 12e9;       ///< bytes/s host <-> device
    Real hostSyncSec = 10e-6;        ///< per host synchronization
    Real setupFixedSec = 3e-4;       ///< allocator + stream setup
    Index kernelsPerPcgIter = 10;    ///< SpMV x3 + vector kernels
    Index kernelsPerAdmmIter = 12;   ///< relaxation/projection/dual
    Index kernelsPerCheck = 16;      ///< residual norms + reductions
};

/** Model output for one solve. */
struct GpuSolveEstimate
{
    Real setupSeconds = 0.0;   ///< host->device transfer + init
    Real solveSeconds = 0.0;   ///< iteration time
    Real utilization = 0.0;    ///< memory-bandwidth busy fraction
    Real watts = 0.0;          ///< modeled board power

    Real totalSeconds() const { return setupSeconds + solveSeconds; }
};

/**
 * Estimate the cuOSQP solve time for a problem whose algorithmic
 * trajectory (iterations / PCG counts) was measured by the CPU
 * indirect backend.
 *
 * @param problem The (unscaled) problem, for data sizes.
 * @param info Result info of an IndirectPcg OsqpSolver run.
 * @param settings The solver settings used (check interval etc.).
 */
GpuSolveEstimate estimateGpuSolve(const QpProblem& problem,
                                  const OsqpInfo& info,
                                  const OsqpSettings& settings,
                                  const GpuModelParams& params = {});

} // namespace rsqp

#endif // RSQP_GPU_GPU_MODEL_HPP
