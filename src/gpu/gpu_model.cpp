#include "gpu_model.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "hwmodel/power.hpp"

namespace rsqp
{

GpuSolveEstimate
estimateGpuSolve(const QpProblem& problem, const OsqpInfo& info,
                 const OsqpSettings& settings, const GpuModelParams& params)
{
    const Real n = static_cast<Real>(problem.numVariables());
    const Real m = static_cast<Real>(problem.numConstraints());
    // cuOSQP stores the full P plus A and A' in CSR, FP32 + int32.
    const Real nnz_stream =
        2.0 * static_cast<Real>(problem.pUpper.nnz()) +
        2.0 * static_cast<Real>(problem.a.nnz());

    const Real admm_iters = static_cast<Real>(info.iterations);
    const Real pcg_iters = static_cast<Real>(info.pcgIterationsTotal);
    const Real checks = std::max(1.0,
        admm_iters / static_cast<Real>(settings.checkInterval));

    // --- Kernel-launch (latency) time -----------------------------------
    const Real launch_time = params.launchOverheadSec *
        (pcg_iters * static_cast<Real>(params.kernelsPerPcgIter) +
         admm_iters * static_cast<Real>(params.kernelsPerAdmmIter) +
         checks * static_cast<Real>(params.kernelsPerCheck)) +
        checks * params.hostSyncSec;

    // --- Memory traffic (bandwidth) time ---------------------------------
    // Per PCG iteration: one pass over the three matrices (value +
    // index words) and roughly a dozen vector passes.
    const Real bytes_pcg = nnz_stream * 8.0 + (12.0 * n + 4.0 * m) * 8.0;
    // Per ADMM iteration: the projection/dual-update vector kernels.
    const Real bytes_admm = (4.0 * n + 12.0 * m) * 8.0;
    // Per check: a matrix pass for the residual SpMVs plus reductions.
    const Real bytes_check = nnz_stream * 8.0 + (8.0 * n + 8.0 * m) * 8.0;
    const Real bytes_total = pcg_iters * bytes_pcg +
        admm_iters * bytes_admm + checks * bytes_check;
    const Real bandwidth_time = bytes_total / params.effectiveBandwidth;

    GpuSolveEstimate estimate;
    estimate.solveSeconds = launch_time + bandwidth_time;
    estimate.setupSeconds = params.setupFixedSec +
        (nnz_stream * 8.0 + 6.0 * (n + m) * 8.0) / params.pcieBandwidth;
    estimate.utilization = estimate.solveSeconds > 0.0
        ? bandwidth_time / estimate.solveSeconds
        : 0.0;
    estimate.watts = gpuPowerWatts(std::clamp(estimate.utilization,
                                              0.0, 1.0));
    return estimate;
}

} // namespace rsqp
