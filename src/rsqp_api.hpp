/**
 * @file
 * The unified public API facade of the RSQP library, installed as
 * <rsqp/rsqp.hpp>. This is the single header applications include:
 *
 * @code
 *   #include "rsqp_api.hpp"          // in-tree
 *   #include <rsqp/rsqp.hpp>         // installed
 *
 *   rsqp::QpProblem qp = ...;        // P (upper CSC), q, A, l, u
 *   rsqp::OsqpSettings settings;     // defaults follow OSQP
 *   settings.execution.numThreads = 4;
 *
 *   // Reference CPU solve:
 *   rsqp::OsqpSolver cpu(qp, settings);
 *   auto ref = cpu.solve();          // ref.info.telemetry
 *
 *   // Accelerated solve on a problem-customized architecture:
 *   rsqp::CustomizeSettings custom;  // C = 64, E_p + E_c on
 *   rsqp::RsqpSolver fpga(qp, settings, custom);
 *   auto acc = fpga.solve();         // acc.deviceSeconds, acc.eta
 *
 *   // Multi-client service with cached customizations:
 *   rsqp::SolverService service{rsqp::ServiceConfig{}};
 *   auto session = service.openSession(rsqp::SessionConfig{});
 *   std::puts(service.metricsText().c_str());  // Prometheus scrape
 *
 *   // Async serving: one SubmitOptions struct (admission class,
 *   // deadline, cacheability, warm start) and a callback invoked
 *   // exactly once; cancel() revokes requests still queued.
 *   rsqp::SubmitOptions opts;
 *   opts.admissionClass = rsqp::AdmissionClass::Realtime;
 *   auto token = service.submitAsync(session, qp, opts,
 *                                    [](rsqp::SessionResult r) {});
 *   service.cancel(token);           // true only while still queued
 *   auto fut = service.submit(session, qp, opts);  // future adapter
 * @endcode
 *
 * The facade pulls in the solver umbrella (core/rsqp.hpp), the
 * multi-client service layer, and the telemetry subsystem (metrics
 * registry, trace spans, per-solve telemetry records). Everything
 * else under src/ is implementation detail subject to change.
 */

#ifndef RSQP_RSQP_API_HPP
#define RSQP_RSQP_API_HPP

#include "core/rsqp.hpp"
#include "service/service.hpp"
#include "telemetry/telemetry.hpp"

#endif // RSQP_RSQP_API_HPP
