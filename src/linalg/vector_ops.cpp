#include "vector_ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"
#include "common/profile.hpp"
#include "common/thread_pool.hpp"
#include "linalg/simd_kernels.hpp"

namespace rsqp
{

namespace
{

inline void
checkSameSize(const Vector& x, const Vector& y, const char* what)
{
    RSQP_ASSERT(x.size() == y.size(), what, ": size mismatch ", x.size(),
                " vs ", y.size());
}

/**
 * Should this elementwise kernel fan out? Purely a performance gate:
 * elementwise bodies produce bitwise-identical results at any width.
 */
inline bool
parallelWorthwhile(std::size_t n)
{
    return n >= static_cast<std::size_t>(kParallelThreshold) &&
        effectiveNumThreads() > 1 && !ThreadPool::insideWorker();
}

/**
 * Should this reduction use the fixed-grain chunked path? Gated on the
 * size only — never on the thread count — so the summation order (and
 * therefore the bitwise result) is a function of the data alone.
 */
inline bool
chunkedReduction(std::size_t n)
{
    return n >= static_cast<std::size_t>(kParallelThreshold);
}

/**
 * Deterministic fixed-grain chunked sum shared by dot() and the fused
 * kernels: partial(b, e) runs exactly once per kParallelGrain chunk
 * and the partials combine in ascending chunk order — the same
 * structure (including seeding the accumulator from the first chunk)
 * as ThreadPool::reduceSum, so both paths are bitwise-identical. With
 * one effective thread, or nested inside a pool worker, the chunks run
 * as a plain serial loop with no heap allocation; the steady-state PCG
 * loop depends on that.
 */
template <typename Partial>
Real
chunkedSum(Index n, Partial&& partial)
{
    if (n <= 0)
        return 0.0;
    if (effectiveNumThreads() <= 1 || ThreadPool::insideWorker()) {
        Real total = partial(0, std::min(n, kParallelGrain));
        for (Index b = kParallelGrain; b < n; b += kParallelGrain)
            total += partial(b, std::min(n, b + kParallelGrain));
        return total;
    }
    return ThreadPool::global().reduceSum(0, n, kParallelGrain, partial);
}

} // namespace

void
axpby(Real alpha, const Vector& x, Real beta, const Vector& y, Vector& out)
{
    checkSameSize(x, y, "axpby");
    out.resize(x.size());
    if (parallelWorthwhile(x.size())) {
        ThreadPool::global().parallelFor(
            0, static_cast<Index>(x.size()), kParallelGrain,
            [&](Index b, Index e) {
                for (Index i = b; i < e; ++i) {
                    const auto s = static_cast<std::size_t>(i);
                    out[s] = alpha * x[s] + beta * y[s];
                }
            });
        return;
    }
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = alpha * x[i] + beta * y[i];
}

void
axpy(Real alpha, const Vector& x, Vector& y)
{
    checkSameSize(x, y, "axpy");
    if (parallelWorthwhile(x.size())) {
        ThreadPool::global().parallelFor(
            0, static_cast<Index>(x.size()), kParallelGrain,
            [&](Index b, Index e) {
                for (Index i = b; i < e; ++i) {
                    const auto s = static_cast<std::size_t>(i);
                    y[s] += alpha * x[s];
                }
            });
        return;
    }
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += alpha * x[i];
}

void
scale(Vector& x, Real alpha)
{
    if (parallelWorthwhile(x.size())) {
        ThreadPool::global().parallelFor(
            0, static_cast<Index>(x.size()), kParallelGrain,
            [&](Index b, Index e) {
                for (Index i = b; i < e; ++i)
                    x[static_cast<std::size_t>(i)] *= alpha;
            });
        return;
    }
    for (Real& v : x)
        v *= alpha;
}

Real
dot(const Vector& x, const Vector& y)
{
    checkSameSize(x, y, "dot");
    ProfileScope profile(ProfilePhase::Reduction);
    const simd::VectorKernels& k = simd::activeKernels();
    if (chunkedReduction(x.size())) {
        return chunkedSum(static_cast<Index>(x.size()),
                          [&](Index b, Index e) {
                              return k.dotRange(x.data() + b,
                                                y.data() + b, e - b);
                          });
    }
    return k.dotRange(x.data(), y.data(), static_cast<Index>(x.size()));
}

Real
axpyDot(Real alpha, const Vector& x, Vector& y, const Vector& z)
{
    checkSameSize(x, y, "axpyDot");
    checkSameSize(y, z, "axpyDot");
    ProfileScope profile(ProfilePhase::FusedVectorOps);
    const simd::VectorKernels& k = simd::activeKernels();
    if (chunkedReduction(x.size())) {
        // Each chunk updates its own slice of y before reducing over
        // it, so the partials see exactly the values the composed
        // axpy + dot pair would.
        return chunkedSum(static_cast<Index>(x.size()),
                          [&](Index b, Index e) {
                              return k.axpyDotRange(alpha, x.data() + b,
                                                    y.data() + b,
                                                    z.data() + b, e - b);
                          });
    }
    return k.axpyDotRange(alpha, x.data(), y.data(), z.data(),
                          static_cast<Index>(x.size()));
}

Real
xMinusAlphaPDot(Real alpha, const Vector& p, Vector& x, const Vector& kp,
                Vector& r)
{
    checkSameSize(p, x, "xMinusAlphaPDot");
    checkSameSize(p, kp, "xMinusAlphaPDot");
    checkSameSize(p, r, "xMinusAlphaPDot");
    ProfileScope profile(ProfilePhase::FusedVectorOps);
    const simd::VectorKernels& k = simd::activeKernels();
    if (chunkedReduction(p.size())) {
        return chunkedSum(static_cast<Index>(p.size()),
                          [&](Index b, Index e) {
                              return k.xMinusAlphaPDotRange(
                                  alpha, p.data() + b, x.data() + b,
                                  kp.data() + b, r.data() + b, e - b);
                          });
    }
    return k.xMinusAlphaPDotRange(alpha, p.data(), x.data(), kp.data(),
                                  r.data(), static_cast<Index>(p.size()));
}

Real
precondApplyDot(const Vector& inv_diag, const Vector& r, Vector& d)
{
    checkSameSize(inv_diag, r, "precondApplyDot");
    checkSameSize(r, d, "precondApplyDot");
    ProfileScope profile(ProfilePhase::Precond);
    const simd::VectorKernels& k = simd::activeKernels();
    if (chunkedReduction(r.size())) {
        return chunkedSum(static_cast<Index>(r.size()),
                          [&](Index b, Index e) {
                              return k.precondApplyDotRange(
                                  inv_diag.data() + b, r.data() + b,
                                  d.data() + b, e - b);
                          });
    }
    return k.precondApplyDotRange(inv_diag.data(), r.data(), d.data(),
                                  static_cast<Index>(r.size()));
}

Real
norm2(const Vector& x)
{
    return std::sqrt(dot(x, x));
}

Real
normInf(const Vector& x)
{
    const simd::VectorKernels& k = simd::activeKernels();
    if (chunkedReduction(x.size())) {
        return ThreadPool::global().reduceMax(
            0, static_cast<Index>(x.size()), kParallelGrain, 0.0,
            [&](Index b, Index e) {
                return k.normInfRange(x.data() + b, e - b);
            });
    }
    return k.normInfRange(x.data(), static_cast<Index>(x.size()));
}

Real
normInfDiff(const Vector& x, const Vector& y)
{
    checkSameSize(x, y, "normInfDiff");
    const simd::VectorKernels& k = simd::activeKernels();
    if (chunkedReduction(x.size())) {
        return ThreadPool::global().reduceMax(
            0, static_cast<Index>(x.size()), kParallelGrain, 0.0,
            [&](Index b, Index e) {
                return k.normInfDiffRange(x.data() + b, y.data() + b,
                                          e - b);
            });
    }
    return k.normInfDiffRange(x.data(), y.data(),
                              static_cast<Index>(x.size()));
}

void
ewProduct(const Vector& x, const Vector& y, Vector& out)
{
    checkSameSize(x, y, "ewProduct");
    out.resize(x.size());
    if (parallelWorthwhile(x.size())) {
        ThreadPool::global().parallelFor(
            0, static_cast<Index>(x.size()), kParallelGrain,
            [&](Index b, Index e) {
                for (Index i = b; i < e; ++i) {
                    const auto s = static_cast<std::size_t>(i);
                    out[s] = x[s] * y[s];
                }
            });
        return;
    }
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = x[i] * y[i];
}

void
ewReciprocal(const Vector& x, Vector& out)
{
    out.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        RSQP_ASSERT(x[i] != 0.0, "ewReciprocal: zero element at ", i);
        out[i] = 1.0 / x[i];
    }
}

void
ewMin(const Vector& x, const Vector& y, Vector& out)
{
    checkSameSize(x, y, "ewMin");
    out.resize(x.size());
    if (parallelWorthwhile(x.size())) {
        ThreadPool::global().parallelFor(
            0, static_cast<Index>(x.size()), kParallelGrain,
            [&](Index b, Index e) {
                for (Index i = b; i < e; ++i) {
                    const auto s = static_cast<std::size_t>(i);
                    out[s] = std::min(x[s], y[s]);
                }
            });
        return;
    }
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = std::min(x[i], y[i]);
}

void
ewMax(const Vector& x, const Vector& y, Vector& out)
{
    checkSameSize(x, y, "ewMax");
    out.resize(x.size());
    if (parallelWorthwhile(x.size())) {
        ThreadPool::global().parallelFor(
            0, static_cast<Index>(x.size()), kParallelGrain,
            [&](Index b, Index e) {
                for (Index i = b; i < e; ++i) {
                    const auto s = static_cast<std::size_t>(i);
                    out[s] = std::max(x[s], y[s]);
                }
            });
        return;
    }
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = std::max(x[i], y[i]);
}

void
ewClamp(const Vector& x, const Vector& lo, const Vector& hi, Vector& out)
{
    checkSameSize(x, lo, "ewClamp");
    checkSameSize(x, hi, "ewClamp");
    out.resize(x.size());
    if (parallelWorthwhile(x.size())) {
        ThreadPool::global().parallelFor(
            0, static_cast<Index>(x.size()), kParallelGrain,
            [&](Index b, Index e) {
                for (Index i = b; i < e; ++i) {
                    const auto s = static_cast<std::size_t>(i);
                    out[s] = clampReal(x[s], lo[s], hi[s]);
                }
            });
        return;
    }
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = clampReal(x[i], lo[i], hi[i]);
}

void
ewSqrt(const Vector& x, Vector& out)
{
    out.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        RSQP_ASSERT(x[i] >= 0.0, "ewSqrt: negative element at ", i);
        out[i] = std::sqrt(x[i]);
    }
}

bool
allFinite(const Vector& x)
{
    return !hasNonFinite(x);
}

bool
hasNonFinite(const Vector& x)
{
    const simd::VectorKernels& k = simd::activeKernels();
    if (chunkedReduction(x.size())) {
        // 0/1 partials under max: commutative and idempotent, so the
        // verdict cannot depend on chunk scheduling.
        return ThreadPool::global().reduceMax(
                   0, static_cast<Index>(x.size()), kParallelGrain, 0.0,
                   [&](Index b, Index e) {
                       return k.hasNonFiniteRange(x.data() + b, e - b)
                           ? 1.0
                           : 0.0;
                   }) > 0.0;
    }
    return k.hasNonFiniteRange(x.data(), static_cast<Index>(x.size()));
}

Real
normInfChecked(const Vector& x)
{
    if (hasNonFinite(x))
        return std::numeric_limits<Real>::quiet_NaN();
    return normInf(x);
}

Vector
constantVector(Index n, Real value)
{
    return Vector(static_cast<std::size_t>(n), value);
}

namespace
{

inline void
checkSameSizeF32(const FloatVector& x, const FloatVector& y,
                 const char* what)
{
    RSQP_ASSERT(x.size() == y.size(), what, ": size mismatch ", x.size(),
                " vs ", y.size());
}

} // namespace

Real
dotF32(const FloatVector& x, const FloatVector& y)
{
    checkSameSizeF32(x, y, "dotF32");
    ProfileScope profile(ProfilePhase::Reduction);
    const simd::VectorKernels& k = simd::activeKernels();
    if (chunkedReduction(x.size())) {
        return chunkedSum(static_cast<Index>(x.size()),
                          [&](Index b, Index e) {
                              return k.dotRangeF32(x.data() + b,
                                                   y.data() + b, e - b);
                          });
    }
    return k.dotRangeF32(x.data(), y.data(),
                         static_cast<Index>(x.size()));
}

Real
xMinusAlphaPDotF32(Real alpha, const FloatVector& p, FloatVector& x,
                   const FloatVector& kp, FloatVector& r)
{
    checkSameSizeF32(p, x, "xMinusAlphaPDotF32");
    checkSameSizeF32(p, kp, "xMinusAlphaPDotF32");
    checkSameSizeF32(p, r, "xMinusAlphaPDotF32");
    ProfileScope profile(ProfilePhase::FusedVectorOps);
    const auto a32 = static_cast<float>(alpha);
    const simd::VectorKernels& k = simd::activeKernels();
    if (chunkedReduction(p.size())) {
        return chunkedSum(static_cast<Index>(p.size()),
                          [&](Index b, Index e) {
                              return k.xMinusAlphaPDotRangeF32(
                                  a32, p.data() + b, x.data() + b,
                                  kp.data() + b, r.data() + b, e - b);
                          });
    }
    return k.xMinusAlphaPDotRangeF32(a32, p.data(), x.data(), kp.data(),
                                     r.data(),
                                     static_cast<Index>(p.size()));
}

Real
precondApplyDotF32(const FloatVector& inv_diag, const FloatVector& r,
                   FloatVector& d)
{
    checkSameSizeF32(inv_diag, r, "precondApplyDotF32");
    checkSameSizeF32(r, d, "precondApplyDotF32");
    ProfileScope profile(ProfilePhase::Precond);
    const simd::VectorKernels& k = simd::activeKernels();
    if (chunkedReduction(r.size())) {
        return chunkedSum(static_cast<Index>(r.size()),
                          [&](Index b, Index e) {
                              return k.precondApplyDotRangeF32(
                                  inv_diag.data() + b, r.data() + b,
                                  d.data() + b, e - b);
                          });
    }
    return k.precondApplyDotRangeF32(inv_diag.data(), r.data(), d.data(),
                                     static_cast<Index>(r.size()));
}

void
axpbyF32(Real alpha, const FloatVector& x, Real beta,
         const FloatVector& y, FloatVector& out)
{
    checkSameSizeF32(x, y, "axpbyF32");
    out.resize(x.size());
    ProfileScope profile(ProfilePhase::FusedVectorOps);
    const auto a32 = static_cast<float>(alpha);
    const auto b32 = static_cast<float>(beta);
    const simd::VectorKernels& k = simd::activeKernels();
    if (parallelWorthwhile(x.size())) {
        ThreadPool::global().parallelFor(
            0, static_cast<Index>(x.size()), kParallelGrain,
            [&](Index b, Index e) {
                k.axpbyRangeF32(a32, x.data() + b, b32, y.data() + b,
                                out.data() + b, e - b);
            });
        return;
    }
    k.axpbyRangeF32(a32, x.data(), b32, y.data(), out.data(),
                    static_cast<Index>(x.size()));
}

void
castToF32(const Vector& x, FloatVector& out)
{
    out.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = static_cast<float>(x[i]);
}

void
widenF32(const FloatVector& x, Vector& out)
{
    out.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] = static_cast<Real>(x[i]);
}

} // namespace rsqp
