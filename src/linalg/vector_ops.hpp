/**
 * @file
 * Dense vector kernels shared by the reference solver and the simulated
 * vector engine. These are exactly the "Vector Operations" of the RSQP
 * instruction set (Table 1): linear combination, element-wise
 * compare/reciprocal/multiplication and dot product.
 *
 * Vectors at or above kParallelThreshold elements fan out across the
 * shared ThreadPool (see common/thread_pool.hpp). Reductions (dot,
 * norm2, normInf*) switch to a fixed-grain chunked evaluation at that
 * size regardless of the thread count, so their bitwise result depends
 * only on the data — never on how many threads ran them.
 *
 * The per-chunk arithmetic dispatches through the SIMD kernel table
 * (linalg/simd_kernels.hpp): every reduction and fused kernel uses the
 * canonical 8-lane-striped order with a fixed combine tree, identical
 * across the scalar/AVX2/AVX-512 implementations, so results are also
 * bitwise-identical at every dispatched ISA level. Elementwise kernels
 * (axpby, scale, ew*) need no dispatch — their per-element results are
 * width-independent by construction.
 */

#ifndef RSQP_LINALG_VECTOR_OPS_HPP
#define RSQP_LINALG_VECTOR_OPS_HPP

#include "common/types.hpp"

namespace rsqp
{

/** out = alpha * x + beta * y (out may alias x or y). */
void axpby(Real alpha, const Vector& x, Real beta, const Vector& y,
           Vector& out);

/** y += alpha * x. */
void axpy(Real alpha, const Vector& x, Vector& y);

/** x *= alpha. */
void scale(Vector& x, Real alpha);

/** Dot product x' y. */
Real dot(const Vector& x, const Vector& y);

/**
 * Fused CG kernel: y += alpha * x, then returns dot(y, z) — one memory
 * pass instead of two. z may alias y (then the dot reads the updated
 * y, exactly like composing axpy + dot). The reduction uses the same
 * fixed-grain chunking as dot(), so the result is bitwise-identical to
 * the composed ops at any thread count.
 */
Real axpyDot(Real alpha, const Vector& x, Vector& y, const Vector& z);

/**
 * Fused CG iterate update: x += alpha * p and r -= alpha * kp in one
 * pass, returning dot(r, r) of the updated residual. Collapses the
 * three separate sweeps (two axpy + one norm) of a textbook CG
 * iteration into a single read of p/kp and write of x/r. Bitwise
 * equal to the composed ops at any thread count.
 */
Real xMinusAlphaPDot(Real alpha, const Vector& p, Vector& x,
                     const Vector& kp, Vector& r);

/**
 * Fused Jacobi preconditioner apply: d[i] = inv_diag[i] * r[i],
 * returning dot(r, d). One pass instead of the apply + dot pair.
 * Bitwise equal to the composed ops at any thread count.
 */
Real precondApplyDot(const Vector& inv_diag, const Vector& r, Vector& d);

/** Euclidean norm. */
Real norm2(const Vector& x);

/** Infinity norm. */
Real normInf(const Vector& x);

/** Infinity norm of (x - y). */
Real normInfDiff(const Vector& x, const Vector& y);

/** out[i] = x[i] * y[i]. */
void ewProduct(const Vector& x, const Vector& y, Vector& out);

/** out[i] = 1 / x[i]; panics on exact zero. */
void ewReciprocal(const Vector& x, Vector& out);

/** out[i] = min(x[i], y[i]). */
void ewMin(const Vector& x, const Vector& y, Vector& out);

/** out[i] = max(x[i], y[i]). */
void ewMax(const Vector& x, const Vector& y, Vector& out);

/** out[i] = clamp(x[i], lo[i], hi[i]) — the OSQP projection Pi. */
void ewClamp(const Vector& x, const Vector& lo, const Vector& hi,
             Vector& out);

/** out[i] = sqrt(x[i]); x must be non-negative. */
void ewSqrt(const Vector& x, Vector& out);

/** All elements finite? */
bool allFinite(const Vector& x);

/**
 * Any NaN/Inf element? Chunked like the other reductions, so the
 * answer (and the scan order behind it) is identical at every thread
 * count. The watchdog's preferred screen: !allFinite with the same
 * deterministic-parallel guarantees as the norms.
 */
bool hasNonFinite(const Vector& x);

/**
 * Infinity norm that propagates NaN deterministically: returns quiet
 * NaN if any element is non-finite at every thread count (plain
 * normInf's max-reduction silently drops NaN because
 * max(NaN, x) == x). Use wherever a poisoned vector must poison the
 * residual instead of vanishing.
 */
Real normInfChecked(const Vector& x);

/** Constant vector helper. */
Vector constantVector(Index n, Real value);

// ---------------------------------------------------------------------
// fp32-storage kernels of the mixed-precision PCG mode. Elementwise
// math runs in fp32 (the simulated datapath's MAC precision); every
// reduction accumulates in fp64 through the same fixed-grain chunking
// as the fp64 kernels, so the inner solve is deterministic across
// thread counts and ISA levels too.
// ---------------------------------------------------------------------

/** fp64-accumulated dot product over fp32 storage. */
Real dotF32(const FloatVector& x, const FloatVector& y);

/**
 * Fused fp32 CG iterate update: x += alpha p and r -= alpha kp in
 * fp32, returning the fp64-accumulated dot(r, r).
 */
Real xMinusAlphaPDotF32(Real alpha, const FloatVector& p, FloatVector& x,
                        const FloatVector& kp, FloatVector& r);

/**
 * Fused fp32 Jacobi apply: d = inv_diag .* r in fp32, returning the
 * fp64-accumulated dot(r, d).
 */
Real precondApplyDotF32(const FloatVector& inv_diag, const FloatVector& r,
                        FloatVector& d);

/** fp32 out = alpha x + beta y (out may alias x or y). */
void axpbyF32(Real alpha, const FloatVector& x, Real beta,
              const FloatVector& y, FloatVector& out);

/** Round a fp64 vector into fp32 storage (out resized to match). */
void castToF32(const Vector& x, FloatVector& out);

/** Widen fp32 storage back to fp64 (out resized to match). */
void widenF32(const FloatVector& x, Vector& out);

} // namespace rsqp

#endif // RSQP_LINALG_VECTOR_OPS_HPP
