/**
 * @file
 * Portable scalar instantiation of the kernel body: 8 explicit fp64 /
 * fp32 lanes in plain arrays, same striped accumulation and halving
 * tree as the SIMD packs. This is the bitwise reference every vector
 * table is tested against, and the only table on non-x86 builds.
 * Compiled with -ffp-contract=off so no lane ever fuses mul+add.
 */

#include "simd_kernels_tables.hpp"

#include <cmath>

namespace rsqp::simd
{

namespace
{

struct PackF;

struct PackD
{
    Real l[8];

    static PackD
    zero()
    {
        return PackD{{0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0}};
    }

    static PackD
    load(const Real* p)
    {
        PackD v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = p[j];
        return v;
    }

    static void
    store(Real* p, PackD v)
    {
        for (int j = 0; j < 8; ++j)
            p[j] = v.l[j];
    }

    static PackD
    broadcast(Real x)
    {
        PackD v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = x;
        return v;
    }

    static PackD
    add(PackD a, PackD b)
    {
        PackD v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = a.l[j] + b.l[j];
        return v;
    }

    static PackD
    sub(PackD a, PackD b)
    {
        PackD v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = a.l[j] - b.l[j];
        return v;
    }

    static PackD
    mul(PackD a, PackD b)
    {
        PackD v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = a.l[j] * b.l[j];
        return v;
    }

    static PackD
    abs(PackD a)
    {
        PackD v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = std::abs(a.l[j]);
        return v;
    }

    /** Lane = val > acc ? val : acc — a NaN val lane keeps acc. */
    static PackD
    maxAcc(PackD acc, PackD val)
    {
        PackD v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = val.l[j] > acc.l[j] ? val.l[j] : acc.l[j];
        return v;
    }

    static bool
    anyNonFinite(PackD a)
    {
        for (int j = 0; j < 8; ++j)
            if (!std::isfinite(a.l[j]))
                return true;
        return false;
    }

    static PackD
    gather(const Real* base, const Index* idx)
    {
        PackD v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = base[static_cast<std::size_t>(idx[j])];
        return v;
    }

    static PackD
    loadF32(const float* p)
    {
        PackD v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = static_cast<Real>(p[j]);
        return v;
    }

    static PackD fromPackF(PackF f);

    /** Canonical halving tree: (i, i+4), then (i, i+2), then the pair. */
    static Real
    reduceAdd(PackD a)
    {
        const Real m0 = a.l[0] + a.l[4];
        const Real m1 = a.l[1] + a.l[5];
        const Real m2 = a.l[2] + a.l[6];
        const Real m3 = a.l[3] + a.l[7];
        const Real q0 = m0 + m2;
        const Real q1 = m1 + m3;
        return q0 + q1;
    }

    static Real
    reduceMax(PackD a)
    {
        const Real m0 = a.l[4] > a.l[0] ? a.l[4] : a.l[0];
        const Real m1 = a.l[5] > a.l[1] ? a.l[5] : a.l[1];
        const Real m2 = a.l[6] > a.l[2] ? a.l[6] : a.l[2];
        const Real m3 = a.l[7] > a.l[3] ? a.l[7] : a.l[3];
        const Real q0 = m2 > m0 ? m2 : m0;
        const Real q1 = m3 > m1 ? m3 : m1;
        return q1 > q0 ? q1 : q0;
    }
};

struct PackF
{
    float l[8];

    static PackF
    zero()
    {
        return PackF{{0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f, 0.0f}};
    }

    static PackF
    load(const float* p)
    {
        PackF v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = p[j];
        return v;
    }

    static void
    store(float* p, PackF v)
    {
        for (int j = 0; j < 8; ++j)
            p[j] = v.l[j];
    }

    static PackF
    broadcast(float x)
    {
        PackF v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = x;
        return v;
    }

    static PackF
    add(PackF a, PackF b)
    {
        PackF v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = a.l[j] + b.l[j];
        return v;
    }

    static PackF
    sub(PackF a, PackF b)
    {
        PackF v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = a.l[j] - b.l[j];
        return v;
    }

    static PackF
    mul(PackF a, PackF b)
    {
        PackF v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = a.l[j] * b.l[j];
        return v;
    }

    static PackF
    gather(const float* base, const Index* idx)
    {
        PackF v;
        for (int j = 0; j < 8; ++j)
            v.l[j] = base[static_cast<std::size_t>(idx[j])];
        return v;
    }

    static float
    reduceAdd(PackF a)
    {
        const float m0 = a.l[0] + a.l[4];
        const float m1 = a.l[1] + a.l[5];
        const float m2 = a.l[2] + a.l[6];
        const float m3 = a.l[3] + a.l[7];
        const float q0 = m0 + m2;
        const float q1 = m1 + m3;
        return q0 + q1;
    }
};

inline PackD
PackD::fromPackF(PackF f)
{
    PackD v;
    for (int j = 0; j < 8; ++j)
        v.l[j] = static_cast<Real>(f.l[j]);
    return v;
}

#include "simd_kernels_body.ipp"

} // namespace

const VectorKernels&
scalarKernelTable()
{
    static const VectorKernels table =
        makeKernelTable(IsaLevel::Scalar, "scalar");
    return table;
}

} // namespace rsqp::simd
