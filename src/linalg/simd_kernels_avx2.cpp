/**
 * @file
 * AVX2 instantiation of the kernel body. An 8-lane fp64 pack is two
 * 256-bit registers; the halving-tree reduction adds the high half to
 * the low half exactly like the scalar reference, and the TU compiles
 * with -mavx2 -ffp-contract=off (mul + add stay separate, so lanes
 * match the scalar reference bit for bit). Built only when the
 * toolchain accepts -mavx2 on x86 (RSQP_SIMD_BUILD_AVX2); otherwise
 * this TU contributes a null table and the dispatcher clamps.
 */

#include "simd_kernels_tables.hpp"

#if defined(RSQP_SIMD_BUILD_AVX2)

#include <cmath>
#include <immintrin.h>
#include <limits>

namespace rsqp::simd
{

namespace
{

struct PackF;

struct PackD
{
    __m256d lo; ///< lanes 0..3
    __m256d hi; ///< lanes 4..7

    static PackD
    zero()
    {
        return {_mm256_setzero_pd(), _mm256_setzero_pd()};
    }

    static PackD
    load(const Real* p)
    {
        return {_mm256_loadu_pd(p), _mm256_loadu_pd(p + 4)};
    }

    static void
    store(Real* p, PackD v)
    {
        _mm256_storeu_pd(p, v.lo);
        _mm256_storeu_pd(p + 4, v.hi);
    }

    static PackD
    broadcast(Real x)
    {
        const __m256d v = _mm256_set1_pd(x);
        return {v, v};
    }

    static PackD
    add(PackD a, PackD b)
    {
        return {_mm256_add_pd(a.lo, b.lo), _mm256_add_pd(a.hi, b.hi)};
    }

    static PackD
    sub(PackD a, PackD b)
    {
        return {_mm256_sub_pd(a.lo, b.lo), _mm256_sub_pd(a.hi, b.hi)};
    }

    static PackD
    mul(PackD a, PackD b)
    {
        return {_mm256_mul_pd(a.lo, b.lo), _mm256_mul_pd(a.hi, b.hi)};
    }

    static PackD
    abs(PackD a)
    {
        const __m256d mask = _mm256_set1_pd(-0.0);
        return {_mm256_andnot_pd(mask, a.lo), _mm256_andnot_pd(mask, a.hi)};
    }

    /**
     * Lane = val > acc ? val : acc. vmaxpd returns its second operand
     * when the first is NaN, so passing val first drops NaN elements —
     * the std::max(best, |x|) semantics of the scalar reference.
     */
    static PackD
    maxAcc(PackD acc, PackD val)
    {
        return {_mm256_max_pd(val.lo, acc.lo),
                _mm256_max_pd(val.hi, acc.hi)};
    }

    static bool
    anyNonFinite(PackD a)
    {
        const __m256d inf =
            _mm256_set1_pd(std::numeric_limits<Real>::infinity());
        const PackD mag = abs(a);
        // NLT_UQ: |x| not-less-than inf, or unordered (NaN).
        const __m256d c0 = _mm256_cmp_pd(mag.lo, inf, _CMP_NLT_UQ);
        const __m256d c1 = _mm256_cmp_pd(mag.hi, inf, _CMP_NLT_UQ);
        return _mm256_movemask_pd(_mm256_or_pd(c0, c1)) != 0;
    }

    static PackD
    gather(const Real* base, const Index* idx)
    {
        const __m128i i0 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx));
        const __m128i i1 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + 4));
        // Masked form with an explicit zero source: the plain gather
        // intrinsic expands through _mm256_undefined_pd, which GCC
        // flags as maybe-uninitialized under -Wall.
        const __m256d src = _mm256_setzero_pd();
        const __m256d mask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
        return {_mm256_mask_i32gather_pd(src, base, i0, mask, 8),
                _mm256_mask_i32gather_pd(src, base, i1, mask, 8)};
    }

    static PackD
    loadF32(const float* p)
    {
        return {_mm256_cvtps_pd(_mm_loadu_ps(p)),
                _mm256_cvtps_pd(_mm_loadu_ps(p + 4))};
    }

    static PackD fromPackF(PackF f);

    /** Canonical halving tree: (i, i+4), then (i, i+2), then the pair. */
    static Real
    reduceAdd(PackD a)
    {
        const __m256d m = _mm256_add_pd(a.lo, a.hi);
        const __m128d q = _mm_add_pd(_mm256_castpd256_pd128(m),
                                     _mm256_extractf128_pd(m, 1));
        return _mm_cvtsd_f64(_mm_add_sd(q, _mm_unpackhi_pd(q, q)));
    }

    static Real
    reduceMax(PackD a)
    {
        const __m256d m = _mm256_max_pd(a.hi, a.lo);
        const __m128d q = _mm_max_pd(_mm256_extractf128_pd(m, 1),
                                     _mm256_castpd256_pd128(m));
        return _mm_cvtsd_f64(_mm_max_sd(_mm_unpackhi_pd(q, q), q));
    }
};

struct PackF
{
    __m256 v;

    static PackF
    zero()
    {
        return {_mm256_setzero_ps()};
    }

    static PackF
    load(const float* p)
    {
        return {_mm256_loadu_ps(p)};
    }

    static void
    store(float* p, PackF a)
    {
        _mm256_storeu_ps(p, a.v);
    }

    static PackF
    broadcast(float x)
    {
        return {_mm256_set1_ps(x)};
    }

    static PackF
    add(PackF a, PackF b)
    {
        return {_mm256_add_ps(a.v, b.v)};
    }

    static PackF
    sub(PackF a, PackF b)
    {
        return {_mm256_sub_ps(a.v, b.v)};
    }

    static PackF
    mul(PackF a, PackF b)
    {
        return {_mm256_mul_ps(a.v, b.v)};
    }

    static PackF
    gather(const float* base, const Index* idx)
    {
        const __m256i vi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
        return {_mm256_mask_i32gather_ps(
            _mm256_setzero_ps(), base, vi,
            _mm256_castsi256_ps(_mm256_set1_epi32(-1)), 4)};
    }

    static float
    reduceAdd(PackF a)
    {
        const __m128 m = _mm_add_ps(_mm256_castps256_ps128(a.v),
                                    _mm256_extractf128_ps(a.v, 1));
        const __m128 q = _mm_add_ps(m, _mm_movehl_ps(m, m));
        return _mm_cvtss_f32(
            _mm_add_ss(q, _mm_shuffle_ps(q, q, 0x1)));
    }
};

inline PackD
PackD::fromPackF(PackF f)
{
    return {_mm256_cvtps_pd(_mm256_castps256_ps128(f.v)),
            _mm256_cvtps_pd(_mm256_extractf128_ps(f.v, 1))};
}

#include "simd_kernels_body.ipp"

} // namespace

const VectorKernels*
avx2KernelTable()
{
    static const VectorKernels table =
        makeKernelTable(IsaLevel::Avx2, "avx2");
    return &table;
}

} // namespace rsqp::simd

#else // !RSQP_SIMD_BUILD_AVX2

namespace rsqp::simd
{

const VectorKernels*
avx2KernelTable()
{
    return nullptr;
}

} // namespace rsqp::simd

#endif
