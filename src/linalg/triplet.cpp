#include "triplet.hpp"

#include "common/logging.hpp"

namespace rsqp
{

TripletList::TripletList(Index rows, Index cols)
    : rows_(rows), cols_(cols)
{
    RSQP_ASSERT(rows >= 0 && cols >= 0, "negative matrix dimension");
}

void
TripletList::add(Index row, Index col, Real value)
{
    RSQP_ASSERT(row >= 0 && row < rows_, "triplet row ", row,
                " out of range [0, ", rows_, ")");
    RSQP_ASSERT(col >= 0 && col < cols_, "triplet col ", col,
                " out of range [0, ", cols_, ")");
    entries_.push_back(Triplet{row, col, value});
}

void
TripletList::addSymmetric(Index row, Index col, Real value)
{
    add(row, col, value);
    if (row != col)
        add(col, row, value);
}

} // namespace rsqp
