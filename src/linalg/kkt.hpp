/**
 * @file
 * KKT-system assembly for the OSQP inner linear system.
 *
 * Two forms are supported, mirroring the paper's Section 2.2:
 *  - the full indefinite KKT matrix
 *        [ P + sigma*I    A'        ]
 *        [ A             -diag(1/rho)]
 *    in upper-triangular CSC storage for the direct LDL' solver, and
 *  - the reduced positive-definite operator
 *        K = P + sigma*I + A' diag(rho) A
 *    applied matrix-free (K is never formed) for the PCG solver.
 */

#ifndef RSQP_LINALG_KKT_HPP
#define RSQP_LINALG_KKT_HPP

#include <vector>

#include "common/types.hpp"
#include "linalg/csc.hpp"

namespace rsqp
{

/**
 * Assembles and incrementally maintains the upper-triangular KKT matrix.
 *
 * The assembler records where every P entry, A entry and rho diagonal
 * entry lands in the KKT value array so that parameter updates (new
 * problem data with the same structure, or a new rho) touch only values
 * and never redo the symbolic work — the same reuse model that amortizes
 * RSQP's hardware generation.
 */
class KktAssembler
{
  public:
    /**
     * Build the KKT matrix.
     *
     * @param p_upper Objective Hessian, upper-triangle CSC storage.
     * @param a Constraint matrix (m x n CSC).
     * @param sigma ADMM regularization added to the (1,1) block diagonal.
     * @param rho_vec Per-constraint step sizes (length m, all > 0).
     */
    KktAssembler(const CscMatrix& p_upper, const CscMatrix& a, Real sigma,
                 const Vector& rho_vec);

    /** The assembled upper-triangular KKT matrix. */
    const CscMatrix& kkt() const { return kkt_; }

    /** Dimension n + m. */
    Index dim() const { return n_ + m_; }
    Index numVariables() const { return n_; }
    Index numConstraints() const { return m_; }

    /** Rewrite the -1/rho diagonal entries for a new rho vector. */
    void updateRho(const Vector& rho_vec);

    /**
     * Rewrite P and A values (same sparsity structure as construction).
     * p_values follows the CSC order of the original P upper matrix and
     * a_values the CSC order of the original A.
     */
    void updateMatrices(const std::vector<Real>& p_values,
                        const std::vector<Real>& a_values);

  private:
    Index n_ = 0;
    Index m_ = 0;
    Real sigma_ = 0.0;
    CscMatrix kkt_;
    /// KKT value slot of each P entry (CSC order of P).
    std::vector<Index> pSlots_;
    /// KKT value slot of each A entry (CSC order of A).
    std::vector<Index> aSlots_;
    /// KKT value slot of the sigma diagonal for variable j.
    std::vector<Index> sigmaSlots_;
    /// Whether P had an explicit diagonal entry at variable j.
    std::vector<bool> pHasDiag_;
    /// KKT value slot of the -1/rho diagonal for constraint i.
    std::vector<Index> rhoSlots_;
};

/**
 * Matrix-free application of the reduced KKT operator
 * K = P + sigma*I + A' diag(rho) A (the paper stores P, A and A'
 * separately and applies K incrementally; so do we).
 *
 * Execution form: construction expands the upper-triangle P into a
 * full symmetric CSR image and mirrors A into CSR; A' needs no mirror
 * at all because a CSR row of A' is exactly a CSC column of A, read
 * through the original arrays. Every apply() is therefore pure
 * row-gather — one private accumulator per output element, fanned out
 * over the shared ThreadPool with bitwise-identical results at any
 * thread count — and the diag(rho) scaling is folded into the A pass
 * (no separate length-m sweep). Each row reduces through the SIMD
 * kernel table's canonical 8-lane striped order, which is fixed per
 * row, so results are also bitwise-identical across dispatched ISA
 * levels.
 *
 * An optional fp32 mirror (enableFp32Mirror) shadows the P/A value
 * arrays in single precision for the mixed-precision PCG inner solve:
 * applyFp32() is the same three-pass row-gather over fp32 storage.
 * The mirrors track setRho()/refreshValues() automatically.
 *
 * Slot maps recorded at construction let refreshValues() re-read
 * updated P/A values in place (same sparsity pattern), and the
 * rho-independent diagonal parts (P_jj + sigma, per-entry A_ij^2) are
 * cached so setRho() recomputes diagonal() in O(nnz(A)).
 */
class ReducedKktOperator
{
  public:
    /**
     * @param p_upper Hessian in upper-triangle CSC storage.
     * @param a Constraint matrix (m x n).
     * @param sigma Regularization parameter.
     * @param rho_vec Per-constraint step sizes (length m).
     */
    ReducedKktOperator(const CscMatrix& p_upper, const CscMatrix& a,
                       Real sigma, Vector rho_vec);

    /** y = K x. */
    void apply(const Vector& x, Vector& y) const;

    /** z = A x (row-gather on the CSR mirror of A). */
    void applyA(const Vector& x, Vector& z) const;

    /** y += A' diag(rho) x — the reduced-rhs build, without temps. */
    void accumulateAtRho(const Vector& x, Vector& y) const;

    /** Cached diagonal of K, used by the Jacobi preconditioner. */
    const Vector& diagonal() const { return diag_; }

    /** Replace the rho vector (same length); costs O(nnz(A)) and
     *  performs no heap allocation. */
    void setRho(const Vector& rho_vec);

    /**
     * Re-read the P/A values through the construction-time slot maps
     * after the caller rewrote them in place (same sparsity pattern),
     * and refresh the cached diagonal.
     */
    void refreshValues();

    /**
     * Build (or rebuild) the fp32 shadow of the P/A value arrays and
     * rho vector for applyFp32(). Idempotent; after the first call the
     * mirrors follow setRho() and refreshValues() automatically.
     */
    void enableFp32Mirror();

    /** Whether the fp32 mirror has been built. */
    bool fp32MirrorEnabled() const { return fp32Enabled_; }

    /**
     * y = K x on the fp32 mirror — same three row-gather passes as
     * apply(), with fp32 storage and fp32 accumulation (the simulated
     * datapath's MAC precision). Requires enableFp32Mirror().
     */
    void applyFp32(const FloatVector& x, FloatVector& y) const;

    Real sigma() const { return sigma_; }
    const Vector& rhoVec() const { return rhoVec_; }
    Index dim() const { return pUpper_->cols(); }

  private:
    void buildPFull();
    void buildAMirror();
    void rebuildDiagonalBase();
    void rebuildDiagonal();
    void refreshFp32Values();
    void refreshFp32Rho();

    const CscMatrix* pUpper_;
    const CscMatrix* a_;
    Real sigma_;
    Vector rhoVec_;
    mutable Vector scratchM_;  ///< length-m scratch for diag(rho) A x

    /// Full symmetric expansion of P in CSR (sorted columns per row).
    std::vector<Index> pRowPtr_;
    std::vector<Index> pColIdx_;
    std::vector<Real> pVals_;
    /// CSR slot of each upper-CSC P entry (direct image).
    std::vector<Index> pDirectSlot_;
    /// CSR slot of each entry's transpose image (-1 on the diagonal).
    std::vector<Index> pMirrorSlot_;

    /// CSR mirror of A.
    std::vector<Index> aRowPtr_;
    std::vector<Index> aColIdx_;
    std::vector<Real> aVals_;
    /// CSR slot of each CSC A entry.
    std::vector<Index> aSlotFromCsc_;
    /// Per-entry A_ij^2 aligned with the CSR mirror (rho-independent).
    std::vector<Real> aSqCsr_;

    /// Rho-independent diagonal part: P_jj + sigma.
    Vector diagBase_;
    /// Cached diagonal of K for the current rho.
    Vector diag_;

    /// fp32 mirror state for the mixed-precision inner solve.
    bool fp32Enabled_ = false;
    FloatVector pVals32_;    ///< fp32 shadow of pVals_ (full CSR image)
    FloatVector aVals32_;    ///< fp32 shadow of aVals_ (CSR mirror)
    FloatVector aCscVals32_; ///< fp32 shadow of A's CSC values (At pass)
    FloatVector rho32_;      ///< fp32 shadow of rhoVec_
    mutable FloatVector scratchM32_; ///< fp32 length-m scratch
};

} // namespace rsqp

#endif // RSQP_LINALG_KKT_HPP
