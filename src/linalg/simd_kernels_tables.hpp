/**
 * @file
 * Internal linkage between the per-ISA kernel translation units and
 * the dispatcher in simd_kernels.cpp. Not installed; include
 * simd_kernels.hpp for the public dispatch API.
 */

#ifndef RSQP_LINALG_SIMD_KERNELS_TABLES_HPP
#define RSQP_LINALG_SIMD_KERNELS_TABLES_HPP

#include "simd_kernels.hpp"

namespace rsqp::simd
{

/** The portable reference table; always available. */
const VectorKernels& scalarKernelTable();

/** AVX2 table, or nullptr when the build carries no AVX2 kernels. */
const VectorKernels* avx2KernelTable();

/** AVX-512 table, or nullptr when the build carries none. */
const VectorKernels* avx512KernelTable();

} // namespace rsqp::simd

#endif // RSQP_LINALG_SIMD_KERNELS_TABLES_HPP
