#include "csc.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace rsqp
{

CscMatrix::CscMatrix(Index rows, Index cols)
    : rows_(rows), cols_(cols),
      colPtr_(static_cast<std::size_t>(cols) + 1, 0)
{
    RSQP_ASSERT(rows >= 0 && cols >= 0, "negative matrix dimension");
}

CscMatrix
CscMatrix::fromTriplets(const TripletList& triplets)
{
    const Index rows = triplets.rows();
    const Index cols = triplets.cols();
    CscMatrix result(rows, cols);

    // Count entries per column (including duplicates for now).
    std::vector<Count> col_counts(static_cast<std::size_t>(cols), 0);
    for (const Triplet& t : triplets.entries())
        ++col_counts[static_cast<std::size_t>(t.col)];

    std::vector<Count> offsets(static_cast<std::size_t>(cols) + 1, 0);
    for (Index c = 0; c < cols; ++c)
        offsets[c + 1] = offsets[c] + col_counts[static_cast<std::size_t>(c)];

    const std::size_t raw_nnz = triplets.size();
    std::vector<Index> rows_buf(raw_nnz);
    std::vector<Real> vals_buf(raw_nnz);
    std::vector<Count> cursor(offsets.begin(), offsets.end() - 1);
    for (const Triplet& t : triplets.entries()) {
        const auto pos = static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(t.col)]++);
        rows_buf[pos] = t.row;
        vals_buf[pos] = t.value;
    }

    // Sort each column by row index and merge duplicates by summing.
    result.colPtr_.assign(static_cast<std::size_t>(cols) + 1, 0);
    std::vector<std::size_t> order;
    for (Index c = 0; c < cols; ++c) {
        const auto begin = static_cast<std::size_t>(offsets[c]);
        const auto end = static_cast<std::size_t>(offsets[c + 1]);
        order.resize(end - begin);
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = begin + i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return rows_buf[a] < rows_buf[b];
                  });
        Index prev_row = -1;
        for (std::size_t i : order) {
            if (rows_buf[i] == prev_row) {
                result.values_.back() += vals_buf[i];
            } else {
                result.rowIdx_.push_back(rows_buf[i]);
                result.values_.push_back(vals_buf[i]);
                prev_row = rows_buf[i];
            }
        }
        result.colPtr_[static_cast<std::size_t>(c) + 1] =
            static_cast<Index>(result.rowIdx_.size());
    }
    return result;
}

CscMatrix
CscMatrix::fromRaw(Index rows, Index cols, std::vector<Index> col_ptr,
                   std::vector<Index> row_idx, std::vector<Real> values)
{
    CscMatrix result;
    result.rows_ = rows;
    result.cols_ = cols;
    result.colPtr_ = std::move(col_ptr);
    result.rowIdx_ = std::move(row_idx);
    result.values_ = std::move(values);
    if (!result.isValid())
        RSQP_FATAL("fromRaw: invalid CSC structure for ", rows, "x", cols,
                   " matrix");
    return result;
}

CscMatrix
CscMatrix::fromRawUnchecked(Index rows, Index cols,
                            std::vector<Index> col_ptr,
                            std::vector<Index> row_idx,
                            std::vector<Real> values)
{
    CscMatrix result;
    result.rows_ = rows;
    result.cols_ = cols;
    result.colPtr_ = std::move(col_ptr);
    result.rowIdx_ = std::move(row_idx);
    result.values_ = std::move(values);
    return result;
}

CscMatrix
CscMatrix::identity(Index n, Real value)
{
    CscMatrix result(n, n);
    result.rowIdx_.resize(static_cast<std::size_t>(n));
    result.values_.assign(static_cast<std::size_t>(n), value);
    for (Index i = 0; i < n; ++i) {
        result.rowIdx_[static_cast<std::size_t>(i)] = i;
        result.colPtr_[static_cast<std::size_t>(i) + 1] = i + 1;
    }
    return result;
}

CscMatrix
CscMatrix::diagonal(const Vector& diag)
{
    const Index n = static_cast<Index>(diag.size());
    CscMatrix result = identity(n, 1.0);
    result.values_ = diag;
    return result;
}

Real
CscMatrix::coeff(Index row, Index col) const
{
    RSQP_ASSERT(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                "coeff out of range");
    const auto begin = rowIdx_.begin() + colPtr_[col];
    const auto end = rowIdx_.begin() + colPtr_[col + 1];
    const auto it = std::lower_bound(begin, end, row);
    if (it == end || *it != row)
        return 0.0;
    return values_[static_cast<std::size_t>(it - rowIdx_.begin())];
}

void
CscMatrix::spmv(const Vector& x, Vector& y) const
{
    RSQP_ASSERT(static_cast<Index>(x.size()) == cols_, "spmv: x size");
    y.assign(static_cast<std::size_t>(rows_), 0.0);
    spmvAccumulate(x, y, 1.0);
}

void
CscMatrix::spmvAccumulate(const Vector& x, Vector& y, Real alpha) const
{
    RSQP_ASSERT(static_cast<Index>(x.size()) == cols_, "spmv: x size");
    RSQP_ASSERT(static_cast<Index>(y.size()) == rows_, "spmv: y size");
    for (Index c = 0; c < cols_; ++c) {
        const Real xc = alpha * x[static_cast<std::size_t>(c)];
        if (xc == 0.0)
            continue;
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p)
            y[static_cast<std::size_t>(rowIdx_[p])] += values_[p] * xc;
    }
}

void
CscMatrix::spmvTranspose(const Vector& x, Vector& y) const
{
    RSQP_ASSERT(static_cast<Index>(x.size()) == rows_, "spmvT: x size");
    y.assign(static_cast<std::size_t>(cols_), 0.0);
    spmvTransposeAccumulate(x, y, 1.0);
}

void
CscMatrix::spmvTransposeAccumulate(const Vector& x, Vector& y,
                                   Real alpha) const
{
    RSQP_ASSERT(static_cast<Index>(x.size()) == rows_, "spmvT: x size");
    RSQP_ASSERT(static_cast<Index>(y.size()) == cols_, "spmvT: y size");
    for (Index c = 0; c < cols_; ++c) {
        Real acc = 0.0;
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p)
            acc += values_[p] * x[static_cast<std::size_t>(rowIdx_[p])];
        y[static_cast<std::size_t>(c)] += alpha * acc;
    }
}

void
CscMatrix::spmvSymUpper(const Vector& x, Vector& y) const
{
    RSQP_ASSERT(rows_ == cols_, "symmetric spmv needs a square matrix");
    RSQP_ASSERT(static_cast<Index>(x.size()) == cols_, "spmvSym: x size");
    y.assign(static_cast<std::size_t>(rows_), 0.0);
    for (Index c = 0; c < cols_; ++c) {
        const Real xc = x[static_cast<std::size_t>(c)];
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p) {
            const Index r = rowIdx_[p];
            RSQP_ASSERT(r <= c, "spmvSymUpper: entry below the diagonal");
            const Real v = values_[p];
            y[static_cast<std::size_t>(r)] += v * xc;
            if (r != c)
                y[static_cast<std::size_t>(c)] +=
                    v * x[static_cast<std::size_t>(r)];
        }
    }
}

CscMatrix
CscMatrix::transpose() const
{
    CscMatrix result(cols_, rows_);
    result.rowIdx_.resize(values_.size());
    result.values_.resize(values_.size());

    // Count entries per row of A = per column of A'.
    std::vector<Index> counts(static_cast<std::size_t>(rows_), 0);
    for (Index r : rowIdx_)
        ++counts[static_cast<std::size_t>(r)];
    for (Index r = 0; r < rows_; ++r)
        result.colPtr_[static_cast<std::size_t>(r) + 1] =
            result.colPtr_[static_cast<std::size_t>(r)] +
            counts[static_cast<std::size_t>(r)];

    std::vector<Index> cursor(result.colPtr_.begin(),
                              result.colPtr_.end() - 1);
    for (Index c = 0; c < cols_; ++c) {
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p) {
            const Index r = rowIdx_[p];
            const Index pos = cursor[static_cast<std::size_t>(r)]++;
            result.rowIdx_[static_cast<std::size_t>(pos)] = c;
            result.values_[static_cast<std::size_t>(pos)] = values_[p];
        }
    }
    return result;
}

CscMatrix
CscMatrix::upperTriangular() const
{
    CscMatrix result(rows_, cols_);
    for (Index c = 0; c < cols_; ++c) {
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p) {
            if (rowIdx_[p] <= c) {
                result.rowIdx_.push_back(rowIdx_[p]);
                result.values_.push_back(values_[p]);
            }
        }
        result.colPtr_[static_cast<std::size_t>(c) + 1] =
            static_cast<Index>(result.rowIdx_.size());
    }
    return result;
}

CscMatrix
CscMatrix::symUpperToFull() const
{
    RSQP_ASSERT(rows_ == cols_, "symUpperToFull needs a square matrix");
    TripletList triplets(rows_, cols_);
    triplets.reserve(values_.size() * 2);
    for (Index c = 0; c < cols_; ++c) {
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p) {
            const Index r = rowIdx_[p];
            RSQP_ASSERT(r <= c, "symUpperToFull: entry below the diagonal");
            triplets.add(r, c, values_[p]);
            if (r != c)
                triplets.add(c, r, values_[p]);
        }
    }
    return fromTriplets(triplets);
}

CscMatrix
CscMatrix::symUpperPermute(const IndexVector& perm) const
{
    RSQP_ASSERT(rows_ == cols_, "symUpperPermute needs a square matrix");
    RSQP_ASSERT(static_cast<Index>(perm.size()) == cols_,
                "permutation size mismatch");
    // inv[old] = new position.
    IndexVector inv(perm.size());
    for (Index i = 0; i < cols_; ++i)
        inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;

    TripletList triplets(rows_, cols_);
    triplets.reserve(values_.size());
    for (Index c = 0; c < cols_; ++c) {
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p) {
            Index nr = inv[static_cast<std::size_t>(rowIdx_[p])];
            Index nc = inv[static_cast<std::size_t>(c)];
            if (nr > nc)
                std::swap(nr, nc);
            triplets.add(nr, nc, values_[p]);
        }
    }
    return fromTriplets(triplets);
}

CscMatrix
CscMatrix::scaled(const Vector& row_scale, const Vector& col_scale) const
{
    CscMatrix result = *this;
    result.scaleInPlace(row_scale, col_scale);
    return result;
}

void
CscMatrix::scaleInPlace(const Vector& row_scale, const Vector& col_scale)
{
    RSQP_ASSERT(static_cast<Index>(row_scale.size()) == rows_,
                "row scale size");
    RSQP_ASSERT(static_cast<Index>(col_scale.size()) == cols_,
                "col scale size");
    for (Index c = 0; c < cols_; ++c) {
        const Real cs = col_scale[static_cast<std::size_t>(c)];
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p)
            values_[p] *= cs * row_scale[static_cast<std::size_t>(
                rowIdx_[p])];
    }
}

Vector
CscMatrix::diagonalVector() const
{
    const Index n = std::min(rows_, cols_);
    Vector diag(static_cast<std::size_t>(n), 0.0);
    for (Index c = 0; c < n; ++c) {
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p) {
            if (rowIdx_[p] == c) {
                diag[static_cast<std::size_t>(c)] = values_[p];
                break;
            }
        }
    }
    return diag;
}

Vector
CscMatrix::columnInfNorms() const
{
    Vector norms(static_cast<std::size_t>(cols_), 0.0);
    for (Index c = 0; c < cols_; ++c)
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p)
            norms[static_cast<std::size_t>(c)] = std::max(
                norms[static_cast<std::size_t>(c)], std::abs(values_[p]));
    return norms;
}

Vector
CscMatrix::rowInfNorms() const
{
    Vector norms(static_cast<std::size_t>(rows_), 0.0);
    for (Index c = 0; c < cols_; ++c)
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p) {
            auto& entry = norms[static_cast<std::size_t>(rowIdx_[p])];
            entry = std::max(entry, std::abs(values_[p]));
        }
    return norms;
}

Vector
CscMatrix::symUpperColumnInfNorms() const
{
    RSQP_ASSERT(rows_ == cols_, "symmetric norms need a square matrix");
    Vector norms(static_cast<std::size_t>(cols_), 0.0);
    for (Index c = 0; c < cols_; ++c) {
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p) {
            const Index r = rowIdx_[p];
            const Real v = std::abs(values_[p]);
            norms[static_cast<std::size_t>(c)] =
                std::max(norms[static_cast<std::size_t>(c)], v);
            if (r != c)
                norms[static_cast<std::size_t>(r)] =
                    std::max(norms[static_cast<std::size_t>(r)], v);
        }
    }
    return norms;
}

Index
CscMatrix::colNnz(Index col) const
{
    RSQP_ASSERT(col >= 0 && col < cols_, "colNnz out of range");
    return colPtr_[col + 1] - colPtr_[col];
}

bool
CscMatrix::isValid() const
{
    if (rows_ < 0 || cols_ < 0)
        return false;
    if (colPtr_.size() != static_cast<std::size_t>(cols_) + 1)
        return false;
    if (colPtr_.front() != 0)
        return false;
    if (rowIdx_.size() != values_.size())
        return false;
    if (colPtr_.back() != static_cast<Index>(rowIdx_.size()))
        return false;
    for (Index c = 0; c < cols_; ++c) {
        if (colPtr_[c] > colPtr_[c + 1])
            return false;
        Index prev = -1;
        for (Index p = colPtr_[c]; p < colPtr_[c + 1]; ++p) {
            if (rowIdx_[p] <= prev || rowIdx_[p] >= rows_)
                return false;
            prev = rowIdx_[p];
        }
    }
    return true;
}

bool
CscMatrix::operator==(const CscMatrix& other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
        colPtr_ == other.colPtr_ && rowIdx_ == other.rowIdx_ &&
        values_ == other.values_;
}

} // namespace rsqp
