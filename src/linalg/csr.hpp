/**
 * @file
 * Compressed Sparse Row matrix — the accelerator-side container.
 *
 * RSQP's sparsity-string encoding, MAC-tree scheduling and HBM layout
 * all operate on rows, so the architecture modules consume CSR.
 */

#ifndef RSQP_LINALG_CSR_HPP
#define RSQP_LINALG_CSR_HPP

#include <vector>

#include "common/types.hpp"
#include "linalg/csc.hpp"

namespace rsqp
{

/** CSR sparse matrix with row-major non-zero storage. */
class CsrMatrix
{
  public:
    CsrMatrix() = default;

    /** All-zero matrix of the given shape. */
    CsrMatrix(Index rows, Index cols);

    /** Convert from CSC (sorted column indices guaranteed). */
    static CsrMatrix fromCsc(const CscMatrix& csc);

    /** Build directly from raw CSR arrays (validated). */
    static CsrMatrix fromRaw(Index rows, Index cols,
                             std::vector<Index> row_ptr,
                             std::vector<Index> col_idx,
                             std::vector<Real> values);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Count nnz() const { return static_cast<Count>(values_.size()); }

    const std::vector<Index>& rowPtr() const { return rowPtr_; }
    const std::vector<Index>& colIdx() const { return colIdx_; }
    const std::vector<Real>& values() const { return values_; }
    std::vector<Real>& values() { return values_; }

    /** Number of stored entries in one row. */
    Index rowNnz(Index row) const;

    /** y = A x (row-parallel formulation). */
    void spmv(const Vector& x, Vector& y) const;

    /** Round-trip back to CSC. */
    CscMatrix toCsc() const;

    /**
     * Permute rows: B.row(i) = A.row(perm[i]). Used by the (Sec. 4.4)
     * structure-adaptation ablation.
     */
    CsrMatrix permuteRows(const IndexVector& perm) const;

    /** Structural validity check. */
    bool isValid() const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Index> rowPtr_;  ///< size rows_+1
    std::vector<Index> colIdx_;  ///< size nnz, sorted within a row
    std::vector<Real> values_;   ///< size nnz
};

} // namespace rsqp

#endif // RSQP_LINALG_CSR_HPP
