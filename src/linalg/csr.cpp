#include "csr.hpp"

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "linalg/simd_kernels.hpp"

namespace rsqp
{

CsrMatrix::CsrMatrix(Index rows, Index cols)
    : rows_(rows), cols_(cols),
      rowPtr_(static_cast<std::size_t>(rows) + 1, 0)
{
    RSQP_ASSERT(rows >= 0 && cols >= 0, "negative matrix dimension");
}

CsrMatrix
CsrMatrix::fromCsc(const CscMatrix& csc)
{
    CsrMatrix result(csc.rows(), csc.cols());
    result.colIdx_.resize(static_cast<std::size_t>(csc.nnz()));
    result.values_.resize(static_cast<std::size_t>(csc.nnz()));

    // Count entries per row.
    for (Index r : csc.rowIdx())
        ++result.rowPtr_[static_cast<std::size_t>(r) + 1];
    for (Index r = 0; r < csc.rows(); ++r)
        result.rowPtr_[static_cast<std::size_t>(r) + 1] +=
            result.rowPtr_[static_cast<std::size_t>(r)];

    std::vector<Index> cursor(result.rowPtr_.begin(),
                              result.rowPtr_.end() - 1);
    // Column-major traversal fills each row with ascending columns.
    for (Index c = 0; c < csc.cols(); ++c) {
        for (Index p = csc.colPtr()[c]; p < csc.colPtr()[c + 1]; ++p) {
            const Index r = csc.rowIdx()[p];
            const Index pos = cursor[static_cast<std::size_t>(r)]++;
            result.colIdx_[static_cast<std::size_t>(pos)] = c;
            result.values_[static_cast<std::size_t>(pos)] =
                csc.values()[p];
        }
    }
    return result;
}

CsrMatrix
CsrMatrix::fromRaw(Index rows, Index cols, std::vector<Index> row_ptr,
                   std::vector<Index> col_idx, std::vector<Real> values)
{
    CsrMatrix result;
    result.rows_ = rows;
    result.cols_ = cols;
    result.rowPtr_ = std::move(row_ptr);
    result.colIdx_ = std::move(col_idx);
    result.values_ = std::move(values);
    if (!result.isValid())
        RSQP_FATAL("fromRaw: invalid CSR structure for ", rows, "x", cols,
                   " matrix");
    return result;
}

Index
CsrMatrix::rowNnz(Index row) const
{
    RSQP_ASSERT(row >= 0 && row < rows_, "rowNnz out of range");
    return rowPtr_[row + 1] - rowPtr_[row];
}

void
CsrMatrix::spmv(const Vector& x, Vector& y) const
{
    RSQP_ASSERT(static_cast<Index>(x.size()) == cols_, "spmv: x size");
    y.resize(static_cast<std::size_t>(rows_));
    // Row-gather: each output element is one private accumulation, so
    // the result is bitwise-identical at any thread count. The per-row
    // gather dispatches through the SIMD kernel table and uses the
    // canonical 8-lane striped order at every ISA level.
    const simd::VectorKernels& k = simd::activeKernels();
    parallelForRange(rows_, [&](Index rb, Index re) {
        for (Index r = rb; r < re; ++r) {
            const Index begin = rowPtr_[r];
            y[static_cast<std::size_t>(r)] =
                k.csrRowGather(values_.data() + begin,
                               colIdx_.data() + begin,
                               rowPtr_[r + 1] - begin, x.data());
        }
    });
}

CscMatrix
CsrMatrix::toCsc() const
{
    TripletList triplets(rows_, cols_);
    triplets.reserve(values_.size());
    for (Index r = 0; r < rows_; ++r)
        for (Index p = rowPtr_[r]; p < rowPtr_[r + 1]; ++p)
            triplets.add(r, colIdx_[p], values_[p]);
    return CscMatrix::fromTriplets(triplets);
}

CsrMatrix
CsrMatrix::permuteRows(const IndexVector& perm) const
{
    RSQP_ASSERT(static_cast<Index>(perm.size()) == rows_,
                "row permutation size mismatch");
    CsrMatrix result(rows_, cols_);
    result.colIdx_.reserve(colIdx_.size());
    result.values_.reserve(values_.size());
    for (Index i = 0; i < rows_; ++i) {
        const Index src = perm[static_cast<std::size_t>(i)];
        RSQP_ASSERT(src >= 0 && src < rows_, "bad permutation entry");
        for (Index p = rowPtr_[src]; p < rowPtr_[src + 1]; ++p) {
            result.colIdx_.push_back(colIdx_[p]);
            result.values_.push_back(values_[p]);
        }
        result.rowPtr_[static_cast<std::size_t>(i) + 1] =
            static_cast<Index>(result.colIdx_.size());
    }
    return result;
}

bool
CsrMatrix::isValid() const
{
    if (rows_ < 0 || cols_ < 0)
        return false;
    if (rowPtr_.size() != static_cast<std::size_t>(rows_) + 1)
        return false;
    if (rowPtr_.front() != 0)
        return false;
    if (colIdx_.size() != values_.size())
        return false;
    if (rowPtr_.back() != static_cast<Index>(colIdx_.size()))
        return false;
    for (Index r = 0; r < rows_; ++r) {
        if (rowPtr_[r] > rowPtr_[r + 1])
            return false;
        Index prev = -1;
        for (Index p = rowPtr_[r]; p < rowPtr_[r + 1]; ++p) {
            if (colIdx_[p] <= prev || colIdx_[p] >= cols_)
                return false;
            prev = colIdx_[p];
        }
    }
    return true;
}

} // namespace rsqp
