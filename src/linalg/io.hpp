/**
 * @file
 * Matrix and problem serialization.
 *
 * Sparse matrices read/write the MatrixMarket coordinate format
 * (interoperable with SciPy, Julia, MATLAB, SuiteSparse); whole QP
 * problems use a small self-describing text container embedding the
 * matrices, so benchmark instances can be exported, shared and
 * re-imported bit-for-bit into other OSQP implementations.
 */

#ifndef RSQP_LINALG_IO_HPP
#define RSQP_LINALG_IO_HPP

#include <iosfwd>
#include <string>

#include "common/types.hpp"
#include "linalg/csc.hpp"

namespace rsqp
{

/** Write a CSC matrix in MatrixMarket coordinate format. */
void writeMatrixMarket(std::ostream& os, const CscMatrix& matrix,
                       bool symmetric_upper = false);

/**
 * Read a MatrixMarket coordinate matrix (general or symmetric;
 * symmetric input is returned as upper-triangle storage).
 */
CscMatrix readMatrixMarket(std::istream& is);

} // namespace rsqp

#endif // RSQP_LINALG_IO_HPP
