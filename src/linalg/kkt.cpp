#include "kkt.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "linalg/vector_ops.hpp"

namespace rsqp
{

KktAssembler::KktAssembler(const CscMatrix& p_upper, const CscMatrix& a,
                           Real sigma, const Vector& rho_vec)
    : n_(p_upper.cols()), m_(a.rows()), sigma_(sigma)
{
    RSQP_ASSERT(p_upper.rows() == p_upper.cols(), "P must be square");
    RSQP_ASSERT(a.cols() == n_, "A column count must match P");
    RSQP_ASSERT(static_cast<Index>(rho_vec.size()) == m_,
                "rho vector length must be m");

    pSlots_.resize(static_cast<std::size_t>(p_upper.nnz()));
    aSlots_.resize(static_cast<std::size_t>(a.nnz()));
    sigmaSlots_.resize(static_cast<std::size_t>(n_));
    pHasDiag_.assign(static_cast<std::size_t>(n_), false);
    rhoSlots_.resize(static_cast<std::size_t>(m_));

    const Index dim = n_ + m_;
    std::vector<Index> col_ptr(static_cast<std::size_t>(dim) + 1, 0);
    std::vector<Index> row_idx;
    std::vector<Real> values;
    row_idx.reserve(static_cast<std::size_t>(p_upper.nnz() + a.nnz() +
                                             dim));
    values.reserve(row_idx.capacity());

    // (1,1) block columns: P upper column + sigma on the diagonal.
    for (Index j = 0; j < n_; ++j) {
        bool has_diag = false;
        for (Index p = p_upper.colPtr()[j]; p < p_upper.colPtr()[j + 1];
             ++p) {
            const Index r = p_upper.rowIdx()[p];
            RSQP_ASSERT(r <= j, "P must be upper-triangular storage");
            Real v = p_upper.values()[p];
            if (r == j) {
                has_diag = true;
                v += sigma;
                sigmaSlots_[static_cast<std::size_t>(j)] =
                    static_cast<Index>(values.size());
            }
            pSlots_[static_cast<std::size_t>(p)] =
                static_cast<Index>(values.size());
            row_idx.push_back(r);
            values.push_back(v);
        }
        if (!has_diag) {
            // P column lacks an explicit diagonal; sigma creates one.
            sigmaSlots_[static_cast<std::size_t>(j)] =
                static_cast<Index>(values.size());
            row_idx.push_back(j);
            values.push_back(sigma);
        }
        pHasDiag_[static_cast<std::size_t>(j)] = has_diag;
        col_ptr[static_cast<std::size_t>(j) + 1] =
            static_cast<Index>(values.size());
    }

    // Row-major view of A with back-pointers into its CSC value order.
    std::vector<std::vector<std::pair<Index, Index>>> a_rows(
        static_cast<std::size_t>(m_));
    for (Index c = 0; c < a.cols(); ++c)
        for (Index p = a.colPtr()[c]; p < a.colPtr()[c + 1]; ++p)
            a_rows[static_cast<std::size_t>(a.rowIdx()[p])].emplace_back(
                c, p);

    // (1,2)/(2,2) block columns: A row i above a -1/rho_i diagonal.
    for (Index i = 0; i < m_; ++i) {
        RSQP_ASSERT(rho_vec[static_cast<std::size_t>(i)] > 0.0,
                    "rho must be positive");
        for (const auto& [c, csc_pos] : a_rows[static_cast<std::size_t>(i)]) {
            aSlots_[static_cast<std::size_t>(csc_pos)] =
                static_cast<Index>(values.size());
            row_idx.push_back(c);
            values.push_back(a.values()[csc_pos]);
        }
        rhoSlots_[static_cast<std::size_t>(i)] =
            static_cast<Index>(values.size());
        row_idx.push_back(n_ + i);
        values.push_back(-1.0 / rho_vec[static_cast<std::size_t>(i)]);
        col_ptr[static_cast<std::size_t>(n_ + i) + 1] =
            static_cast<Index>(values.size());
    }

    kkt_ = CscMatrix::fromRaw(dim, dim, std::move(col_ptr),
                              std::move(row_idx), std::move(values));
}

void
KktAssembler::updateRho(const Vector& rho_vec)
{
    RSQP_ASSERT(static_cast<Index>(rho_vec.size()) == m_,
                "rho vector length must be m");
    auto& values = kkt_.values();
    for (Index i = 0; i < m_; ++i) {
        RSQP_ASSERT(rho_vec[static_cast<std::size_t>(i)] > 0.0,
                    "rho must be positive");
        values[static_cast<std::size_t>(
            rhoSlots_[static_cast<std::size_t>(i)])] =
            -1.0 / rho_vec[static_cast<std::size_t>(i)];
    }
}

void
KktAssembler::updateMatrices(const std::vector<Real>& p_values,
                             const std::vector<Real>& a_values)
{
    RSQP_ASSERT(p_values.size() == pSlots_.size(), "P value count");
    RSQP_ASSERT(a_values.size() == aSlots_.size(), "A value count");
    auto& values = kkt_.values();
    for (std::size_t p = 0; p < p_values.size(); ++p)
        values[static_cast<std::size_t>(pSlots_[p])] = p_values[p];
    // Re-apply sigma to every diagonal slot that P contributes to (the
    // slots were just overwritten above when P has an explicit diagonal).
    for (Index j = 0; j < n_; ++j) {
        const auto slot =
            static_cast<std::size_t>(sigmaSlots_[static_cast<std::size_t>(j)]);
        if (pHasDiag_[static_cast<std::size_t>(j)])
            values[slot] += sigma_;
        else
            values[slot] = sigma_;
    }
    for (std::size_t p = 0; p < a_values.size(); ++p)
        values[static_cast<std::size_t>(aSlots_[p])] = a_values[p];
}

ReducedKktOperator::ReducedKktOperator(const CscMatrix& p_upper,
                                       const CscMatrix& a, Real sigma,
                                       Vector rho_vec)
    : pUpper_(&p_upper), a_(&a), sigma_(sigma), rhoVec_(std::move(rho_vec))
{
    RSQP_ASSERT(p_upper.rows() == p_upper.cols(), "P must be square");
    RSQP_ASSERT(a.cols() == p_upper.cols(), "A/P dimension mismatch");
    RSQP_ASSERT(static_cast<Index>(rhoVec_.size()) == a.rows(),
                "rho vector length must be m");
}

void
ReducedKktOperator::apply(const Vector& x, Vector& y) const
{
    // y = P x  (symmetric upper storage)
    pUpper_->spmvSymUpper(x, y);
    // y += sigma x
    axpy(sigma_, x, y);
    // y += A' diag(rho) A x, computed incrementally.
    a_->spmv(x, scratchM_);
    for (std::size_t i = 0; i < scratchM_.size(); ++i)
        scratchM_[i] *= rhoVec_[i];
    a_->spmvTransposeAccumulate(scratchM_, y, 1.0);
}

Vector
ReducedKktOperator::diagonal() const
{
    const Index n = pUpper_->cols();
    Vector diag = pUpper_->diagonalVector();
    for (Index j = 0; j < n; ++j)
        diag[static_cast<std::size_t>(j)] += sigma_;
    // diag(A' diag(rho) A)_j = sum_i rho_i * A_ij^2, column-wise in CSC.
    for (Index c = 0; c < a_->cols(); ++c) {
        Real acc = 0.0;
        for (Index p = a_->colPtr()[c]; p < a_->colPtr()[c + 1]; ++p) {
            const Real v = a_->values()[p];
            acc += rhoVec_[static_cast<std::size_t>(a_->rowIdx()[p])] * v *
                v;
        }
        diag[static_cast<std::size_t>(c)] += acc;
    }
    return diag;
}

void
ReducedKktOperator::setRho(Vector rho_vec)
{
    RSQP_ASSERT(rho_vec.size() == rhoVec_.size(), "rho length change");
    rhoVec_ = std::move(rho_vec);
}

} // namespace rsqp
