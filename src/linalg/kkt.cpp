#include "kkt.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/profile.hpp"
#include "common/thread_pool.hpp"
#include "linalg/simd_kernels.hpp"
#include "telemetry/trace.hpp"

namespace rsqp
{

KktAssembler::KktAssembler(const CscMatrix& p_upper, const CscMatrix& a,
                           Real sigma, const Vector& rho_vec)
    : n_(p_upper.cols()), m_(a.rows()), sigma_(sigma)
{
    RSQP_ASSERT(p_upper.rows() == p_upper.cols(), "P must be square");
    RSQP_ASSERT(a.cols() == n_, "A column count must match P");
    RSQP_ASSERT(static_cast<Index>(rho_vec.size()) == m_,
                "rho vector length must be m");

    pSlots_.resize(static_cast<std::size_t>(p_upper.nnz()));
    aSlots_.resize(static_cast<std::size_t>(a.nnz()));
    sigmaSlots_.resize(static_cast<std::size_t>(n_));
    pHasDiag_.assign(static_cast<std::size_t>(n_), false);
    rhoSlots_.resize(static_cast<std::size_t>(m_));

    const Index dim = n_ + m_;
    std::vector<Index> col_ptr(static_cast<std::size_t>(dim) + 1, 0);
    std::vector<Index> row_idx;
    std::vector<Real> values;
    row_idx.reserve(static_cast<std::size_t>(p_upper.nnz() + a.nnz() +
                                             dim));
    values.reserve(row_idx.capacity());

    // (1,1) block columns: P upper column + sigma on the diagonal.
    for (Index j = 0; j < n_; ++j) {
        bool has_diag = false;
        for (Index p = p_upper.colPtr()[j]; p < p_upper.colPtr()[j + 1];
             ++p) {
            const Index r = p_upper.rowIdx()[p];
            RSQP_ASSERT(r <= j, "P must be upper-triangular storage");
            Real v = p_upper.values()[p];
            if (r == j) {
                has_diag = true;
                v += sigma;
                sigmaSlots_[static_cast<std::size_t>(j)] =
                    static_cast<Index>(values.size());
            }
            pSlots_[static_cast<std::size_t>(p)] =
                static_cast<Index>(values.size());
            row_idx.push_back(r);
            values.push_back(v);
        }
        if (!has_diag) {
            // P column lacks an explicit diagonal; sigma creates one.
            sigmaSlots_[static_cast<std::size_t>(j)] =
                static_cast<Index>(values.size());
            row_idx.push_back(j);
            values.push_back(sigma);
        }
        pHasDiag_[static_cast<std::size_t>(j)] = has_diag;
        col_ptr[static_cast<std::size_t>(j) + 1] =
            static_cast<Index>(values.size());
    }

    // Row-major view of A with back-pointers into its CSC value order.
    std::vector<std::vector<std::pair<Index, Index>>> a_rows(
        static_cast<std::size_t>(m_));
    for (Index c = 0; c < a.cols(); ++c)
        for (Index p = a.colPtr()[c]; p < a.colPtr()[c + 1]; ++p)
            a_rows[static_cast<std::size_t>(a.rowIdx()[p])].emplace_back(
                c, p);

    // (1,2)/(2,2) block columns: A row i above a -1/rho_i diagonal.
    for (Index i = 0; i < m_; ++i) {
        RSQP_ASSERT(rho_vec[static_cast<std::size_t>(i)] > 0.0,
                    "rho must be positive");
        for (const auto& [c, csc_pos] : a_rows[static_cast<std::size_t>(i)]) {
            aSlots_[static_cast<std::size_t>(csc_pos)] =
                static_cast<Index>(values.size());
            row_idx.push_back(c);
            values.push_back(a.values()[csc_pos]);
        }
        rhoSlots_[static_cast<std::size_t>(i)] =
            static_cast<Index>(values.size());
        row_idx.push_back(n_ + i);
        values.push_back(-1.0 / rho_vec[static_cast<std::size_t>(i)]);
        col_ptr[static_cast<std::size_t>(n_ + i) + 1] =
            static_cast<Index>(values.size());
    }

    kkt_ = CscMatrix::fromRaw(dim, dim, std::move(col_ptr),
                              std::move(row_idx), std::move(values));
}

void
KktAssembler::updateRho(const Vector& rho_vec)
{
    RSQP_ASSERT(static_cast<Index>(rho_vec.size()) == m_,
                "rho vector length must be m");
    auto& values = kkt_.values();
    for (Index i = 0; i < m_; ++i) {
        RSQP_ASSERT(rho_vec[static_cast<std::size_t>(i)] > 0.0,
                    "rho must be positive");
        values[static_cast<std::size_t>(
            rhoSlots_[static_cast<std::size_t>(i)])] =
            -1.0 / rho_vec[static_cast<std::size_t>(i)];
    }
}

void
KktAssembler::updateMatrices(const std::vector<Real>& p_values,
                             const std::vector<Real>& a_values)
{
    RSQP_ASSERT(p_values.size() == pSlots_.size(), "P value count");
    RSQP_ASSERT(a_values.size() == aSlots_.size(), "A value count");
    auto& values = kkt_.values();
    for (std::size_t p = 0; p < p_values.size(); ++p)
        values[static_cast<std::size_t>(pSlots_[p])] = p_values[p];
    // Re-apply sigma to every diagonal slot that P contributes to (the
    // slots were just overwritten above when P has an explicit diagonal).
    for (Index j = 0; j < n_; ++j) {
        const auto slot =
            static_cast<std::size_t>(sigmaSlots_[static_cast<std::size_t>(j)]);
        if (pHasDiag_[static_cast<std::size_t>(j)])
            values[slot] += sigma_;
        else
            values[slot] = sigma_;
    }
    for (std::size_t p = 0; p < a_values.size(); ++p)
        values[static_cast<std::size_t>(aSlots_[p])] = a_values[p];
}

ReducedKktOperator::ReducedKktOperator(const CscMatrix& p_upper,
                                       const CscMatrix& a, Real sigma,
                                       Vector rho_vec)
    : pUpper_(&p_upper), a_(&a), sigma_(sigma), rhoVec_(std::move(rho_vec))
{
    RSQP_ASSERT(p_upper.rows() == p_upper.cols(), "P must be square");
    RSQP_ASSERT(a.cols() == p_upper.cols(), "A/P dimension mismatch");
    RSQP_ASSERT(static_cast<Index>(rhoVec_.size()) == a.rows(),
                "rho vector length must be m");
    buildPFull();
    buildAMirror();
    rebuildDiagonalBase();
    rebuildDiagonal();
}

void
ReducedKktOperator::buildPFull()
{
    const Index n = pUpper_->cols();
    const auto& col_ptr = pUpper_->colPtr();
    const auto& row_idx = pUpper_->rowIdx();
    const auto& values = pUpper_->values();
    const std::size_t nnz_upper = values.size();

    pRowPtr_.assign(static_cast<std::size_t>(n) + 1, 0);
    // Full-matrix row lengths: every upper entry (r, c) lands in row r
    // and, off the diagonal, its transpose image lands in row c.
    for (Index c = 0; c < n; ++c) {
        for (Index p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
            const Index r = row_idx[p];
            RSQP_ASSERT(r <= c, "P must be upper-triangular storage");
            ++pRowPtr_[static_cast<std::size_t>(r) + 1];
            if (r != c)
                ++pRowPtr_[static_cast<std::size_t>(c) + 1];
        }
    }
    for (Index r = 0; r < n; ++r)
        pRowPtr_[static_cast<std::size_t>(r) + 1] +=
            pRowPtr_[static_cast<std::size_t>(r)];

    const auto nnz_full =
        static_cast<std::size_t>(pRowPtr_[static_cast<std::size_t>(n)]);
    pColIdx_.resize(nnz_full);
    pVals_.resize(nnz_full);
    pDirectSlot_.resize(nnz_upper);
    pMirrorSlot_.resize(nnz_upper);

    std::vector<Index> cursor(pRowPtr_.begin(), pRowPtr_.end() - 1);
    // The ascending-column scan (rows ascending within each column)
    // emits every full row already sorted: row i collects its
    // transpose images (columns < i) while column i streams past,
    // then its diagonal, then its direct entries (columns > i) from
    // the later columns. The sorted row order is what the striped
    // row-gather kernel reduces over — fixed per row, so the apply is
    // bitwise-deterministic at any thread count and ISA level.
    for (Index c = 0; c < n; ++c) {
        for (Index p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
            const Index r = row_idx[p];
            const Real v = values[p];
            const Index slot = cursor[static_cast<std::size_t>(r)]++;
            pColIdx_[static_cast<std::size_t>(slot)] = c;
            pVals_[static_cast<std::size_t>(slot)] = v;
            pDirectSlot_[static_cast<std::size_t>(p)] = slot;
            if (r != c) {
                const Index mirror =
                    cursor[static_cast<std::size_t>(c)]++;
                pColIdx_[static_cast<std::size_t>(mirror)] = r;
                pVals_[static_cast<std::size_t>(mirror)] = v;
                pMirrorSlot_[static_cast<std::size_t>(p)] = mirror;
            } else {
                pMirrorSlot_[static_cast<std::size_t>(p)] = -1;
            }
        }
    }
}

void
ReducedKktOperator::buildAMirror()
{
    const Index m = a_->rows();
    const auto& col_ptr = a_->colPtr();
    const auto& row_idx = a_->rowIdx();
    const auto& values = a_->values();
    const std::size_t nnz = values.size();

    aRowPtr_.assign(static_cast<std::size_t>(m) + 1, 0);
    for (Index r : row_idx)
        ++aRowPtr_[static_cast<std::size_t>(r) + 1];
    for (Index r = 0; r < m; ++r)
        aRowPtr_[static_cast<std::size_t>(r) + 1] +=
            aRowPtr_[static_cast<std::size_t>(r)];

    aColIdx_.resize(nnz);
    aVals_.resize(nnz);
    aSlotFromCsc_.resize(nnz);
    aSqCsr_.resize(nnz);

    std::vector<Index> cursor(aRowPtr_.begin(), aRowPtr_.end() - 1);
    for (Index c = 0; c < a_->cols(); ++c) {
        for (Index p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
            const Index r = row_idx[p];
            const Real v = values[static_cast<std::size_t>(p)];
            const Index slot = cursor[static_cast<std::size_t>(r)]++;
            aColIdx_[static_cast<std::size_t>(slot)] = c;
            aVals_[static_cast<std::size_t>(slot)] = v;
            aSqCsr_[static_cast<std::size_t>(slot)] = v * v;
            aSlotFromCsc_[static_cast<std::size_t>(p)] = slot;
        }
    }
}

void
ReducedKktOperator::rebuildDiagonalBase()
{
    const Index n = pUpper_->cols();
    diagBase_ = pUpper_->diagonalVector();
    for (Index j = 0; j < n; ++j)
        diagBase_[static_cast<std::size_t>(j)] += sigma_;
}

void
ReducedKktOperator::rebuildDiagonal()
{
    const Index m = a_->rows();
    diag_ = diagBase_;
    // diag(A' diag(rho) A)_j = sum_i rho_i * A_ij^2, scattered from the
    // CSR mirror so rho is read once per row and no row indices are
    // re-gathered: O(nnz(A)) on every rho change.
    for (Index r = 0; r < m; ++r) {
        const Real w = rhoVec_[static_cast<std::size_t>(r)];
        for (Index p = aRowPtr_[static_cast<std::size_t>(r)];
             p < aRowPtr_[static_cast<std::size_t>(r) + 1]; ++p)
            diag_[static_cast<std::size_t>(
                aColIdx_[static_cast<std::size_t>(p)])] +=
                w * aSqCsr_[static_cast<std::size_t>(p)];
    }
}

void
ReducedKktOperator::apply(const Vector& x, Vector& y) const
{
    TELEMETRY_SPAN("kkt.apply");
    const Index n = pUpper_->cols();
    const Index m = a_->rows();
    RSQP_ASSERT(static_cast<Index>(x.size()) == n, "apply: x size");
    y.resize(static_cast<std::size_t>(n));
    scratchM_.resize(static_cast<std::size_t>(m));

    const simd::VectorKernels& k = simd::activeKernels();
    {
        // w = diag(rho) A x — rho folded into the row gather, no
        // separate length-m sweep.
        ProfileScope profile(ProfilePhase::SpmvA);
        parallelForRange(m, [&](Index rb, Index re) {
            for (Index r = rb; r < re; ++r) {
                const Index begin = aRowPtr_[static_cast<std::size_t>(r)];
                const Index nnz =
                    aRowPtr_[static_cast<std::size_t>(r) + 1] - begin;
                scratchM_[static_cast<std::size_t>(r)] =
                    rhoVec_[static_cast<std::size_t>(r)] *
                    k.csrRowGather(aVals_.data() + begin,
                                   aColIdx_.data() + begin, nnz, x.data());
            }
        });
    }
    {
        // y = (P + sigma I) x on the full symmetric CSR image.
        ProfileScope profile(ProfilePhase::SpmvP);
        parallelForRange(n, [&](Index rb, Index re) {
            for (Index r = rb; r < re; ++r) {
                const Index begin = pRowPtr_[static_cast<std::size_t>(r)];
                const Index nnz =
                    pRowPtr_[static_cast<std::size_t>(r) + 1] - begin;
                y[static_cast<std::size_t>(r)] =
                    k.csrRowGather(pVals_.data() + begin,
                                   pColIdx_.data() + begin, nnz,
                                   x.data()) +
                    sigma_ * x[static_cast<std::size_t>(r)];
            }
        });
    }
    {
        // y += A' w. A CSR row of A' is a CSC column of A, so the
        // gather reads A's original arrays — no transpose mirror.
        ProfileScope profile(ProfilePhase::SpmvAt);
        const auto& col_ptr = a_->colPtr();
        const auto& row_idx = a_->rowIdx();
        const auto& values = a_->values();
        parallelForRange(n, [&](Index cb, Index ce) {
            for (Index c = cb; c < ce; ++c) {
                const Index begin = col_ptr[c];
                y[static_cast<std::size_t>(c)] +=
                    k.csrRowGather(values.data() + begin,
                                   row_idx.data() + begin,
                                   col_ptr[c + 1] - begin,
                                   scratchM_.data());
            }
        });
    }
}

void
ReducedKktOperator::applyA(const Vector& x, Vector& z) const
{
    const Index m = a_->rows();
    RSQP_ASSERT(static_cast<Index>(x.size()) == a_->cols(),
                "applyA: x size");
    z.resize(static_cast<std::size_t>(m));
    ProfileScope profile(ProfilePhase::SpmvA);
    const simd::VectorKernels& k = simd::activeKernels();
    parallelForRange(m, [&](Index rb, Index re) {
        for (Index r = rb; r < re; ++r) {
            const Index begin = aRowPtr_[static_cast<std::size_t>(r)];
            z[static_cast<std::size_t>(r)] =
                k.csrRowGather(aVals_.data() + begin,
                               aColIdx_.data() + begin,
                               aRowPtr_[static_cast<std::size_t>(r) + 1] -
                                   begin,
                               x.data());
        }
    });
}

void
ReducedKktOperator::accumulateAtRho(const Vector& x, Vector& y) const
{
    const Index n = a_->cols();
    RSQP_ASSERT(static_cast<Index>(x.size()) == a_->rows(),
                "accumulateAtRho: x size");
    RSQP_ASSERT(static_cast<Index>(y.size()) == n,
                "accumulateAtRho: y size");
    ProfileScope profile(ProfilePhase::SpmvAt);
    const auto& col_ptr = a_->colPtr();
    const auto& row_idx = a_->rowIdx();
    const auto& values = a_->values();
    // Precompute w = rho .* x so each column reduces to a pure gather;
    // the products values[p] * w[r] match the former fused form exactly.
    const Index m = a_->rows();
    scratchM_.resize(static_cast<std::size_t>(m));
    for (Index r = 0; r < m; ++r)
        scratchM_[static_cast<std::size_t>(r)] =
            rhoVec_[static_cast<std::size_t>(r)] *
            x[static_cast<std::size_t>(r)];
    const simd::VectorKernels& k = simd::activeKernels();
    parallelForRange(n, [&](Index cb, Index ce) {
        for (Index c = cb; c < ce; ++c) {
            const Index begin = col_ptr[c];
            y[static_cast<std::size_t>(c)] +=
                k.csrRowGather(values.data() + begin,
                               row_idx.data() + begin,
                               col_ptr[c + 1] - begin, scratchM_.data());
        }
    });
}

void
ReducedKktOperator::setRho(const Vector& rho_vec)
{
    RSQP_ASSERT(rho_vec.size() == rhoVec_.size(), "rho length change");
    rhoVec_ = rho_vec;  // copy-assign: reuses the existing capacity
    rebuildDiagonal();
    if (fp32Enabled_)
        refreshFp32Rho();
}

void
ReducedKktOperator::refreshValues()
{
    const auto& p_values = pUpper_->values();
    RSQP_ASSERT(p_values.size() == pDirectSlot_.size(),
                "refreshValues: P sparsity changed");
    for (std::size_t p = 0; p < p_values.size(); ++p) {
        const Real v = p_values[p];
        pVals_[static_cast<std::size_t>(pDirectSlot_[p])] = v;
        const Index mirror = pMirrorSlot_[p];
        if (mirror >= 0)
            pVals_[static_cast<std::size_t>(mirror)] = v;
    }

    const auto& a_values = a_->values();
    RSQP_ASSERT(a_values.size() == aSlotFromCsc_.size(),
                "refreshValues: A sparsity changed");
    for (std::size_t p = 0; p < a_values.size(); ++p) {
        const Real v = a_values[p];
        const auto slot =
            static_cast<std::size_t>(aSlotFromCsc_[p]);
        aVals_[slot] = v;
        aSqCsr_[slot] = v * v;
    }

    rebuildDiagonalBase();
    rebuildDiagonal();
    if (fp32Enabled_)
        refreshFp32Values();
}

void
ReducedKktOperator::enableFp32Mirror()
{
    fp32Enabled_ = true;
    refreshFp32Values();
    refreshFp32Rho();
    scratchM32_.resize(static_cast<std::size_t>(a_->rows()));
}

void
ReducedKktOperator::refreshFp32Values()
{
    pVals32_.resize(pVals_.size());
    for (std::size_t p = 0; p < pVals_.size(); ++p)
        pVals32_[p] = static_cast<float>(pVals_[p]);
    aVals32_.resize(aVals_.size());
    for (std::size_t p = 0; p < aVals_.size(); ++p)
        aVals32_[p] = static_cast<float>(aVals_[p]);
    const auto& a_csc = a_->values();
    aCscVals32_.resize(a_csc.size());
    for (std::size_t p = 0; p < a_csc.size(); ++p)
        aCscVals32_[p] = static_cast<float>(a_csc[p]);
}

void
ReducedKktOperator::refreshFp32Rho()
{
    rho32_.resize(rhoVec_.size());
    for (std::size_t i = 0; i < rhoVec_.size(); ++i)
        rho32_[i] = static_cast<float>(rhoVec_[i]);
}

void
ReducedKktOperator::applyFp32(const FloatVector& x, FloatVector& y) const
{
    RSQP_ASSERT(fp32Enabled_, "applyFp32 without enableFp32Mirror");
    const Index n = pUpper_->cols();
    const Index m = a_->rows();
    RSQP_ASSERT(static_cast<Index>(x.size()) == n, "applyFp32: x size");
    y.resize(static_cast<std::size_t>(n));
    scratchM32_.resize(static_cast<std::size_t>(m));
    const auto sigma32 = static_cast<float>(sigma_);

    const simd::VectorKernels& k = simd::activeKernels();
    {
        ProfileScope profile(ProfilePhase::SpmvA);
        parallelForRange(m, [&](Index rb, Index re) {
            for (Index r = rb; r < re; ++r) {
                const Index begin = aRowPtr_[static_cast<std::size_t>(r)];
                const Index nnz =
                    aRowPtr_[static_cast<std::size_t>(r) + 1] - begin;
                scratchM32_[static_cast<std::size_t>(r)] =
                    rho32_[static_cast<std::size_t>(r)] *
                    k.csrRowGatherF32(aVals32_.data() + begin,
                                      aColIdx_.data() + begin, nnz,
                                      x.data());
            }
        });
    }
    {
        ProfileScope profile(ProfilePhase::SpmvP);
        parallelForRange(n, [&](Index rb, Index re) {
            for (Index r = rb; r < re; ++r) {
                const Index begin = pRowPtr_[static_cast<std::size_t>(r)];
                const Index nnz =
                    pRowPtr_[static_cast<std::size_t>(r) + 1] - begin;
                y[static_cast<std::size_t>(r)] =
                    k.csrRowGatherF32(pVals32_.data() + begin,
                                      pColIdx_.data() + begin, nnz,
                                      x.data()) +
                    sigma32 * x[static_cast<std::size_t>(r)];
            }
        });
    }
    {
        ProfileScope profile(ProfilePhase::SpmvAt);
        const auto& col_ptr = a_->colPtr();
        const auto& row_idx = a_->rowIdx();
        parallelForRange(n, [&](Index cb, Index ce) {
            for (Index c = cb; c < ce; ++c) {
                const Index begin = col_ptr[c];
                y[static_cast<std::size_t>(c)] +=
                    k.csrRowGatherF32(aCscVals32_.data() + begin,
                                      row_idx.data() + begin,
                                      col_ptr[c + 1] - begin,
                                      scratchM32_.data());
            }
        });
    }
}

} // namespace rsqp
