/**
 * @file
 * Shared body of the SIMD vector kernels, included by each ISA
 * translation unit (simd_kernels_scalar.cpp / _avx2.cpp / _avx512.cpp)
 * after it defines the 8-lane pack types:
 *
 *   PackD — 8 fp64 lanes:  zero, load, store, broadcast, add, sub,
 *           mul, abs, maxAcc(acc, val) (lane = val > acc ? val : acc,
 *           NaN val keeps acc), anyNonFinite, gather(base, idx),
 *           loadF32 (8 floats widened), fromPackF, reduceAdd,
 *           reduceMax — the reductions use the canonical
 *           pairwise-halving tree (lanes i and i+4, then i and i+2,
 *           then the final pair).
 *   PackF — 8 fp32 lanes:  zero, load, store, broadcast, add, sub,
 *           mul, gather(base, idx), reduceAdd (same halving tree).
 *
 * Every kernel follows the same canonical shape: an 8-lane striped
 * main loop (lane j accumulates elements j, j+8, ...), one tree
 * reduction, then an in-order scalar tail for the final n % 8
 * elements. No FMA anywhere (the TUs compile with -ffp-contract=off),
 * so any two pack implementations with IEEE add/mul lanes produce
 * bitwise-identical results. For n < 8 the main loop is empty and the
 * tail reproduces the retired serial loops bit for bit.
 */

inline Real
dotRangeImpl(const Real* x, const Real* y, Index n)
{
    PackD acc = PackD::zero();
    Index i = 0;
    for (; i + 8 <= n; i += 8)
        acc = PackD::add(acc,
                         PackD::mul(PackD::load(x + i), PackD::load(y + i)));
    Real total = PackD::reduceAdd(acc);
    for (; i < n; ++i)
        total += x[i] * y[i];
    return total;
}

inline Real
axpyDotRangeImpl(Real alpha, const Real* x, Real* y, const Real* z,
                 Index n)
{
    const PackD av = PackD::broadcast(alpha);
    PackD acc = PackD::zero();
    Index i = 0;
    for (; i + 8 <= n; i += 8) {
        // Store before touching z: z may alias y, in which case the
        // dot must read the updated values (the composed axpy + dot
        // contract).
        const PackD yv =
            PackD::add(PackD::load(y + i), PackD::mul(av, PackD::load(x + i)));
        PackD::store(y + i, yv);
        acc = PackD::add(acc, PackD::mul(yv, PackD::load(z + i)));
    }
    Real total = PackD::reduceAdd(acc);
    for (; i < n; ++i) {
        y[i] += alpha * x[i];
        total += y[i] * z[i];
    }
    return total;
}

inline Real
xMinusAlphaPDotRangeImpl(Real alpha, const Real* p, Real* x,
                         const Real* kp, Real* r, Index n)
{
    const PackD av = PackD::broadcast(alpha);
    PackD acc = PackD::zero();
    Index i = 0;
    for (; i + 8 <= n; i += 8) {
        const PackD xv =
            PackD::add(PackD::load(x + i), PackD::mul(av, PackD::load(p + i)));
        PackD::store(x + i, xv);
        const PackD rv = PackD::sub(PackD::load(r + i),
                                    PackD::mul(av, PackD::load(kp + i)));
        PackD::store(r + i, rv);
        acc = PackD::add(acc, PackD::mul(rv, rv));
    }
    Real total = PackD::reduceAdd(acc);
    for (; i < n; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * kp[i];
        total += r[i] * r[i];
    }
    return total;
}

inline Real
precondApplyDotRangeImpl(const Real* inv_diag, const Real* r, Real* d,
                         Index n)
{
    PackD acc = PackD::zero();
    Index i = 0;
    for (; i + 8 <= n; i += 8) {
        const PackD rv = PackD::load(r + i);
        const PackD dv = PackD::mul(PackD::load(inv_diag + i), rv);
        PackD::store(d + i, dv);
        acc = PackD::add(acc, PackD::mul(rv, dv));
    }
    Real total = PackD::reduceAdd(acc);
    for (; i < n; ++i) {
        d[i] = inv_diag[i] * r[i];
        total += r[i] * d[i];
    }
    return total;
}

inline Real
normInfRangeImpl(const Real* x, Index n)
{
    PackD acc = PackD::zero();
    Index i = 0;
    for (; i + 8 <= n; i += 8)
        acc = PackD::maxAcc(acc, PackD::abs(PackD::load(x + i)));
    Real best = PackD::reduceMax(acc);
    for (; i < n; ++i) {
        // (v > best ? v : best) == std::max(best, |x[i]|): a NaN
        // element is dropped, matching the SIMD maxAcc lanes.
        const Real v = std::abs(x[i]);
        best = v > best ? v : best;
    }
    return best;
}

inline Real
normInfDiffRangeImpl(const Real* x, const Real* y, Index n)
{
    PackD acc = PackD::zero();
    Index i = 0;
    for (; i + 8 <= n; i += 8)
        acc = PackD::maxAcc(
            acc, PackD::abs(PackD::sub(PackD::load(x + i), PackD::load(y + i))));
    Real best = PackD::reduceMax(acc);
    for (; i < n; ++i) {
        const Real v = std::abs(x[i] - y[i]);
        best = v > best ? v : best;
    }
    return best;
}

inline bool
hasNonFiniteRangeImpl(const Real* x, Index n)
{
    Index i = 0;
    for (; i + 8 <= n; i += 8)
        if (PackD::anyNonFinite(PackD::load(x + i)))
            return true;
    for (; i < n; ++i)
        if (!std::isfinite(x[i]))
            return true;
    return false;
}

inline Real
csrRowGatherImpl(const Real* vals, const Index* cols, Index nnz,
                 const Real* x)
{
    PackD acc = PackD::zero();
    Index i = 0;
    for (; i + 8 <= nnz; i += 8)
        acc = PackD::add(
            acc, PackD::mul(PackD::load(vals + i), PackD::gather(x, cols + i)));
    Real total = PackD::reduceAdd(acc);
    for (; i < nnz; ++i)
        total += vals[i] * x[static_cast<std::size_t>(cols[i])];
    return total;
}

inline Real
dotRangeF32Impl(const float* x, const float* y, Index n)
{
    PackD acc = PackD::zero();
    Index i = 0;
    for (; i + 8 <= n; i += 8)
        acc = PackD::add(
            acc, PackD::mul(PackD::loadF32(x + i), PackD::loadF32(y + i)));
    Real total = PackD::reduceAdd(acc);
    for (; i < n; ++i)
        total += static_cast<Real>(x[i]) * static_cast<Real>(y[i]);
    return total;
}

inline Real
xMinusAlphaPDotRangeF32Impl(float alpha, const float* p, float* x,
                            const float* kp, float* r, Index n)
{
    const PackF av = PackF::broadcast(alpha);
    PackD acc = PackD::zero();
    Index i = 0;
    for (; i + 8 <= n; i += 8) {
        const PackF xv =
            PackF::add(PackF::load(x + i), PackF::mul(av, PackF::load(p + i)));
        PackF::store(x + i, xv);
        const PackF rv = PackF::sub(PackF::load(r + i),
                                    PackF::mul(av, PackF::load(kp + i)));
        PackF::store(r + i, rv);
        const PackD rd = PackD::fromPackF(rv);
        acc = PackD::add(acc, PackD::mul(rd, rd));
    }
    Real total = PackD::reduceAdd(acc);
    for (; i < n; ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * kp[i];
        const Real rv = static_cast<Real>(r[i]);
        total += rv * rv;
    }
    return total;
}

inline Real
precondApplyDotRangeF32Impl(const float* inv_diag, const float* r,
                            float* d, Index n)
{
    PackD acc = PackD::zero();
    Index i = 0;
    for (; i + 8 <= n; i += 8) {
        const PackF rv = PackF::load(r + i);
        const PackF dv = PackF::mul(PackF::load(inv_diag + i), rv);
        PackF::store(d + i, dv);
        acc = PackD::add(
            acc, PackD::mul(PackD::fromPackF(rv), PackD::fromPackF(dv)));
    }
    Real total = PackD::reduceAdd(acc);
    for (; i < n; ++i) {
        d[i] = inv_diag[i] * r[i];
        total += static_cast<Real>(r[i]) * static_cast<Real>(d[i]);
    }
    return total;
}

inline void
axpbyRangeF32Impl(float alpha, const float* x, float beta, const float* y,
                  float* out, Index n)
{
    const PackF av = PackF::broadcast(alpha);
    const PackF bv = PackF::broadcast(beta);
    Index i = 0;
    for (; i + 8 <= n; i += 8) {
        const PackF v = PackF::add(PackF::mul(av, PackF::load(x + i)),
                                   PackF::mul(bv, PackF::load(y + i)));
        PackF::store(out + i, v);
    }
    for (; i < n; ++i)
        out[i] = alpha * x[i] + beta * y[i];
}

inline float
csrRowGatherF32Impl(const float* vals, const Index* cols, Index nnz,
                    const float* x)
{
    PackF acc = PackF::zero();
    Index i = 0;
    for (; i + 8 <= nnz; i += 8)
        acc = PackF::add(
            acc, PackF::mul(PackF::load(vals + i), PackF::gather(x, cols + i)));
    float total = PackF::reduceAdd(acc);
    for (; i < nnz; ++i)
        total += vals[i] * x[static_cast<std::size_t>(cols[i])];
    return total;
}

inline VectorKernels
makeKernelTable(IsaLevel level, const char* name)
{
    VectorKernels k;
    k.level = level;
    k.name = name;
    k.dotRange = &dotRangeImpl;
    k.axpyDotRange = &axpyDotRangeImpl;
    k.xMinusAlphaPDotRange = &xMinusAlphaPDotRangeImpl;
    k.precondApplyDotRange = &precondApplyDotRangeImpl;
    k.normInfRange = &normInfRangeImpl;
    k.normInfDiffRange = &normInfDiffRangeImpl;
    k.hasNonFiniteRange = &hasNonFiniteRangeImpl;
    k.csrRowGather = &csrRowGatherImpl;
    k.dotRangeF32 = &dotRangeF32Impl;
    k.xMinusAlphaPDotRangeF32 = &xMinusAlphaPDotRangeF32Impl;
    k.precondApplyDotRangeF32 = &precondApplyDotRangeF32Impl;
    k.axpbyRangeF32 = &axpbyRangeF32Impl;
    k.csrRowGatherF32 = &csrRowGatherF32Impl;
    return k;
}
