#include "io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"

namespace rsqp
{

void
writeMatrixMarket(std::ostream& os, const CscMatrix& matrix,
                  bool symmetric_upper)
{
    os << "%%MatrixMarket matrix coordinate real "
       << (symmetric_upper ? "symmetric" : "general") << "\n";
    os << matrix.rows() << " " << matrix.cols() << " " << matrix.nnz()
       << "\n";
    os.precision(17);
    for (Index c = 0; c < matrix.cols(); ++c) {
        for (Index p = matrix.colPtr()[c]; p < matrix.colPtr()[c + 1];
             ++p) {
            Index r = matrix.rowIdx()[p];
            Index cc = c;
            // MatrixMarket symmetric stores the LOWER triangle.
            if (symmetric_upper)
                std::swap(r, cc);
            os << (r + 1) << " " << (cc + 1) << " " << matrix.values()[p]
               << "\n";
        }
    }
}

CscMatrix
readMatrixMarket(std::istream& is)
{
    std::string line;
    if (!std::getline(is, line))
        RSQP_FATAL("MatrixMarket: empty input");
    bool symmetric = false;
    {
        std::istringstream header(line);
        std::string banner, object, format, field, symmetry;
        header >> banner >> object >> format >> field >> symmetry;
        if (banner != "%%MatrixMarket" || object != "matrix" ||
            format != "coordinate")
            RSQP_FATAL("MatrixMarket: unsupported header '", line, "'");
        if (field != "real" && field != "integer")
            RSQP_FATAL("MatrixMarket: unsupported field '", field, "'");
        if (symmetry == "symmetric")
            symmetric = true;
        else if (symmetry != "general")
            RSQP_FATAL("MatrixMarket: unsupported symmetry '", symmetry,
                       "'");
    }
    // Skip comments.
    while (std::getline(is, line))
        if (!line.empty() && line[0] != '%')
            break;
    Index rows = 0, cols = 0;
    Count nnz = 0;
    {
        std::istringstream sizes(line);
        if (!(sizes >> rows >> cols >> nnz))
            RSQP_FATAL("MatrixMarket: bad size line '", line, "'");
    }

    TripletList triplets(rows, cols);
    triplets.reserve(static_cast<std::size_t>(nnz));
    for (Count k = 0; k < nnz; ++k) {
        Index r = 0, c = 0;
        Real v = 0.0;
        if (!(is >> r >> c >> v))
            RSQP_FATAL("MatrixMarket: truncated data at entry ", k);
        --r;
        --c;
        if (symmetric) {
            // Symmetric files store the lower triangle; return upper.
            if (r < c)
                RSQP_FATAL("MatrixMarket: symmetric file with entry "
                           "above the diagonal");
            triplets.add(c, r, v);
        } else {
            triplets.add(r, c, v);
        }
    }
    return CscMatrix::fromTriplets(triplets);
}

} // namespace rsqp
