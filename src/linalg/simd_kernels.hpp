/**
 * @file
 * Runtime-dispatched SIMD kernel table for the PCG hot path.
 *
 * Three implementations of every range kernel ship in the binary —
 * portable scalar, AVX2 and AVX-512 — compiled in separate translation
 * units with matching target flags and selected once at startup from
 * the CPU features (arch/cpu_features.hpp). All three compute the
 * **identical canonical arithmetic**: 8-lane-striped accumulation
 * (lane j sums elements j, j+8, j+16, ...), a fixed pairwise-halving
 * combine tree, in-order scalar tails for the final n % 8 elements,
 * and no FMA contraction anywhere (-ffp-contract=off on every kernel
 * TU). Results are therefore bitwise-identical across ISA levels, not
 * merely across thread counts — the dispatch decision can never change
 * an iterate. The contract the rest of the solver documents remains
 * the weaker one (bitwise per ISA level, tolerance across levels) so a
 * future ISA whose lane arithmetic cannot match — e.g. an FMA
 * datapath — does not break the API promise.
 *
 * Dispatch: activeKernels() resolves the table once (highest level
 * supported by both the CPU and the build, narrowed by the
 * RSQP_FORCE_ISA=scalar|avx2|avx512 environment variable) and caches
 * it in an atomic; the hot path pays one relaxed atomic load per
 * kernel batch and zero allocations. Tests and benchmarks can switch
 * levels in-process with forceIsaLevel().
 */

#ifndef RSQP_LINALG_SIMD_KERNELS_HPP
#define RSQP_LINALG_SIMD_KERNELS_HPP

#include "arch/cpu_features.hpp"
#include "common/types.hpp"

namespace rsqp::simd
{

/**
 * Function table of the vectorized range kernels. Raw-pointer + length
 * signatures so the chunked reduction driver can hand each fixed-grain
 * chunk straight to the active ISA without a virtual call.
 *
 * The fp64 entries mirror the fused kernels of linalg/vector_ops; the
 * F32 entries are the fp32-storage / fp64-accumulate variants of the
 * mixed-precision PCG mode (elementwise math in fp32, every dot
 * product accumulated in fp64).
 */
struct VectorKernels
{
    IsaLevel level = IsaLevel::Scalar;
    const char* name = "scalar";

    /** sum x[i] * y[i]. */
    Real (*dotRange)(const Real* x, const Real* y, Index n);
    /** y += alpha x; returns sum y[i] * z[i] (z may alias y). */
    Real (*axpyDotRange)(Real alpha, const Real* x, Real* y,
                         const Real* z, Index n);
    /** x += alpha p, r -= alpha kp; returns sum r[i]^2. */
    Real (*xMinusAlphaPDotRange)(Real alpha, const Real* p, Real* x,
                                 const Real* kp, Real* r, Index n);
    /** d = inv_diag .* r; returns sum r[i] * d[i]. */
    Real (*precondApplyDotRange)(const Real* inv_diag, const Real* r,
                                 Real* d, Index n);
    /** max |x[i]| with the NaN-dropping max semantics of std::max. */
    Real (*normInfRange)(const Real* x, Index n);
    /** max |x[i] - y[i]|, same NaN semantics. */
    Real (*normInfDiffRange)(const Real* x, const Real* y, Index n);
    /** Any NaN/Inf element? */
    bool (*hasNonFiniteRange)(const Real* x, Index n);
    /** sum vals[p] * x[cols[p]] — one CSR row of a gather SpMV. */
    Real (*csrRowGather)(const Real* vals, const Index* cols, Index nnz,
                         const Real* x);

    /** fp64-accumulated sum x[i] * y[i] over fp32 storage. */
    Real (*dotRangeF32)(const float* x, const float* y, Index n);
    /** fp32 x += alpha p, r -= alpha kp; fp64-accumulated sum r[i]^2. */
    Real (*xMinusAlphaPDotRangeF32)(float alpha, const float* p,
                                    float* x, const float* kp, float* r,
                                    Index n);
    /** fp32 d = inv_diag .* r; fp64-accumulated sum r[i] * d[i]. */
    Real (*precondApplyDotRangeF32)(const float* inv_diag,
                                    const float* r, float* d, Index n);
    /** fp32 out = alpha x + beta y (out may alias x or y). */
    void (*axpbyRangeF32)(float alpha, const float* x, float beta,
                          const float* y, float* out, Index n);
    /** fp32 CSR row gather: sum vals[p] * x[cols[p]] in fp32. */
    float (*csrRowGatherF32)(const float* vals, const Index* cols,
                             Index nnz, const float* x);
};

/**
 * Kernel table for one ISA level. Requesting a level above what the
 * CPU or the build supports returns the highest available table
 * instead (callers iterate supportedIsaLevels() to avoid the clamp).
 */
const VectorKernels& kernelsFor(IsaLevel level);

/**
 * The table the hot path dispatches through. First call resolves
 * min(detected, compiled) narrowed by RSQP_FORCE_ISA and publishes the
 * rsqp_build_isa_level telemetry gauge; later calls are one atomic
 * load.
 */
const VectorKernels& activeKernels();

/** ISA level of activeKernels(). */
IsaLevel activeIsaLevel();

/**
 * Narrow (or restore) the active table in-process — the programmatic
 * twin of RSQP_FORCE_ISA for tests and benchmarks. The request is
 * clamped to the supported maximum; returns the level actually
 * installed. Not thread-safe against concurrent solves: switch levels
 * only between solves, as a test harness does.
 */
IsaLevel forceIsaLevel(IsaLevel level);

/** Drop any forceIsaLevel() override and re-apply env + detection. */
void resetIsaLevel();

} // namespace rsqp::simd

#endif // RSQP_LINALG_SIMD_KERNELS_HPP
