/**
 * @file
 * Compressed Sparse Column matrix — the canonical sparse container of
 * the solver side of RSQP (mirrors OSQP's internal `csc` type).
 */

#ifndef RSQP_LINALG_CSC_HPP
#define RSQP_LINALG_CSC_HPP

#include <vector>

#include "common/types.hpp"
#include "linalg/triplet.hpp"

namespace rsqp
{

/**
 * Immutable-structure CSC sparse matrix.
 *
 * The sparsity structure (column pointers / row indices) is fixed after
 * construction; numeric values may be updated in place, which is exactly
 * the "same structure, different parameters" reuse model that amortizes
 * RSQP's hardware generation cost.
 */
class CscMatrix
{
  public:
    /** Empty 0x0 matrix. */
    CscMatrix() = default;

    /** All-zero matrix of the given shape. */
    CscMatrix(Index rows, Index cols);

    /** Compress a triplet list; duplicate entries are summed. */
    static CscMatrix fromTriplets(const TripletList& triplets);

    /** Build directly from raw CSC arrays (validated). */
    static CscMatrix fromRaw(Index rows, Index cols,
                             std::vector<Index> col_ptr,
                             std::vector<Index> row_idx,
                             std::vector<Real> values);

    /**
     * Build from raw arrays with NO validation — deliberately admits
     * broken structure (ragged column pointers, out-of-range rows).
     * Exists so tests and fuzz corpora can construct malformed inputs
     * and prove validateProblem() rejects them; production loaders
     * must use fromRaw.
     */
    static CscMatrix fromRawUnchecked(Index rows, Index cols,
                                      std::vector<Index> col_ptr,
                                      std::vector<Index> row_idx,
                                      std::vector<Real> values);

    /** n x n identity scaled by value. */
    static CscMatrix identity(Index n, Real value = 1.0);

    /** n x n diagonal matrix from a dense vector. */
    static CscMatrix diagonal(const Vector& diag);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }
    Count nnz() const { return static_cast<Count>(values_.size()); }

    const std::vector<Index>& colPtr() const { return colPtr_; }
    const std::vector<Index>& rowIdx() const { return rowIdx_; }
    const std::vector<Real>& values() const { return values_; }

    /** Mutable access to numeric values (structure stays fixed). */
    std::vector<Real>& values() { return values_; }

    /** Value at (row, col); zero if not stored. O(log nnz_col). */
    Real coeff(Index row, Index col) const;

    /** y = A x (y is overwritten). */
    void spmv(const Vector& x, Vector& y) const;

    /** y += alpha * A x. */
    void spmvAccumulate(const Vector& x, Vector& y, Real alpha = 1.0) const;

    /** y = A' x (y is overwritten). */
    void spmvTranspose(const Vector& x, Vector& y) const;

    /** y += alpha * A' x. */
    void spmvTransposeAccumulate(const Vector& x, Vector& y,
                                 Real alpha = 1.0) const;

    /**
     * y = A x for a symmetric matrix stored as its upper triangle
     * (diagonal included). Mirrors OSQP's P storage convention.
     */
    void spmvSymUpper(const Vector& x, Vector& y) const;

    /** Explicit transpose with sorted row indices. */
    CscMatrix transpose() const;

    /** Keep only entries with row <= col (upper triangle). */
    CscMatrix upperTriangular() const;

    /**
     * Expand an upper-triangle symmetric storage into the full
     * (structurally symmetric) matrix.
     */
    CscMatrix symUpperToFull() const;

    /**
     * Symmetric permutation B = A(p, p) of an upper-triangle-stored
     * symmetric matrix; result is again upper-triangle-stored.
     * perm[i] gives the original index placed at position i.
     */
    CscMatrix symUpperPermute(const IndexVector& perm) const;

    /** B = diag(r) * A * diag(c); r has rows() and c cols() entries. */
    CscMatrix scaled(const Vector& row_scale, const Vector& col_scale) const;

    /** In-place A <- diag(r) * A * diag(c). */
    void scaleInPlace(const Vector& row_scale, const Vector& col_scale);

    /** Dense main diagonal (length min(rows, cols)). */
    Vector diagonalVector() const;

    /** Per-column infinity norms. */
    Vector columnInfNorms() const;

    /** Per-row infinity norms. */
    Vector rowInfNorms() const;

    /**
     * Per-column infinity norms of the full symmetric matrix given
     * upper-triangle storage.
     */
    Vector symUpperColumnInfNorms() const;

    /** Number of stored entries in one column. */
    Index colNnz(Index col) const;

    /** Structural validity check (sorted indices, in-range, monotone). */
    bool isValid() const;

    /** True if structure and values are identical. */
    bool operator==(const CscMatrix& other) const;

  private:
    Index rows_ = 0;
    Index cols_ = 0;
    std::vector<Index> colPtr_;  ///< size cols_+1
    std::vector<Index> rowIdx_;  ///< size nnz, sorted within a column
    std::vector<Real> values_;   ///< size nnz
};

} // namespace rsqp

#endif // RSQP_LINALG_CSC_HPP
