/**
 * @file
 * Coordinate-format (COO) builder for sparse matrices.
 *
 * All problem generators assemble matrices as triplet lists and then
 * compress them to CSC/CSR. Duplicate entries are summed during
 * compression, matching the usual FE/optimization assembly convention.
 */

#ifndef RSQP_LINALG_TRIPLET_HPP
#define RSQP_LINALG_TRIPLET_HPP

#include <vector>

#include "common/types.hpp"

namespace rsqp
{

/** One (row, col, value) entry of a matrix under assembly. */
struct Triplet
{
    Index row;
    Index col;
    Real value;
};

/**
 * Mutable COO assembly buffer.
 *
 * Entries may be added in any order; duplicates are summed when the
 * buffer is compressed by CscMatrix::fromTriplets().
 */
class TripletList
{
  public:
    /** Create an empty buffer for a rows x cols matrix. */
    TripletList(Index rows, Index cols);

    /** Add a single entry; indices are bounds-checked. */
    void add(Index row, Index col, Real value);

    /**
     * Add value at (row, col) and, if off-diagonal, also at (col, row).
     * Convenience for assembling symmetric matrices.
     */
    void addSymmetric(Index row, Index col, Real value);

    Index rows() const { return rows_; }
    Index cols() const { return cols_; }

    /** Number of raw (possibly duplicated) entries added. */
    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }

    const std::vector<Triplet>& entries() const { return entries_; }

    /** Reserve storage for n entries. */
    void reserve(std::size_t n) { entries_.reserve(n); }

  private:
    Index rows_;
    Index cols_;
    std::vector<Triplet> entries_;
};

} // namespace rsqp

#endif // RSQP_LINALG_TRIPLET_HPP
