/**
 * @file
 * AVX-512 instantiation of the kernel body: one 512-bit register per
 * 8-lane fp64 pack. The reduction first adds the upper 256-bit half to
 * the lower (lanes i and i+4), then reuses the exact AVX2/scalar
 * halving tree — so the three tables stay bitwise-identical. fp32
 * packs stay 256-bit (8 lanes is the canonical stripe width).
 * Compiled with -mavx512f/dq/vl/bw -ffp-contract=off; built only when
 * the toolchain supports those flags (RSQP_SIMD_BUILD_AVX512).
 */

#include "simd_kernels_tables.hpp"

#if defined(RSQP_SIMD_BUILD_AVX512)

#include <cmath>
#include <immintrin.h>
#include <limits>

// GCC's AVX-512 headers expand _mm512_extractf64x4_pd, _mm512_cvtps_pd
// and friends through _mm512_undefined_pd(), which trips
// -Wuninitialized at every inlined use (GCC PR 105593). The values are
// immediately overwritten by the builtins; suppress the false positive
// for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace rsqp::simd
{

namespace
{

struct PackF;

struct PackD
{
    __m512d v;

    static PackD
    zero()
    {
        return {_mm512_setzero_pd()};
    }

    static PackD
    load(const Real* p)
    {
        return {_mm512_loadu_pd(p)};
    }

    static void
    store(Real* p, PackD a)
    {
        _mm512_storeu_pd(p, a.v);
    }

    static PackD
    broadcast(Real x)
    {
        return {_mm512_set1_pd(x)};
    }

    static PackD
    add(PackD a, PackD b)
    {
        return {_mm512_add_pd(a.v, b.v)};
    }

    static PackD
    sub(PackD a, PackD b)
    {
        return {_mm512_sub_pd(a.v, b.v)};
    }

    static PackD
    mul(PackD a, PackD b)
    {
        return {_mm512_mul_pd(a.v, b.v)};
    }

    static PackD
    abs(PackD a)
    {
        return {_mm512_abs_pd(a.v)};
    }

    /** Lane = val > acc ? val : acc (NaN val keeps acc, like vmaxpd). */
    static PackD
    maxAcc(PackD acc, PackD val)
    {
        return {_mm512_max_pd(val.v, acc.v)};
    }

    static bool
    anyNonFinite(PackD a)
    {
        const __m512d inf =
            _mm512_set1_pd(std::numeric_limits<Real>::infinity());
        return _mm512_cmp_pd_mask(_mm512_abs_pd(a.v), inf,
                                  _CMP_NLT_UQ) != 0;
    }

    static PackD
    gather(const Real* base, const Index* idx)
    {
        const __m256i vi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
        // Masked gather with a zero source: the plain intrinsic
        // expands through _mm512_undefined_pd, which GCC warns about.
        return {_mm512_mask_i32gather_pd(_mm512_setzero_pd(),
                                         static_cast<__mmask8>(0xff),
                                         vi, base, 8)};
    }

    static PackD
    loadF32(const float* p)
    {
        return {_mm512_cvtps_pd(_mm256_loadu_ps(p))};
    }

    static PackD fromPackF(PackF f);

    /** Canonical halving tree: (i, i+4), then (i, i+2), then the pair. */
    static Real
    reduceAdd(PackD a)
    {
        const __m256d m = _mm256_add_pd(_mm512_castpd512_pd256(a.v),
                                        _mm512_extractf64x4_pd(a.v, 1));
        const __m128d q = _mm_add_pd(_mm256_castpd256_pd128(m),
                                     _mm256_extractf128_pd(m, 1));
        return _mm_cvtsd_f64(_mm_add_sd(q, _mm_unpackhi_pd(q, q)));
    }

    static Real
    reduceMax(PackD a)
    {
        const __m256d m = _mm256_max_pd(_mm512_extractf64x4_pd(a.v, 1),
                                        _mm512_castpd512_pd256(a.v));
        const __m128d q = _mm_max_pd(_mm256_extractf128_pd(m, 1),
                                     _mm256_castpd256_pd128(m));
        return _mm_cvtsd_f64(_mm_max_sd(_mm_unpackhi_pd(q, q), q));
    }
};

struct PackF
{
    __m256 v;

    static PackF
    zero()
    {
        return {_mm256_setzero_ps()};
    }

    static PackF
    load(const float* p)
    {
        return {_mm256_loadu_ps(p)};
    }

    static void
    store(float* p, PackF a)
    {
        _mm256_storeu_ps(p, a.v);
    }

    static PackF
    broadcast(float x)
    {
        return {_mm256_set1_ps(x)};
    }

    static PackF
    add(PackF a, PackF b)
    {
        return {_mm256_add_ps(a.v, b.v)};
    }

    static PackF
    sub(PackF a, PackF b)
    {
        return {_mm256_sub_ps(a.v, b.v)};
    }

    static PackF
    mul(PackF a, PackF b)
    {
        return {_mm256_mul_ps(a.v, b.v)};
    }

    static PackF
    gather(const float* base, const Index* idx)
    {
        const __m256i vi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx));
        // VL-masked gather with a zero source (the plain AVX2 gather
        // intrinsic warns under -Wall; see the AVX2 TU).
        return {_mm256_mmask_i32gather_ps(_mm256_setzero_ps(),
                                          static_cast<__mmask8>(0xff),
                                          vi, base, 4)};
    }

    static float
    reduceAdd(PackF a)
    {
        const __m128 m = _mm_add_ps(_mm256_castps256_ps128(a.v),
                                    _mm256_extractf128_ps(a.v, 1));
        const __m128 q = _mm_add_ps(m, _mm_movehl_ps(m, m));
        return _mm_cvtss_f32(
            _mm_add_ss(q, _mm_shuffle_ps(q, q, 0x1)));
    }
};

inline PackD
PackD::fromPackF(PackF f)
{
    return {_mm512_cvtps_pd(f.v)};
}

#include "simd_kernels_body.ipp"

} // namespace

const VectorKernels*
avx512KernelTable()
{
    static const VectorKernels table =
        makeKernelTable(IsaLevel::Avx512, "avx512");
    return &table;
}

} // namespace rsqp::simd

#else // !RSQP_SIMD_BUILD_AVX512

namespace rsqp::simd
{

const VectorKernels*
avx512KernelTable()
{
    return nullptr;
}

} // namespace rsqp::simd

#endif
