/**
 * @file
 * Kernel-table dispatch: resolves the active ISA level once (CPU
 * detection ∩ compiled tables, narrowed by RSQP_FORCE_ISA), publishes
 * it on the rsqp_build_isa_level telemetry gauge, and hands the hot
 * path its function table through a single atomic load.
 */

#include "simd_kernels_tables.hpp"

#include <atomic>
#include <cstdlib>

#include "common/logging.hpp"
#include "telemetry/metrics.hpp"

namespace rsqp::simd
{

namespace
{

/**
 * Clamp a requested level to what this process can actually run and
 * return the matching table.
 */
const VectorKernels&
resolveTable(IsaLevel level)
{
    if (level >= IsaLevel::Avx512 &&
        detectedIsaLevel() >= IsaLevel::Avx512) {
        if (const VectorKernels* table = avx512KernelTable())
            return *table;
    }
    if (level >= IsaLevel::Avx2 && detectedIsaLevel() >= IsaLevel::Avx2) {
        if (const VectorKernels* table = avx2KernelTable())
            return *table;
    }
    return scalarKernelTable();
}

void
publishIsaGauge(IsaLevel level)
{
    static telemetry::Gauge& gauge =
        telemetry::MetricsRegistry::global().gauge(
            "rsqp_build_isa_level",
            "Active SIMD ISA level of the vector kernels "
            "(0=scalar, 1=avx2, 2=avx512)");
    gauge.set(static_cast<std::int64_t>(level));
}

/**
 * Default level: min(detected, compiled) narrowed by RSQP_FORCE_ISA.
 * An unknown value is ignored with a warning; a level above the
 * supported maximum is clamped with a warning (forcing avx512 on an
 * AVX2-only box cannot conjure the instructions).
 */
const VectorKernels&
defaultTable()
{
    IsaLevel level = resolveTable(detectedIsaLevel()).level;
    if (const char* forced = std::getenv("RSQP_FORCE_ISA")) {
        IsaLevel requested;
        if (!parseIsaLevel(forced, requested)) {
            RSQP_WARN("RSQP_FORCE_ISA=", forced,
                      " not recognized (want scalar|avx2|avx512); "
                      "keeping ", isaLevelName(level));
        } else {
            const VectorKernels& table = resolveTable(requested);
            if (table.level != requested)
                RSQP_WARN("RSQP_FORCE_ISA=", forced,
                          " exceeds this machine/build; clamping to ",
                          table.name);
            level = table.level;
        }
    }
    return resolveTable(level);
}

std::atomic<const VectorKernels*>&
activeTableSlot()
{
    static std::atomic<const VectorKernels*> slot{nullptr};
    return slot;
}

const VectorKernels&
installTable(const VectorKernels& table)
{
    activeTableSlot().store(&table, std::memory_order_release);
    publishIsaGauge(table.level);
    return table;
}

} // namespace

const VectorKernels&
kernelsFor(IsaLevel level)
{
    return resolveTable(level);
}

const VectorKernels&
activeKernels()
{
    const VectorKernels* table =
        activeTableSlot().load(std::memory_order_acquire);
    if (table != nullptr)
        return *table;
    return installTable(defaultTable());
}

IsaLevel
activeIsaLevel()
{
    return activeKernels().level;
}

IsaLevel
forceIsaLevel(IsaLevel level)
{
    return installTable(resolveTable(level)).level;
}

void
resetIsaLevel()
{
    installTable(defaultTable());
}

} // namespace rsqp::simd
