#include "generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "linalg/csr.hpp"
#include "linalg/vector_ops.hpp"

namespace rsqp
{

namespace
{

/** Sample a sparse row: k distinct columns with N(0, scale) values. */
void
addSparseRow(TripletList& triplets, Index row, Index cols, Index k,
             Real scale, Rng& rng, Index col_offset = 0)
{
    const IndexVector picks = rng.sampleDistinct(cols, std::min(k, cols));
    for (Index c : picks)
        triplets.add(row, col_offset + c, rng.normal(0.0, scale));
}

} // namespace

QpProblem
generateControl(Index nx, Rng& rng)
{
    RSQP_ASSERT(nx >= 2, "control: need at least 2 states");
    const Index nu = std::max<Index>(1, nx / 2);
    const Index horizon = 10;
    const Index n = horizon * (nx + nu);
    // Variable layout: x_1..x_T then u_0..u_{T-1}.
    auto state_var = [&](Index k, Index i) {
        return (k - 1) * nx + i;  // k in 1..T
    };
    auto input_var = [&](Index k, Index i) {
        return horizon * nx + k * nu + i;  // k in 0..T-1
    };

    // Random stable dynamics: Ad = 0.9 I + sparse perturbation.
    TripletList ad_triplets(nx, nx);
    for (Index i = 0; i < nx; ++i) {
        ad_triplets.add(i, i, 0.9);
        const IndexVector off =
            rng.sampleDistinct(nx, std::min<Index>(3, nx));
        for (Index j : off)
            if (j != i)
                ad_triplets.add(i, j, rng.normal(0.0, 0.05));
    }
    const CscMatrix ad = CscMatrix::fromTriplets(ad_triplets);
    TripletList bd_triplets(nx, nu);
    for (Index i = 0; i < nx; ++i) {
        const IndexVector picks =
            rng.sampleDistinct(nu, std::min<Index>(2, nu));
        for (Index j : picks)
            bd_triplets.add(i, j, rng.normal(0.0, 0.3));
    }
    const CscMatrix bd = CscMatrix::fromTriplets(bd_triplets);

    // Objective: Q = I on states, R = 0.1 I on inputs.
    TripletList p_triplets(n, n);
    for (Index k = 1; k <= horizon; ++k)
        for (Index i = 0; i < nx; ++i)
            p_triplets.add(state_var(k, i), state_var(k, i), 1.0);
    for (Index k = 0; k < horizon; ++k)
        for (Index i = 0; i < nu; ++i)
            p_triplets.add(input_var(k, i), input_var(k, i), 0.1);

    // Constraints: dynamics equalities + state/input boxes.
    const Index m_dyn = horizon * nx;
    const Index m = m_dyn + horizon * nx + horizon * nu;
    TripletList a_triplets(m, n);
    Vector l(static_cast<std::size_t>(m));
    Vector u(static_cast<std::size_t>(m));

    Vector x0(static_cast<std::size_t>(nx));
    for (Real& v : x0)
        v = rng.uniform(-1.0, 1.0);

    Index row = 0;
    const CsrMatrix ad_csr = CsrMatrix::fromCsc(ad);
    const CsrMatrix bd_csr = CsrMatrix::fromCsc(bd);
    for (Index k = 0; k < horizon; ++k) {
        // x_{k+1} - Ad x_k - Bd u_k = (k == 0 ? Ad x0 : 0)
        for (Index i = 0; i < nx; ++i) {
            a_triplets.add(row, state_var(k + 1, i), 1.0);
            if (k > 0) {
                for (Index p = ad_csr.rowPtr()[i];
                     p < ad_csr.rowPtr()[i + 1]; ++p)
                    a_triplets.add(row, state_var(k, ad_csr.colIdx()[p]),
                                   -ad_csr.values()[p]);
            }
            for (Index p = bd_csr.rowPtr()[i]; p < bd_csr.rowPtr()[i + 1];
                 ++p)
                a_triplets.add(row, input_var(k, bd_csr.colIdx()[p]),
                               -bd_csr.values()[p]);
            Real rhs = 0.0;
            if (k == 0) {
                for (Index p = ad_csr.rowPtr()[i];
                     p < ad_csr.rowPtr()[i + 1]; ++p)
                    rhs += ad_csr.values()[p] *
                        x0[static_cast<std::size_t>(ad_csr.colIdx()[p])];
            }
            l[static_cast<std::size_t>(row)] = rhs;
            u[static_cast<std::size_t>(row)] = rhs;
            ++row;
        }
    }
    for (Index k = 1; k <= horizon; ++k)
        for (Index i = 0; i < nx; ++i) {
            a_triplets.add(row, state_var(k, i), 1.0);
            l[static_cast<std::size_t>(row)] = -4.0;
            u[static_cast<std::size_t>(row)] = 4.0;
            ++row;
        }
    for (Index k = 0; k < horizon; ++k)
        for (Index i = 0; i < nu; ++i) {
            a_triplets.add(row, input_var(k, i), 1.0);
            l[static_cast<std::size_t>(row)] = -0.5;
            u[static_cast<std::size_t>(row)] = 0.5;
            ++row;
        }
    RSQP_ASSERT(row == m, "control: row bookkeeping error");

    QpProblem problem;
    problem.pUpper = CscMatrix::fromTriplets(p_triplets).upperTriangular();
    problem.q = constantVector(n, 0.0);
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = std::move(l);
    problem.u = std::move(u);
    problem.name = "control";
    problem.validate();
    return problem;
}

QpProblem
generateLasso(Index n, Rng& rng)
{
    RSQP_ASSERT(n >= 2, "lasso: need n >= 2");
    const Index md = 5 * n;
    const Index row_nnz = std::min<Index>(n, 8 + n / 20);
    const Index n_tot = 2 * n + md;  // (x, y, t)
    const Index x0 = 0, y0 = n, t0 = n + md;

    // Data: b = A x_true + noise, x_true sparse.
    TripletList a_data(md, n);
    for (Index i = 0; i < md; ++i)
        addSparseRow(a_data, i, n, row_nnz, 1.0, rng);
    const CscMatrix a_mat = CscMatrix::fromTriplets(a_data);
    Vector x_true(static_cast<std::size_t>(n), 0.0);
    for (Index j = 0; j < n; ++j)
        if (rng.bernoulli(0.5))
            x_true[static_cast<std::size_t>(j)] = rng.normal();
    Vector b;
    a_mat.spmv(x_true, b);
    for (Real& v : b)
        v += rng.normal(0.0, 0.1);
    Vector atb;
    a_mat.spmvTranspose(b, atb);
    const Real lambda = 0.2 * normInf(atb);

    TripletList p_triplets(n_tot, n_tot);
    for (Index i = 0; i < md; ++i)
        p_triplets.add(y0 + i, y0 + i, 1.0);
    Vector q(static_cast<std::size_t>(n_tot), 0.0);
    for (Index j = 0; j < n; ++j)
        q[static_cast<std::size_t>(t0 + j)] = lambda;

    const Index m = md + 2 * n;
    TripletList a_triplets(m, n_tot);
    Vector l(static_cast<std::size_t>(m));
    Vector u(static_cast<std::size_t>(m));
    // Ax - y = b.
    const CsrMatrix a_csr = CsrMatrix::fromCsc(a_mat);
    for (Index i = 0; i < md; ++i) {
        for (Index p = a_csr.rowPtr()[i]; p < a_csr.rowPtr()[i + 1]; ++p)
            a_triplets.add(i, x0 + a_csr.colIdx()[p], a_csr.values()[p]);
        a_triplets.add(i, y0 + i, -1.0);
        l[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)];
        u[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)];
    }
    // x - t <= 0 and x + t >= 0.
    for (Index j = 0; j < n; ++j) {
        const Index r1 = md + j;
        a_triplets.add(r1, x0 + j, 1.0);
        a_triplets.add(r1, t0 + j, -1.0);
        l[static_cast<std::size_t>(r1)] = -kInf;
        u[static_cast<std::size_t>(r1)] = 0.0;
        const Index r2 = md + n + j;
        a_triplets.add(r2, x0 + j, 1.0);
        a_triplets.add(r2, t0 + j, 1.0);
        l[static_cast<std::size_t>(r2)] = 0.0;
        u[static_cast<std::size_t>(r2)] = kInf;
    }

    QpProblem problem;
    problem.pUpper = CscMatrix::fromTriplets(p_triplets);
    problem.q = std::move(q);
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = std::move(l);
    problem.u = std::move(u);
    problem.name = "lasso";
    problem.validate();
    return problem;
}

QpProblem
generateHuber(Index n, Rng& rng)
{
    RSQP_ASSERT(n >= 2, "huber: need n >= 2");
    const Index md = 5 * n;
    const Index row_nnz = std::min<Index>(n, 8 + n / 20);
    const Index n_tot = n + 3 * md;  // (x, u, r, s)
    const Index x0 = 0, u0 = n, r0 = n + md, s0 = n + 2 * md;
    const Real huber_m = 1.0;

    TripletList a_data(md, n);
    for (Index i = 0; i < md; ++i)
        addSparseRow(a_data, i, n, row_nnz, 1.0, rng);
    const CscMatrix a_mat = CscMatrix::fromTriplets(a_data);
    Vector x_true(static_cast<std::size_t>(n));
    for (Real& v : x_true)
        v = rng.normal();
    Vector b;
    a_mat.spmv(x_true, b);
    for (std::size_t i = 0; i < b.size(); ++i) {
        b[i] += rng.normal(0.0, 0.1);
        if (rng.bernoulli(0.05))
            b[i] += rng.uniform(-10.0, 10.0);  // outliers
    }

    TripletList p_triplets(n_tot, n_tot);
    for (Index i = 0; i < md; ++i)
        p_triplets.add(u0 + i, u0 + i, 1.0);
    Vector q(static_cast<std::size_t>(n_tot), 0.0);
    for (Index i = 0; i < md; ++i) {
        q[static_cast<std::size_t>(r0 + i)] = huber_m;
        q[static_cast<std::size_t>(s0 + i)] = huber_m;
    }

    const Index m = 3 * md;
    TripletList a_triplets(m, n_tot);
    Vector l(static_cast<std::size_t>(m));
    Vector u(static_cast<std::size_t>(m));
    const CsrMatrix a_csr = CsrMatrix::fromCsc(a_mat);
    for (Index i = 0; i < md; ++i) {
        // Ax - u - r + s = b.
        for (Index p = a_csr.rowPtr()[i]; p < a_csr.rowPtr()[i + 1]; ++p)
            a_triplets.add(i, x0 + a_csr.colIdx()[p], a_csr.values()[p]);
        a_triplets.add(i, u0 + i, -1.0);
        a_triplets.add(i, r0 + i, -1.0);
        a_triplets.add(i, s0 + i, 1.0);
        l[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)];
        u[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(i)];
        // r >= 0, s >= 0.
        const Index rr = md + i;
        a_triplets.add(rr, r0 + i, 1.0);
        l[static_cast<std::size_t>(rr)] = 0.0;
        u[static_cast<std::size_t>(rr)] = kInf;
        const Index rs = 2 * md + i;
        a_triplets.add(rs, s0 + i, 1.0);
        l[static_cast<std::size_t>(rs)] = 0.0;
        u[static_cast<std::size_t>(rs)] = kInf;
    }

    QpProblem problem;
    problem.pUpper = CscMatrix::fromTriplets(p_triplets);
    problem.q = std::move(q);
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = std::move(l);
    problem.u = std::move(u);
    problem.name = "huber";
    problem.validate();
    return problem;
}

QpProblem
generatePortfolio(Index n, Rng& rng)
{
    RSQP_ASSERT(n >= 10, "portfolio: need n >= 10");
    const Index k = std::max<Index>(1, n / 10);
    const Index n_tot = n + k;  // (x, y)
    const Real gamma = 1.0;

    TripletList p_triplets(n_tot, n_tot);
    for (Index j = 0; j < n; ++j)
        p_triplets.add(j, j, rng.uniform(0.0, 1.0) * std::sqrt(
            static_cast<Real>(k)));
    for (Index i = 0; i < k; ++i)
        p_triplets.add(n + i, n + i, 1.0);

    Vector q(static_cast<std::size_t>(n_tot), 0.0);
    for (Index j = 0; j < n; ++j)
        q[static_cast<std::size_t>(j)] = -rng.normal() / gamma;

    // Factor loadings F (n x k), ~15% dense.
    const Index f_row_nnz =
        std::max<Index>(1, std::min(k, (3 * k) / 20 + 1));
    TripletList f_triplets(n, k);
    for (Index j = 0; j < n; ++j)
        addSparseRow(f_triplets, j, k, f_row_nnz, 1.0, rng);
    const CscMatrix f_mat = CscMatrix::fromTriplets(f_triplets);

    const Index m = k + 1 + n;
    TripletList a_triplets(m, n_tot);
    Vector l(static_cast<std::size_t>(m));
    Vector u(static_cast<std::size_t>(m));
    // F'x - y = 0 : row i of F' is column i of F.
    for (Index i = 0; i < k; ++i) {
        for (Index p = f_mat.colPtr()[i]; p < f_mat.colPtr()[i + 1]; ++p)
            a_triplets.add(i, f_mat.rowIdx()[p], f_mat.values()[p]);
        a_triplets.add(i, n + i, -1.0);
        l[static_cast<std::size_t>(i)] = 0.0;
        u[static_cast<std::size_t>(i)] = 0.0;
    }
    // 1'x = 1.
    for (Index j = 0; j < n; ++j)
        a_triplets.add(k, j, 1.0);
    l[static_cast<std::size_t>(k)] = 1.0;
    u[static_cast<std::size_t>(k)] = 1.0;
    // 0 <= x <= 1.
    for (Index j = 0; j < n; ++j) {
        const Index row = k + 1 + j;
        a_triplets.add(row, j, 1.0);
        l[static_cast<std::size_t>(row)] = 0.0;
        u[static_cast<std::size_t>(row)] = 1.0;
    }

    QpProblem problem;
    problem.pUpper = CscMatrix::fromTriplets(p_triplets);
    problem.q = std::move(q);
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = std::move(l);
    problem.u = std::move(u);
    problem.name = "portfolio";
    problem.validate();
    return problem;
}

QpProblem
generateSvm(Index n, Rng& rng)
{
    RSQP_ASSERT(n >= 2, "svm: need n >= 2");
    const Index md = 5 * n;
    const Index row_nnz = std::min<Index>(n, 8 + n / 10);
    const Index n_tot = n + md;  // (x, t)
    const Real lambda = 1.0;

    TripletList p_triplets(n_tot, n_tot);
    for (Index j = 0; j < n; ++j)
        p_triplets.add(j, j, 1.0);
    Vector q(static_cast<std::size_t>(n_tot), 0.0);
    for (Index i = 0; i < md; ++i)
        q[static_cast<std::size_t>(n + i)] = lambda;

    const Index m = 2 * md;
    TripletList a_triplets(m, n_tot);
    Vector l(static_cast<std::size_t>(m));
    Vector u(static_cast<std::size_t>(m));
    for (Index i = 0; i < md; ++i) {
        const Real label = rng.bernoulli(0.5) ? 1.0 : -1.0;
        const IndexVector picks =
            rng.sampleDistinct(n, std::min(row_nnz, n));
        // Make the two classes roughly separable with some overlap.
        const Real shift = label * 0.5;
        for (Index c : picks)
            a_triplets.add(i, c, label * (rng.normal() + shift));
        a_triplets.add(i, n + i, 1.0);
        l[static_cast<std::size_t>(i)] = 1.0;
        u[static_cast<std::size_t>(i)] = kInf;
        // t >= 0.
        const Index row = md + i;
        a_triplets.add(row, n + i, 1.0);
        l[static_cast<std::size_t>(row)] = 0.0;
        u[static_cast<std::size_t>(row)] = kInf;
    }

    QpProblem problem;
    problem.pUpper = CscMatrix::fromTriplets(p_triplets);
    problem.q = std::move(q);
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = std::move(l);
    problem.u = std::move(u);
    problem.name = "svm";
    problem.validate();
    return problem;
}

QpProblem
generateEqqp(Index n, Rng& rng)
{
    RSQP_ASSERT(n >= 4, "eqqp: need n >= 4");
    const Index m = n / 2;
    const Real density = 0.15;
    const Index p_row_nnz =
        std::max<Index>(1, static_cast<Index>(density * n));

    // Diagonally dominant symmetric P (positive definite).
    TripletList p_triplets(n, n);
    Vector row_abs(static_cast<std::size_t>(n), 0.0);
    for (Index i = 0; i < n; ++i) {
        const IndexVector picks = rng.sampleDistinct(
            n - i - 1, std::min<Index>(p_row_nnz / 2, n - i - 1));
        for (Index offset : picks) {
            const Index j = i + 1 + offset;
            const Real v = rng.normal(0.0, 1.0);
            p_triplets.add(i, j, v);
            row_abs[static_cast<std::size_t>(i)] += std::abs(v);
            row_abs[static_cast<std::size_t>(j)] += std::abs(v);
        }
    }
    for (Index i = 0; i < n; ++i)
        p_triplets.add(i, i,
                       row_abs[static_cast<std::size_t>(i)] + 1.0);

    Vector q(static_cast<std::size_t>(n));
    for (Real& v : q)
        v = rng.normal();

    const Index a_row_nnz =
        std::max<Index>(1, static_cast<Index>(density * n));
    TripletList a_triplets(m, n);
    for (Index i = 0; i < m; ++i)
        addSparseRow(a_triplets, i, n, a_row_nnz, 1.0, rng);
    const CscMatrix a_mat = CscMatrix::fromTriplets(a_triplets);
    Vector x_hat(static_cast<std::size_t>(n));
    for (Real& v : x_hat)
        v = rng.normal();
    Vector b;
    a_mat.spmv(x_hat, b);

    QpProblem problem;
    problem.pUpper = CscMatrix::fromTriplets(p_triplets);
    problem.q = std::move(q);
    problem.a = a_mat;
    problem.l = b;
    problem.u = b;
    problem.name = "eqqp";
    problem.validate();
    return problem;
}

} // namespace rsqp
