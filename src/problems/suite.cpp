#include "suite.hpp"

#include <cmath>
#include <cstdio>

#include "common/logging.hpp"
#include "problems/generators.hpp"

namespace rsqp
{

const std::vector<Domain>&
allDomains()
{
    static const std::vector<Domain> domains = {
        Domain::Control, Domain::Lasso, Domain::Huber,
        Domain::Portfolio, Domain::Svm, Domain::Eqqp,
    };
    return domains;
}

const char*
toString(Domain domain)
{
    switch (domain) {
      case Domain::Control: return "control";
      case Domain::Lasso: return "lasso";
      case Domain::Huber: return "huber";
      case Domain::Portfolio: return "portfolio";
      case Domain::Svm: return "svm";
      case Domain::Eqqp: return "eqqp";
    }
    return "unknown";
}

QpProblem
generateProblem(Domain domain, Index size_param, std::uint64_t seed)
{
    Rng rng(seed);
    switch (domain) {
      case Domain::Control: return generateControl(size_param, rng);
      case Domain::Lasso: return generateLasso(size_param, rng);
      case Domain::Huber: return generateHuber(size_param, rng);
      case Domain::Portfolio: return generatePortfolio(size_param, rng);
      case Domain::Svm: return generateSvm(size_param, rng);
      case Domain::Eqqp: return generateEqqp(size_param, rng);
    }
    RSQP_PANIC("unknown domain");
}

QpProblem
ProblemSpec::generate() const
{
    QpProblem problem = generateProblem(domain, sizeParam, seed);
    problem.name = name;
    return problem;
}

namespace
{

/** Size-parameter sweep bounds per domain (nnz spans ~1e2..1e6). */
void
domainSizeRange(Domain domain, Index& lo, Index& hi)
{
    switch (domain) {
      case Domain::Control: lo = 4; hi = 1200; return;
      case Domain::Lasso: lo = 10; hi = 2000; return;
      case Domain::Huber: lo = 10; hi = 1500; return;
      case Domain::Portfolio: lo = 20; hi = 8000; return;
      case Domain::Svm: lo = 10; hi = 1200; return;
      case Domain::Eqqp: lo = 10; hi = 2500; return;
    }
    RSQP_PANIC("unknown domain");
}

} // namespace

std::vector<ProblemSpec>
benchmarkSuite(Index sizes_per_domain)
{
    RSQP_ASSERT(sizes_per_domain >= 1 && sizes_per_domain <= 20,
                "sizes_per_domain must be in [1, 20]");
    // The full suite always uses 20 log-spaced points; a reduced suite
    // takes every ceil(20/k)-th point so small and large sizes are both
    // represented.
    constexpr Index kFullPoints = 20;

    std::vector<ProblemSpec> specs;
    for (Domain domain : allDomains()) {
        Index lo = 0, hi = 0;
        domainSizeRange(domain, lo, hi);
        std::vector<Index> params;
        for (Index i = 0; i < kFullPoints; ++i) {
            const Real t = kFullPoints == 1
                ? 0.0
                : static_cast<Real>(i) /
                    static_cast<Real>(kFullPoints - 1);
            const Real value = static_cast<Real>(lo) *
                std::pow(static_cast<Real>(hi) / static_cast<Real>(lo), t);
            params.push_back(static_cast<Index>(std::lround(value)));
        }
        // Subsample when a reduced suite is requested.
        std::vector<Index> chosen;
        for (Index i = 0; i < sizes_per_domain; ++i) {
            const Index idx = sizes_per_domain == 1
                ? 0
                : (i * (kFullPoints - 1)) / (sizes_per_domain - 1);
            chosen.push_back(params[static_cast<std::size_t>(idx)]);
        }
        for (std::size_t i = 0; i < chosen.size(); ++i) {
            ProblemSpec spec;
            spec.domain = domain;
            spec.sizeParam = chosen[i];
            spec.seed = 0xC0FFEEULL * 1000003ULL +
                static_cast<std::uint64_t>(domain) * 7919ULL +
                static_cast<std::uint64_t>(i) * 104729ULL;
            char buf[64];
            std::snprintf(buf, sizeof(buf), "%s_%02zu",
                          toString(domain), i);
            spec.name = buf;
            specs.push_back(std::move(spec));
        }
    }
    return specs;
}

} // namespace rsqp
