/**
 * @file
 * The 120-problem benchmark suite: 6 application domains x 20 sizes,
 * spanning roughly 1e2 to 1e6 non-zeros (paper Fig. 7).
 */

#ifndef RSQP_PROBLEMS_SUITE_HPP
#define RSQP_PROBLEMS_SUITE_HPP

#include <string>
#include <vector>

#include "osqp/problem.hpp"

namespace rsqp
{

/** Application domains of the OSQP benchmark. */
enum class Domain
{
    Control,
    Lasso,
    Huber,
    Portfolio,
    Svm,
    Eqqp,
};

/** All six domains in the paper's ordering. */
const std::vector<Domain>& allDomains();

/** Printable domain name ("control", "lasso", ...). */
const char* toString(Domain domain);

/** One suite entry: which generator, at which size, with which seed. */
struct ProblemSpec
{
    Domain domain = Domain::Control;
    Index sizeParam = 0;       ///< generator size argument
    std::uint64_t seed = 0;    ///< RNG seed
    std::string name;          ///< e.g. "control_07"

    /** Materialize the QP. */
    QpProblem generate() const;
};

/**
 * The full 120-problem suite. sizes_per_domain can be reduced for
 * quick runs (the spacing stays logarithmic, anchored at the small
 * end, so reduced suites are prefixes of the full one in size).
 */
std::vector<ProblemSpec> benchmarkSuite(Index sizes_per_domain = 20);

/** Generator dispatch used by ProblemSpec::generate. */
QpProblem generateProblem(Domain domain, Index size_param,
                          std::uint64_t seed);

} // namespace rsqp

#endif // RSQP_PROBLEMS_SUITE_HPP
