/**
 * @file
 * Seeded generators for the six OSQP benchmark domains (paper Sec. 5,
 * following the formulations of the OSQP paper's benchmark suite):
 * control (linear MPC), lasso, Huber fitting, portfolio optimization,
 * support vector machine, and equality-constrained QP.
 *
 * Every generator takes a single size parameter and an RNG; identical
 * (parameter, seed) pairs produce identical problems, so all figures
 * in this repository are exactly reproducible.
 */

#ifndef RSQP_PROBLEMS_GENERATORS_HPP
#define RSQP_PROBLEMS_GENERATORS_HPP

#include "common/random.hpp"
#include "osqp/problem.hpp"

namespace rsqp
{

/**
 * Linear MPC for a randomly generated stable system (the "control"
 * domain).
 *
 * States nx, inputs nu = nx/2, horizon T = 10. Decision variables are
 * the stacked states x_1..x_T and inputs u_0..u_{T-1}; constraints are
 * the dynamics equalities plus box bounds on states and inputs.
 *
 * @param nx Number of states (>= 2).
 */
QpProblem generateControl(Index nx, Rng& rng);

/**
 * Lasso regression: minimize (1/2)||Ax - b||^2 + lambda ||x||_1,
 * rewritten with residual variables y and bound variables t as
 *   minimize (1/2) y'y + lambda 1't
 *   s.t. y = Ax - b, -t <= x <= t.
 *
 * @param n Number of features; the data matrix has 5n rows.
 */
QpProblem generateLasso(Index n, Rng& rng);

/**
 * Huber fitting: minimize sum huber_M(a_i'x - b_i), rewritten as
 *   minimize (1/2) u'u + M 1'(r + s)
 *   s.t. Ax - b - u = r - s, r >= 0, s >= 0.
 *
 * @param n Number of features; the data matrix has 5n rows.
 */
QpProblem generateHuber(Index n, Rng& rng);

/**
 * Markowitz portfolio optimization with a k = max(1, n/10) factor
 * model Sigma = F F' + D:
 *   maximize mu'x - gamma (x' Sigma x)
 * rewritten with y = F'x as
 *   minimize x'Dx + y'y - (1/gamma) mu'x
 *   s.t. y = F'x, 1'x = 1, 0 <= x <= 1.
 *
 * @param n Number of assets.
 */
QpProblem generatePortfolio(Index n, Rng& rng);

/**
 * Support vector machine with hinge loss:
 *   minimize (1/2) x'x + lambda 1't
 *   s.t. t >= diag(b) A x + 1, t >= 0
 * for labeled data (a_i, b_i), b_i in {-1, +1}; 5n data points.
 *
 * @param n Number of features.
 */
QpProblem generateSvm(Index n, Rng& rng);

/**
 * Equality-constrained QP with dense-ish random data (15% density, as
 * in the OSQP benchmark; this is the domain whose unstructured
 * sparsity defeats customization in Fig. 9):
 *   minimize (1/2) x'Px + q'x  s.t.  Ax = b,
 * with P = M'M + alpha I and m = n/2 constraints.
 *
 * @param n Number of variables (>= 4).
 */
QpProblem generateEqqp(Index n, Rng& rng);

} // namespace rsqp

#endif // RSQP_PROBLEMS_GENERATORS_HPP
