#include "ordering.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <set>
#include <utility>
#include <vector>
#include <functional>

#include "common/logging.hpp"

namespace rsqp
{

namespace
{

/** Symmetrized adjacency (no self loops) from an upper-triangle pattern. */
std::vector<IndexVector>
buildAdjacency(const CscMatrix& upper)
{
    const Index n = upper.cols();
    std::vector<IndexVector> adj(static_cast<std::size_t>(n));
    for (Index c = 0; c < n; ++c) {
        for (Index p = upper.colPtr()[c]; p < upper.colPtr()[c + 1]; ++p) {
            const Index r = upper.rowIdx()[p];
            if (r == c)
                continue;
            adj[static_cast<std::size_t>(r)].push_back(c);
            adj[static_cast<std::size_t>(c)].push_back(r);
        }
    }
    for (auto& neighbors : adj) {
        std::sort(neighbors.begin(), neighbors.end());
        neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                        neighbors.end());
    }
    return adj;
}

} // namespace

IndexVector
reverseCuthillMcKee(const CscMatrix& upper)
{
    RSQP_ASSERT(upper.rows() == upper.cols(), "RCM needs a square matrix");
    const Index n = upper.cols();
    const auto adj = buildAdjacency(upper);

    std::vector<Index> degree(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i)
        degree[static_cast<std::size_t>(i)] =
            static_cast<Index>(adj[static_cast<std::size_t>(i)].size());

    std::vector<bool> visited(static_cast<std::size_t>(n), false);
    IndexVector order;
    order.reserve(static_cast<std::size_t>(n));

    // Process every connected component, starting each BFS from its
    // minimum-degree node (a cheap pseudo-peripheral heuristic).
    for (Index seed_scan = 0; seed_scan < n; ++seed_scan) {
        if (visited[static_cast<std::size_t>(seed_scan)])
            continue;
        // Find the min-degree unvisited node in this component via BFS
        // from seed_scan first.
        Index start = seed_scan;
        {
            std::queue<Index> bfs;
            std::vector<Index> component;
            std::vector<bool> seen(static_cast<std::size_t>(n), false);
            bfs.push(seed_scan);
            seen[static_cast<std::size_t>(seed_scan)] = true;
            while (!bfs.empty()) {
                const Index u = bfs.front();
                bfs.pop();
                component.push_back(u);
                for (Index v : adj[static_cast<std::size_t>(u)]) {
                    if (!seen[static_cast<std::size_t>(v)] &&
                        !visited[static_cast<std::size_t>(v)]) {
                        seen[static_cast<std::size_t>(v)] = true;
                        bfs.push(v);
                    }
                }
            }
            for (Index u : component)
                if (degree[static_cast<std::size_t>(u)] <
                    degree[static_cast<std::size_t>(start)])
                    start = u;
        }

        // Cuthill-McKee BFS with degree-sorted neighbor expansion.
        std::queue<Index> bfs;
        bfs.push(start);
        visited[static_cast<std::size_t>(start)] = true;
        IndexVector buffer;
        while (!bfs.empty()) {
            const Index u = bfs.front();
            bfs.pop();
            order.push_back(u);
            buffer.clear();
            for (Index v : adj[static_cast<std::size_t>(u)])
                if (!visited[static_cast<std::size_t>(v)])
                    buffer.push_back(v);
            std::sort(buffer.begin(), buffer.end(),
                      [&](Index a, Index b) {
                          return degree[static_cast<std::size_t>(a)] <
                              degree[static_cast<std::size_t>(b)];
                      });
            for (Index v : buffer) {
                visited[static_cast<std::size_t>(v)] = true;
                bfs.push(v);
            }
        }
    }

    std::reverse(order.begin(), order.end());
    return order;
}

IndexVector
minimumDegree(const CscMatrix& upper)
{
    RSQP_ASSERT(upper.rows() == upper.cols(),
                "minimumDegree needs a square matrix");
    const Index n = upper.cols();
    // Elimination graph with exact degree updates. Sets keep the
    // neighbor lists unique under clique insertion.
    std::vector<std::set<Index>> adj(static_cast<std::size_t>(n));
    for (Index c = 0; c < n; ++c) {
        for (Index p = upper.colPtr()[c]; p < upper.colPtr()[c + 1];
             ++p) {
            const Index r = upper.rowIdx()[p];
            if (r == c)
                continue;
            adj[static_cast<std::size_t>(r)].insert(c);
            adj[static_cast<std::size_t>(c)].insert(r);
        }
    }

    // Lazy min-heap of (degree, node).
    using Entry = std::pair<Index, Index>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    for (Index v = 0; v < n; ++v)
        heap.emplace(static_cast<Index>(
                         adj[static_cast<std::size_t>(v)].size()),
                     v);
    std::vector<bool> eliminated(static_cast<std::size_t>(n), false);

    IndexVector order;
    order.reserve(static_cast<std::size_t>(n));
    while (!heap.empty()) {
        const auto [deg, v] = heap.top();
        heap.pop();
        if (eliminated[static_cast<std::size_t>(v)] ||
            deg != static_cast<Index>(
                       adj[static_cast<std::size_t>(v)].size()))
            continue;  // stale entry
        eliminated[static_cast<std::size_t>(v)] = true;
        order.push_back(v);

        // Eliminate v: its alive neighbors become a clique.
        const std::set<Index> neighbors =
            std::move(adj[static_cast<std::size_t>(v)]);
        adj[static_cast<std::size_t>(v)].clear();
        for (Index u : neighbors) {
            auto& adj_u = adj[static_cast<std::size_t>(u)];
            adj_u.erase(v);
            for (Index w : neighbors)
                if (w != u)
                    adj_u.insert(w);
            heap.emplace(static_cast<Index>(adj_u.size()), u);
        }
    }
    RSQP_ASSERT(static_cast<Index>(order.size()) == n,
                "minimum degree lost nodes");
    return order;
}

IndexVector
computeOrdering(const CscMatrix& upper, OrderingKind kind)
{
    switch (kind) {
      case OrderingKind::Natural: {
        IndexVector perm(static_cast<std::size_t>(upper.cols()));
        std::iota(perm.begin(), perm.end(), Index{0});
        return perm;
      }
      case OrderingKind::Rcm:
        return reverseCuthillMcKee(upper);
      case OrderingKind::MinDegree:
        return minimumDegree(upper);
    }
    RSQP_PANIC("unknown ordering kind");
}

Index
symmetricBandwidth(const CscMatrix& upper, const IndexVector& perm)
{
    const Index n = upper.cols();
    RSQP_ASSERT(static_cast<Index>(perm.size()) == n,
                "permutation size mismatch");
    IndexVector inv(perm.size());
    for (Index i = 0; i < n; ++i)
        inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
    Index band = 0;
    for (Index c = 0; c < n; ++c) {
        for (Index p = upper.colPtr()[c]; p < upper.colPtr()[c + 1]; ++p) {
            const Index r = upper.rowIdx()[p];
            band = std::max(band, std::abs(
                inv[static_cast<std::size_t>(r)] -
                inv[static_cast<std::size_t>(c)]));
        }
    }
    return band;
}

} // namespace rsqp
