#include "pcg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "common/profile.hpp"
#include "linalg/vector_ops.hpp"

namespace rsqp
{

const char*
toString(PcgBreakdown breakdown)
{
    switch (breakdown) {
    case PcgBreakdown::None:
        return "none";
    case PcgBreakdown::IndefiniteDirection:
        return "indefinite-direction";
    case PcgBreakdown::NonFiniteResidual:
        return "non-finite-residual";
    case PcgBreakdown::Stagnation:
        return "stagnation";
    }
    return "unknown";
}

JacobiPreconditioner::JacobiPreconditioner(const Vector& diagonal)
{
    rebuild(diagonal);
}

void
JacobiPreconditioner::rebuild(const Vector& diagonal)
{
    invDiag_.resize(diagonal.size());
    for (std::size_t i = 0; i < diagonal.size(); ++i) {
        RSQP_ASSERT(diagonal[i] > 0.0,
                    "Jacobi preconditioner needs a positive diagonal, got ",
                    diagonal[i], " at ", i);
        invDiag_[i] = 1.0 / diagonal[i];
    }
}

void
JacobiPreconditioner::apply(const Vector& r, Vector& out) const
{
    RSQP_ASSERT(r.size() == invDiag_.size(), "preconditioner size");
    RSQP_ASSERT(out.size() == r.size(),
                "preconditioner out vector not preallocated");
    for (std::size_t i = 0; i < r.size(); ++i)
        out[i] = r[i] * invDiag_[i];
}

namespace
{

/**
 * The shared CG loop, templated on the operator so the hot
 * ReducedKktOperator path never goes through a std::function.
 *
 * Textbook form (r = b - K x, p = d + mu p): every iteration is the
 * operator apply plus three fused passes — dot(p, Kp), the combined
 * x/r update with its residual norm (xMinusAlphaPDot), and the
 * preconditioner apply with its dot (precondApplyDot) — instead of the
 * 5-6 separate sweeps of the naive loop. All reductions use the
 * fixed-grain deterministic chunking, so iterates and results are
 * bitwise-identical at any thread count.
 */
template <typename ApplyK>
PcgResult
pcgSolveImpl(ApplyK&& apply_k, const JacobiPreconditioner& precond,
             const Vector& b, Vector& x, const PcgSettings& settings,
             PcgWorkspace& ws)
{
    const std::size_t n = b.size();
    RSQP_ASSERT(x.size() == n, "pcg: x size mismatch");
    ws.resize(n);
    Vector& r = ws.r;
    Vector& d = ws.d;
    Vector& p = ws.p;
    Vector& kp = ws.kp;

    PcgResult result;
    const Real b_norm = norm2(b);
    const Real threshold =
        std::max(settings.epsAbs, settings.epsRel * b_norm);

    FaultInjector* injector = activeFaultInjector();
    // Per-call offset: successive pcgSolve calls (one per ADMM
    // iteration) must draw independent fault patterns, or one bad
    // word would break down every KKT solve of the run identically.
    const std::uint64_t call_offset =
        injector != nullptr ? injector->acquireNonce() << 20 : 0;

    // r0 = b - K x0 (the corruption hook sees the raw operator output,
    // exactly as it did on the retired r = K x - b convention).
    apply_k(x, r);
    if (injector != nullptr)
        injector->corruptVector(r,
                                fault_streams::kPcgOperator + call_offset);
    axpby(1.0, b, -1.0, r, r);

    Real r_norm = norm2(r);
    if (!std::isfinite(r_norm)) {
        result.breakdown = PcgBreakdown::NonFiniteResidual;
        result.residualNorm = r_norm;
        return result;
    }
    if (r_norm < threshold) {
        result.converged = true;
        result.residualNorm = r_norm;
        return result;
    }

    const Vector& inv_diag = precond.inverseDiagonal();
    RSQP_ASSERT(inv_diag.size() == n, "preconditioner size");

    // d0 = M^-1 r0 and rd = r'd in one pass; p0 = d0.
    Real rd = precondApplyDot(inv_diag, r, d);
    std::copy(d.begin(), d.end(), p.begin());

    Real best_r_norm = r_norm;
    Index iters_without_progress = 0;
    for (Index iter = 0; iter < settings.maxIter; ++iter) {
        apply_k(p, kp);
        // Soft-error hook on the operator output stream — the software
        // twin of the MAC-tree injection in arch/machine.cpp. The
        // per-iteration offset keeps one word position from being
        // deterministically faulty on every application of K.
        if (injector != nullptr)
            injector->corruptVector(
                kp, fault_streams::kPcgOperator + call_offset +
                        static_cast<std::uint64_t>(iter) + 1);
        const Real pkp = dot(p, kp);
        if (!std::isfinite(pkp) || pkp <= 0.0) {
            // Indefinite or corrupted direction: K stopped acting
            // positive definite on this Krylov subspace.
            RSQP_WARN("pcg: non-positive curvature ", pkp, "; aborting");
            result.breakdown = PcgBreakdown::IndefiniteDirection;
            break;
        }
        const Real lambda = rd / pkp;
        // x += lambda p, r -= lambda kp and ||r||^2 in a single pass.
        const Real rr = xMinusAlphaPDot(lambda, p, x, kp, r);

        ++result.iterations;
        r_norm = std::sqrt(rr);
        if (!std::isfinite(r_norm)) {
            result.breakdown = PcgBreakdown::NonFiniteResidual;
            break;
        }
        if (r_norm < threshold) {
            result.converged = true;
            break;
        }
        if (r_norm < 0.999 * best_r_norm) {
            best_r_norm = r_norm;
            iters_without_progress = 0;
        } else if (settings.stagnationWindow > 0 &&
                   ++iters_without_progress >= settings.stagnationWindow) {
            RSQP_WARN("pcg: residual stagnant at ", r_norm, " for ",
                      iters_without_progress, " iterations; aborting");
            result.breakdown = PcgBreakdown::Stagnation;
            break;
        }

        // d = M^-1 r and rd' = r'd fused; then p = d + mu p.
        const Real rd_next = precondApplyDot(inv_diag, r, d);
        const Real mu = rd_next / rd;
        rd = rd_next;
        {
            ProfileScope profile(ProfilePhase::FusedVectorOps);
            axpby(1.0, d, mu, p, p);
        }
    }
    result.residualNorm = r_norm;
    return result;
}

/**
 * One fp32 CG sweep on K e = r, with e starting at zero. Storage and
 * elementwise math are fp32 (the simulated datapath's MAC precision);
 * every reduction accumulates in fp64 through the dispatched kernels.
 * Stops when the inner residual has shrunk by settings.mixedInnerEpsRel
 * relative to its start — fp32 storage cannot go much further anyway;
 * the fp64 refinement loop around this closes the remaining gap.
 *
 * @return iterations run, or -1 on breakdown (caller rescues in fp64).
 */
Index
mixedInnerSweep(const ReducedKktOperator& op, const PcgSettings& settings,
                MixedPcgWorkspace& ws, Index max_iters)
{
    const Real r0_rr = dotF32(ws.r32, ws.r32);
    const Real stop_rr = r0_rr * settings.mixedInnerEpsRel *
        settings.mixedInnerEpsRel;

    std::fill(ws.e32.begin(), ws.e32.end(), 0.0f);
    Real rd = precondApplyDotF32(ws.invDiag32, ws.r32, ws.d32);
    std::copy(ws.d32.begin(), ws.d32.end(), ws.p32.begin());

    Index iters = 0;
    for (; iters < max_iters; ++iters) {
        op.applyFp32(ws.p32, ws.kp32);
        const Real pkp = dotF32(ws.p32, ws.kp32);
        if (!std::isfinite(pkp) || pkp <= 0.0)
            return iters == 0 ? -1 : iters;
        const Real lambda = rd / pkp;
        const Real rr =
            xMinusAlphaPDotF32(lambda, ws.p32, ws.e32, ws.kp32, ws.r32);
        if (!std::isfinite(rr))
            return -1;
        if (rr < stop_rr) {
            ++iters;
            break;
        }
        const Real rd_next = precondApplyDotF32(ws.invDiag32, ws.r32,
                                                ws.d32);
        if (rd_next <= 0.0 || !std::isfinite(rd_next))
            return iters + 1;
        const Real mu = rd_next / rd;
        rd = rd_next;
        {
            ProfileScope profile(ProfilePhase::FusedVectorOps);
            axpbyF32(1.0, ws.d32, mu, ws.p32, ws.p32);
        }
    }
    return iters;
}

PcgResult
pcgSolveMixedImpl(const ReducedKktOperator& op,
                  const JacobiPreconditioner& precond, const Vector& b,
                  Vector& x, const PcgSettings& settings,
                  MixedPcgWorkspace& ws)
{
    RSQP_ASSERT(op.fp32MirrorEnabled(),
                "pcgSolveMixed needs enableFp32Mirror() on the operator");
    const std::size_t n = b.size();
    RSQP_ASSERT(x.size() == n, "pcg: x size mismatch");
    ws.resize(n);

    PcgResult result;
    result.usedMixedPrecision = true;
    const Real b_norm = norm2(b);
    const Real threshold =
        std::max(settings.epsAbs, settings.epsRel * b_norm);
    castToF32(precond.inverseDiagonal(), ws.invDiag32);

    const auto rescue = [&](PcgResult partial) {
        PcgResult fixed = pcgSolveImpl(
            [&op](const Vector& in, Vector& out) { op.apply(in, out); },
            precond, b, x, settings, ws.rescue);
        fixed.iterations += partial.iterations;
        fixed.refinementSweeps = partial.refinementSweeps;
        fixed.usedMixedPrecision = true;
        fixed.fp64Rescue = true;
        return fixed;
    };

    Real prev_r_norm = std::numeric_limits<Real>::infinity();
    for (Index sweep = 0; sweep <= settings.maxRefinementSweeps;
         ++sweep) {
        // fp64 truth: r64 = b - K x, judged against the same threshold
        // as the pure-double path.
        op.apply(x, ws.r64);
        axpby(1.0, b, -1.0, ws.r64, ws.r64);
        const Real r_norm = norm2(ws.r64);
        if (!std::isfinite(r_norm))
            return rescue(result);
        result.residualNorm = r_norm;
        if (r_norm < threshold) {
            result.converged = true;
            return result;
        }
        // Refinement must shrink the fp64 residual geometrically; a
        // sweep that recovers less than ~10x means fp32 has hit its
        // representational floor for this system — finish in fp64.
        if (r_norm > 0.5 * prev_r_norm || sweep == settings.maxRefinementSweeps)
            return rescue(result);
        prev_r_norm = r_norm;

        const Index budget = settings.maxIter - result.iterations;
        if (budget <= 0)
            return rescue(result);
        castToF32(ws.r64, ws.r32);
        ++result.refinementSweeps;
        const Index inner = mixedInnerSweep(op, settings, ws, budget);
        if (inner < 0)
            return rescue(result);
        result.iterations += inner;
        // x += e (widened): the only fp64 write of the sweep.
        widenF32(ws.e32, ws.e64);
        axpy(1.0, ws.e64, x);
    }
    return rescue(result);
}

} // namespace

PcgResult
pcgSolve(const std::function<void(const Vector&, Vector&)>& apply_k,
         const JacobiPreconditioner& precond, const Vector& b, Vector& x,
         const PcgSettings& settings, PcgWorkspace& workspace)
{
    return pcgSolveImpl(apply_k, precond, b, x, settings, workspace);
}

PcgResult
pcgSolve(const std::function<void(const Vector&, Vector&)>& apply_k,
         const JacobiPreconditioner& precond, const Vector& b, Vector& x,
         const PcgSettings& settings)
{
    PcgWorkspace workspace;
    return pcgSolveImpl(apply_k, precond, b, x, settings, workspace);
}

PcgResult
pcgSolve(const ReducedKktOperator& op, const JacobiPreconditioner& precond,
         const Vector& b, Vector& x, const PcgSettings& settings,
         PcgWorkspace& workspace)
{
    return pcgSolveImpl(
        [&op](const Vector& in, Vector& out) { op.apply(in, out); },
        precond, b, x, settings, workspace);
}

PcgResult
pcgSolve(const ReducedKktOperator& op, const JacobiPreconditioner& precond,
         const Vector& b, Vector& x, const PcgSettings& settings)
{
    PcgWorkspace workspace;
    return pcgSolveImpl(
        [&op](const Vector& in, Vector& out) { op.apply(in, out); },
        precond, b, x, settings, workspace);
}

PcgResult
pcgSolveMixed(const ReducedKktOperator& op,
              const JacobiPreconditioner& precond, const Vector& b,
              Vector& x, const PcgSettings& settings,
              MixedPcgWorkspace& workspace)
{
    return pcgSolveMixedImpl(op, precond, b, x, settings, workspace);
}

PcgResult
pcgSolveMixed(const ReducedKktOperator& op,
              const JacobiPreconditioner& precond, const Vector& b,
              Vector& x, const PcgSettings& settings)
{
    MixedPcgWorkspace workspace;
    return pcgSolveMixedImpl(op, precond, b, x, settings, workspace);
}

} // namespace rsqp
