#include "pcg.hpp"

#include <cmath>

#include "common/fault_injection.hpp"
#include "common/logging.hpp"
#include "linalg/vector_ops.hpp"

namespace rsqp
{

const char*
toString(PcgBreakdown breakdown)
{
    switch (breakdown) {
    case PcgBreakdown::None:
        return "none";
    case PcgBreakdown::IndefiniteDirection:
        return "indefinite-direction";
    case PcgBreakdown::NonFiniteResidual:
        return "non-finite-residual";
    case PcgBreakdown::Stagnation:
        return "stagnation";
    }
    return "unknown";
}

JacobiPreconditioner::JacobiPreconditioner(const Vector& diagonal)
{
    invDiag_.resize(diagonal.size());
    for (std::size_t i = 0; i < diagonal.size(); ++i) {
        RSQP_ASSERT(diagonal[i] > 0.0,
                    "Jacobi preconditioner needs a positive diagonal, got ",
                    diagonal[i], " at ", i);
        invDiag_[i] = 1.0 / diagonal[i];
    }
}

void
JacobiPreconditioner::apply(const Vector& r, Vector& out) const
{
    RSQP_ASSERT(r.size() == invDiag_.size(), "preconditioner size");
    out.resize(r.size());
    for (std::size_t i = 0; i < r.size(); ++i)
        out[i] = r[i] * invDiag_[i];
}

PcgResult
pcgSolve(const std::function<void(const Vector&, Vector&)>& apply_k,
         const JacobiPreconditioner& precond, const Vector& b, Vector& x,
         const PcgSettings& settings)
{
    const std::size_t n = b.size();
    RSQP_ASSERT(x.size() == n, "pcg: x size mismatch");

    PcgResult result;
    const Real b_norm = norm2(b);
    const Real threshold =
        std::max(settings.epsAbs, settings.epsRel * b_norm);

    Vector r(n), d(n), p(n), kp(n);
    FaultInjector* injector = activeFaultInjector();
    // Per-call offset: successive pcgSolve calls (one per ADMM
    // iteration) must draw independent fault patterns, or one bad
    // word would break down every KKT solve of the run identically.
    const std::uint64_t call_offset =
        injector != nullptr ? injector->acquireNonce() << 20 : 0;

    // r0 = K x0 - b
    apply_k(x, r);
    if (injector != nullptr)
        injector->corruptVector(r,
                                fault_streams::kPcgOperator + call_offset);
    axpy(-1.0, b, r);

    Real r_norm = norm2(r);
    if (!std::isfinite(r_norm)) {
        result.breakdown = PcgBreakdown::NonFiniteResidual;
        result.residualNorm = r_norm;
        return result;
    }
    if (r_norm < threshold) {
        result.converged = true;
        result.residualNorm = r_norm;
        return result;
    }

    // d0 = M^-1 r0, p0 = -d0
    precond.apply(r, d);
    for (std::size_t i = 0; i < n; ++i)
        p[i] = -d[i];

    Real best_r_norm = r_norm;
    Index iters_without_progress = 0;
    Real rd = dot(r, d);
    for (Index iter = 0; iter < settings.maxIter; ++iter) {
        apply_k(p, kp);
        // Soft-error hook on the operator output stream — the software
        // twin of the MAC-tree injection in arch/machine.cpp. The
        // per-iteration offset keeps one word position from being
        // deterministically faulty on every application of K.
        if (injector != nullptr)
            injector->corruptVector(
                kp, fault_streams::kPcgOperator + call_offset +
                        static_cast<std::uint64_t>(iter) + 1);
        const Real pkp = dot(p, kp);
        if (!std::isfinite(pkp) || pkp <= 0.0) {
            // Indefinite or corrupted direction: K stopped acting
            // positive definite on this Krylov subspace.
            RSQP_WARN("pcg: non-positive curvature ", pkp, "; aborting");
            result.breakdown = PcgBreakdown::IndefiniteDirection;
            break;
        }
        const Real lambda = rd / pkp;
        axpy(lambda, p, x);
        axpy(lambda, kp, r);
        precond.apply(r, d);
        const Real rd_next = dot(r, d);
        const Real mu = rd_next / rd;
        rd = rd_next;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = -d[i] + mu * p[i];

        ++result.iterations;
        r_norm = norm2(r);
        if (!std::isfinite(r_norm)) {
            result.breakdown = PcgBreakdown::NonFiniteResidual;
            break;
        }
        if (r_norm < threshold) {
            result.converged = true;
            break;
        }
        if (r_norm < 0.999 * best_r_norm) {
            best_r_norm = r_norm;
            iters_without_progress = 0;
        } else if (settings.stagnationWindow > 0 &&
                   ++iters_without_progress >= settings.stagnationWindow) {
            RSQP_WARN("pcg: residual stagnant at ", r_norm, " for ",
                      iters_without_progress, " iterations; aborting");
            result.breakdown = PcgBreakdown::Stagnation;
            break;
        }
    }
    result.residualNorm = r_norm;
    return result;
}

PcgResult
pcgSolve(const ReducedKktOperator& op, const JacobiPreconditioner& precond,
         const Vector& b, Vector& x, const PcgSettings& settings)
{
    return pcgSolve(
        [&op](const Vector& in, Vector& out) { op.apply(in, out); },
        precond, b, x, settings);
}

} // namespace rsqp
