#include "pcg.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "linalg/vector_ops.hpp"

namespace rsqp
{

JacobiPreconditioner::JacobiPreconditioner(const Vector& diagonal)
{
    invDiag_.resize(diagonal.size());
    for (std::size_t i = 0; i < diagonal.size(); ++i) {
        RSQP_ASSERT(diagonal[i] > 0.0,
                    "Jacobi preconditioner needs a positive diagonal, got ",
                    diagonal[i], " at ", i);
        invDiag_[i] = 1.0 / diagonal[i];
    }
}

void
JacobiPreconditioner::apply(const Vector& r, Vector& out) const
{
    RSQP_ASSERT(r.size() == invDiag_.size(), "preconditioner size");
    out.resize(r.size());
    for (std::size_t i = 0; i < r.size(); ++i)
        out[i] = r[i] * invDiag_[i];
}

PcgResult
pcgSolve(const std::function<void(const Vector&, Vector&)>& apply_k,
         const JacobiPreconditioner& precond, const Vector& b, Vector& x,
         const PcgSettings& settings)
{
    const std::size_t n = b.size();
    RSQP_ASSERT(x.size() == n, "pcg: x size mismatch");

    PcgResult result;
    const Real b_norm = norm2(b);
    const Real threshold =
        std::max(settings.epsAbs, settings.epsRel * b_norm);

    Vector r(n), d(n), p(n), kp(n);

    // r0 = K x0 - b
    apply_k(x, r);
    axpy(-1.0, b, r);

    Real r_norm = norm2(r);
    if (r_norm < threshold) {
        result.converged = true;
        result.residualNorm = r_norm;
        return result;
    }

    // d0 = M^-1 r0, p0 = -d0
    precond.apply(r, d);
    for (std::size_t i = 0; i < n; ++i)
        p[i] = -d[i];

    Real rd = dot(r, d);
    for (Index iter = 0; iter < settings.maxIter; ++iter) {
        apply_k(p, kp);
        const Real pkp = dot(p, kp);
        if (pkp <= 0.0) {
            // Indefinite direction: K is not positive definite (should
            // not happen for the reduced KKT operator); bail out.
            RSQP_WARN("pcg: non-positive curvature ", pkp, "; aborting");
            break;
        }
        const Real lambda = rd / pkp;
        axpy(lambda, p, x);
        axpy(lambda, kp, r);
        precond.apply(r, d);
        const Real rd_next = dot(r, d);
        const Real mu = rd_next / rd;
        rd = rd_next;
        for (std::size_t i = 0; i < n; ++i)
            p[i] = -d[i] + mu * p[i];

        ++result.iterations;
        r_norm = norm2(r);
        if (r_norm < threshold) {
            result.converged = true;
            break;
        }
    }
    result.residualNorm = r_norm;
    return result;
}

PcgResult
pcgSolve(const ReducedKktOperator& op, const JacobiPreconditioner& precond,
         const Vector& b, Vector& x, const PcgSettings& settings)
{
    return pcgSolve(
        [&op](const Vector& in, Vector& out) { op.apply(in, out); },
        precond, b, x, settings);
}

} // namespace rsqp
