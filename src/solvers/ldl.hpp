/**
 * @file
 * Sparse LDL' factorization for quasi-definite systems.
 *
 * Up-looking algorithm with an elimination-tree symbolic phase, in the
 * style of QDLDL (the factorization used inside OSQP's direct backend).
 * No pivoting is performed; quasi-definiteness of the OSQP KKT matrix
 * (sigma > 0, rho > 0) guarantees non-zero pivots in exact arithmetic.
 *
 * The symbolic analysis is done once per sparsity structure; numeric
 * refactorization (after a rho update or new problem data) reuses it,
 * exactly as in OSQP's three-stage scheme described in the paper.
 */

#ifndef RSQP_SOLVERS_LDL_HPP
#define RSQP_SOLVERS_LDL_HPP

#include <vector>

#include "common/types.hpp"
#include "linalg/csc.hpp"

namespace rsqp
{

/** LDL' factorization of an upper-triangle-stored symmetric matrix. */
class LdlFactorization
{
  public:
    /**
     * Run the symbolic analysis for the given upper-triangular pattern.
     * Every column must contain an explicit diagonal entry.
     */
    explicit LdlFactorization(const CscMatrix& upper);

    /**
     * Numeric factorization; the matrix must have exactly the sparsity
     * structure passed to the constructor.
     *
     * @return true on success, false if a zero pivot was hit.
     */
    bool factor(const CscMatrix& upper);

    /** Solve (LDL') x = b in place. factor() must have succeeded. */
    void solve(Vector& x) const;

    /** Dimension of the factored system. */
    Index dim() const { return n_; }

    /** Non-zeros in the strictly-lower factor L. */
    Count lnnz() const { return static_cast<Count>(li_.size()); }

    /** Number of positive / negative pivots (inertia check). */
    Index positivePivots() const { return posPivots_; }
    Index negativePivots() const { return negPivots_; }

    /** The diagonal D of the factorization. */
    const Vector& dVector() const { return d_; }

  private:
    Index n_ = 0;
    IndexVector parent_;     ///< elimination tree
    IndexVector lColPtr_;    ///< L column pointers (size n+1)
    IndexVector li_;         ///< L row indices (strictly lower)
    Vector lx_;              ///< L values
    Vector d_;               ///< pivot diagonal D
    Vector dinv_;            ///< 1 / D
    Index posPivots_ = 0;
    Index negPivots_ = 0;
    bool numericOk_ = false;

    // Workspaces reused across numeric factorizations.
    mutable IndexVector workFlag_;
    mutable IndexVector elimBuffer_;
    mutable IndexVector yIdx_;
    mutable Vector yVals_;
    IndexVector lNextSpace_;
};

} // namespace rsqp

#endif // RSQP_SOLVERS_LDL_HPP
