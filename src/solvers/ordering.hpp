/**
 * @file
 * Fill-reducing orderings for the direct KKT factorization.
 *
 * The reference OSQP uses AMD; we provide reverse Cuthill-McKee, which
 * keeps the LDL' factors compact on the banded/block-structured KKT
 * systems that dominate the benchmark (MPC, lasso, huber, ...), plus the
 * identity ordering as a baseline.
 */

#ifndef RSQP_SOLVERS_ORDERING_HPP
#define RSQP_SOLVERS_ORDERING_HPP

#include "common/types.hpp"
#include "linalg/csc.hpp"

namespace rsqp
{

/** Ordering strategy selector for the direct solver. */
enum class OrderingKind
{
    Natural,    ///< identity permutation
    Rcm,        ///< reverse Cuthill-McKee
    MinDegree,  ///< greedy minimum degree (the AMD role in OSQP)
};

/**
 * Compute a reverse Cuthill-McKee ordering of the symmetric pattern
 * whose upper triangle is given.
 *
 * @param upper Upper-triangle CSC pattern of a symmetric matrix.
 * @return perm where perm[i] is the original index at new position i.
 */
IndexVector reverseCuthillMcKee(const CscMatrix& upper);

/**
 * Greedy minimum-degree ordering on the elimination graph (the
 * classical fill-reducing heuristic; OSQP uses its approximate
 * variant, AMD). Exact degree updates, lazy heap; intended for the
 * moderate KKT sizes of the direct backend.
 */
IndexVector minimumDegree(const CscMatrix& upper);

/** Dispatch on OrderingKind; Natural returns the identity. */
IndexVector computeOrdering(const CscMatrix& upper, OrderingKind kind);

/**
 * Bandwidth of the symmetric pattern under a permutation — the metric
 * RCM minimizes; exported for tests and the ordering ablation bench.
 */
Index symmetricBandwidth(const CscMatrix& upper, const IndexVector& perm);

} // namespace rsqp

#endif // RSQP_SOLVERS_ORDERING_HPP
