#include "kkt_solver.hpp"

#include "common/logging.hpp"
#include "linalg/vector_ops.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace
{

/** Count LDL'-fallback rescues of PCG breakdowns process-wide. */
void
countFallback()
{
    static rsqp::telemetry::Counter& fallbacks =
        rsqp::telemetry::MetricsRegistry::global().counter(
            "rsqp_kkt_pcg_fallbacks_total",
            "KKT steps rescued by the direct LDL' fallback");
    fallbacks.increment();
}

} // namespace

namespace rsqp
{

DirectKktSolver::DirectKktSolver(const CscMatrix& p_upper,
                                 const CscMatrix& a, Real sigma,
                                 const Vector& rho_vec,
                                 OrderingKind ordering)
    : n_(p_upper.cols()), m_(a.rows()),
      assembler_(p_upper, a, sigma, rho_vec), rhoVec_(rho_vec)
{
    perm_ = computeOrdering(assembler_.kkt(), ordering);
    invPerm_.resize(perm_.size());
    for (Index i = 0; i < static_cast<Index>(perm_.size()); ++i)
        invPerm_[static_cast<std::size_t>(
            perm_[static_cast<std::size_t>(i)])] = i;
    kktPermuted_ = assembler_.kkt().symUpperPermute(perm_);
    ldl_ = std::make_unique<LdlFactorization>(kktPermuted_);
    refactor();
}

void
DirectKktSolver::refactor()
{
    kktPermuted_ = assembler_.kkt().symUpperPermute(perm_);
    if (!ldl_->factor(kktPermuted_))
        RSQP_FATAL("LDL factorization hit a zero pivot; the KKT system "
                   "is not quasi-definite (check sigma/rho)");
    needRefactor_ = false;
}

KktSolveStats
DirectKktSolver::solve(const Vector& rhs_x, const Vector& rhs_z,
                       Vector& x_tilde, Vector& z_tilde)
{
    TELEMETRY_SPAN("kkt.ldl");
    RSQP_ASSERT(static_cast<Index>(rhs_x.size()) == n_, "rhs_x size");
    RSQP_ASSERT(static_cast<Index>(rhs_z.size()) == m_, "rhs_z size");

    KktSolveStats stats;
    if (needRefactor_) {
        refactor();
        stats.refactorized = true;
    }

    // Assemble, permute, solve, un-permute.
    work_.resize(static_cast<std::size_t>(n_ + m_));
    Vector permuted(static_cast<std::size_t>(n_ + m_));
    for (Index i = 0; i < n_; ++i)
        work_[static_cast<std::size_t>(i)] =
            rhs_x[static_cast<std::size_t>(i)];
    for (Index i = 0; i < m_; ++i)
        work_[static_cast<std::size_t>(n_ + i)] =
            rhs_z[static_cast<std::size_t>(i)];
    for (Index i = 0; i < n_ + m_; ++i)
        permuted[static_cast<std::size_t>(i)] =
            work_[static_cast<std::size_t>(perm_[static_cast<std::size_t>(
                i)])];

    ldl_->solve(permuted);

    for (Index i = 0; i < n_ + m_; ++i)
        work_[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])] =
            permuted[static_cast<std::size_t>(i)];

    x_tilde.assign(work_.begin(), work_.begin() + n_);
    // z_tilde = rhs_z + diag(1/rho) * nu.
    z_tilde.resize(static_cast<std::size_t>(m_));
    for (Index i = 0; i < m_; ++i)
        z_tilde[static_cast<std::size_t>(i)] =
            rhs_z[static_cast<std::size_t>(i)] +
            work_[static_cast<std::size_t>(n_ + i)] /
                rhoVec_[static_cast<std::size_t>(i)];
    return stats;
}

void
DirectKktSolver::updateRho(const Vector& rho_vec)
{
    rhoVec_ = rho_vec;
    assembler_.updateRho(rho_vec);
    needRefactor_ = true;
}

bool
DirectKktSolver::updateMatrixValues(const std::vector<Real>& p_values,
                                    const std::vector<Real>& a_values)
{
    assembler_.updateMatrices(p_values, a_values);
    needRefactor_ = true;
    return true;
}

IndirectKktSolver::IndirectKktSolver(const CscMatrix& p_upper,
                                     const CscMatrix& a, Real sigma,
                                     const Vector& rho_vec,
                                     PcgSettings pcg_settings)
    : p_(&p_upper), a_(&a), sigma_(sigma), op_(p_upper, a, sigma, rho_vec),
      precond_(op_.diagonal()), pcgSettings_(pcg_settings),
      rhoVec_(rho_vec)
{
    warmX_.assign(static_cast<std::size_t>(p_upper.cols()), 0.0);
    pcgWorkspace_.resize(static_cast<std::size_t>(p_upper.cols()));
    if (pcgSettings_.precision == PrecisionMode::MixedFp32) {
        op_.enableFp32Mirror();
        mixedWorkspace_.resize(static_cast<std::size_t>(p_upper.cols()));
    }
}

bool
IndirectKktSolver::solveWithFallback(const Vector& rhs_x,
                                     const Vector& rhs_z, Vector& x_tilde,
                                     Vector& z_tilde)
{
    if (!pcgSettings_.directFallback)
        return false;
    if (fallback_ == nullptr) {
        try {
            fallback_ = std::make_unique<DirectKktSolver>(
                *p_, *a_, sigma_, rhoVec_);
        } catch (const FatalError& err) {
            RSQP_WARN("pcg fallback: LDL factorization unavailable (",
                      err.what(), ")");
            return false;
        }
    }
    fallback_->solve(rhs_x, rhs_z, x_tilde, z_tilde);
    ++fallbackSolves_;
    return true;
}

KktSolveStats
IndirectKktSolver::solve(const Vector& rhs_x, const Vector& rhs_z,
                         Vector& x_tilde, Vector& z_tilde)
{
    TELEMETRY_SPAN("kkt.pcg");
    // Record the hot-path phases of everything below (rhs build, PCG
    // loop, final A x) into this solver's profiler.
    HotPathProfilerScope profile_scope(
        pcgSettings_.profile ? &profiler_ : nullptr);

    // b = rhs_x + A' diag(rho) rhs_z — the rho scaling happens inside
    // the gather, with no length-m temporary.
    reducedRhs_ = rhs_x;
    op_.accumulateAtRho(rhs_z, reducedRhs_);

    // Warm-start from the previous solution (the iterates converge, so
    // consecutive systems have nearby solutions).
    x_tilde = warmX_;
    PcgSettings effective = pcgSettings_;
    effective.epsRel = pcgSettings_.effectiveEpsRel(solveCount_++);
    effective.adaptiveTolerance = false;
    const PcgResult pcg =
        pcgSettings_.precision == PrecisionMode::MixedFp32
            ? pcgSolveMixed(op_, precond_, reducedRhs_, x_tilde,
                            effective, mixedWorkspace_)
            : pcgSolve(op_, precond_, reducedRhs_, x_tilde, effective,
                       pcgWorkspace_);
    lastPcgIters_ = pcg.iterations;
    totalPcgIters_ += pcg.iterations;

    KktSolveStats stats;
    stats.pcgIterations = pcg.iterations;
    stats.pcgBreakdown = pcg.breakdown;
    stats.refinementSweeps = pcg.refinementSweeps;
    stats.usedMixedPrecision = pcg.usedMixedPrecision;
    stats.fp64Rescue = pcg.fp64Rescue;

    if (pcg.breakdown != PcgBreakdown::None) {
        RSQP_WARN("pcg breakdown (", toString(pcg.breakdown),
                  ") after ", pcg.iterations, " iters; trying LDL' "
                  "fallback");
        if (solveWithFallback(rhs_x, rhs_z, x_tilde, z_tilde)) {
            stats.usedFallback = true;
            countFallback();
            // Re-warm PCG from the trustworthy direct solution so the
            // next step starts from a clean Krylov state.
            warmX_ = x_tilde;
            if (pcgSettings_.profile)
                stats.hotPath = profiler_.snapshot();
            return stats;
        }
        // No fallback: surrender the poisoned warm start (a NaN here
        // would contaminate every later solve) and hand the caller the
        // tagged breakdown iterate for its own screens to judge.
        if (hasNonFinite(x_tilde))
            warmX_.assign(warmX_.size(), 0.0);
        else
            warmX_ = x_tilde;
        op_.applyA(x_tilde, z_tilde);
        if (pcgSettings_.profile)
            stats.hotPath = profiler_.snapshot();
        return stats;
    }

    if (!pcg.converged)
        RSQP_WARN("PCG hit the iteration cap (", pcg.iterations,
                  " iters, residual ", pcg.residualNorm, ")");
    warmX_ = x_tilde;

    op_.applyA(x_tilde, z_tilde);
    if (pcgSettings_.profile)
        stats.hotPath = profiler_.snapshot();
    return stats;
}

void
IndirectKktSolver::updateRho(const Vector& rho_vec)
{
    rhoVec_ = rho_vec;
    // O(nnz(A)) diagonal refresh off the cached rho-independent parts;
    // the preconditioner rebuilds in place from the cached diagonal —
    // no full diagonal() re-scan, no reallocation.
    op_.setRho(rho_vec);
    precond_.rebuild(op_.diagonal());
    if (fallback_ != nullptr)
        fallback_->updateRho(rho_vec);
}

bool
IndirectKktSolver::updateMatrixValues(const std::vector<Real>& p_values,
                                      const std::vector<Real>& a_values)
{
    // The caller already rewrote the P/A matrices this operator
    // references; re-read them through the construction-time slot maps.
    op_.refreshValues();
    precond_.rebuild(op_.diagonal());
    if (fallback_ != nullptr)
        fallback_->updateMatrixValues(p_values, a_values);
    return true;
}

} // namespace rsqp
