#include "ldl.hpp"

#include "common/logging.hpp"

namespace rsqp
{

namespace
{
constexpr Index kUnused = -1;
} // namespace

LdlFactorization::LdlFactorization(const CscMatrix& upper)
    : n_(upper.cols())
{
    RSQP_ASSERT(upper.rows() == upper.cols(), "LDL needs a square matrix");
    const auto& col_ptr = upper.colPtr();
    const auto& row_idx = upper.rowIdx();

    parent_.assign(static_cast<std::size_t>(n_), kUnused);
    IndexVector lnz(static_cast<std::size_t>(n_), 0);
    IndexVector work(static_cast<std::size_t>(n_), kUnused);

    // Elimination tree + column counts (QDLDL_etree).
    for (Index j = 0; j < n_; ++j) {
        work[static_cast<std::size_t>(j)] = j;
        bool has_diag = false;
        for (Index p = col_ptr[j]; p < col_ptr[j + 1]; ++p) {
            Index i = row_idx[p];
            if (i > j)
                RSQP_FATAL("LDL input is not upper-triangular");
            if (i == j) {
                has_diag = true;
                continue;
            }
            while (work[static_cast<std::size_t>(i)] != j) {
                if (parent_[static_cast<std::size_t>(i)] == kUnused)
                    parent_[static_cast<std::size_t>(i)] = j;
                ++lnz[static_cast<std::size_t>(i)];
                work[static_cast<std::size_t>(i)] = j;
                i = parent_[static_cast<std::size_t>(i)];
            }
        }
        if (!has_diag)
            RSQP_FATAL("LDL input is missing diagonal entry in column ", j);
    }

    lColPtr_.assign(static_cast<std::size_t>(n_) + 1, 0);
    for (Index i = 0; i < n_; ++i)
        lColPtr_[static_cast<std::size_t>(i) + 1] =
            lColPtr_[static_cast<std::size_t>(i)] +
            lnz[static_cast<std::size_t>(i)];

    const auto total = static_cast<std::size_t>(lColPtr_.back());
    li_.assign(total, 0);
    lx_.assign(total, 0.0);
    d_.assign(static_cast<std::size_t>(n_), 0.0);
    dinv_.assign(static_cast<std::size_t>(n_), 0.0);
    workFlag_.assign(static_cast<std::size_t>(n_), kUnused);
    elimBuffer_.assign(static_cast<std::size_t>(n_), 0);
    yIdx_.assign(static_cast<std::size_t>(n_), 0);
    yVals_.assign(static_cast<std::size_t>(n_), 0.0);
    lNextSpace_.assign(static_cast<std::size_t>(n_), 0);
}

bool
LdlFactorization::factor(const CscMatrix& upper)
{
    RSQP_ASSERT(upper.cols() == n_, "structure mismatch in factor()");
    const auto& col_ptr = upper.colPtr();
    const auto& row_idx = upper.rowIdx();
    const auto& values = upper.values();

    numericOk_ = false;
    posPivots_ = 0;
    negPivots_ = 0;
    for (Index i = 0; i < n_; ++i) {
        lNextSpace_[static_cast<std::size_t>(i)] =
            lColPtr_[static_cast<std::size_t>(i)];
        workFlag_[static_cast<std::size_t>(i)] = kUnused;
        yVals_[static_cast<std::size_t>(i)] = 0.0;
    }

    // Up-looking factorization, one row of L per step k.
    for (Index k = 0; k < n_; ++k) {
        Index nnz_y = 0;
        d_[static_cast<std::size_t>(k)] = 0.0;

        // Scatter column k of A into the sparse accumulator y and
        // compute the nonzero pattern of row k of L via etree climbs.
        for (Index p = col_ptr[k]; p < col_ptr[k + 1]; ++p) {
            const Index i = row_idx[p];
            if (i == k) {
                d_[static_cast<std::size_t>(k)] = values[p];
                continue;
            }
            yVals_[static_cast<std::size_t>(i)] += values[p];
            Index b = i;
            Index nnz_e = 0;
            // Climb the elimination tree until hitting k, a node already
            // flagged for this step, or (defensively) a tree root.
            while (b != kUnused && b < k &&
                   workFlag_[static_cast<std::size_t>(b)] != k) {
                workFlag_[static_cast<std::size_t>(b)] = k;
                elimBuffer_[static_cast<std::size_t>(nnz_e++)] = b;
                b = parent_[static_cast<std::size_t>(b)];
            }
            // Reverse the climb so ancestors end up deeper in yIdx.
            while (nnz_e > 0)
                yIdx_[static_cast<std::size_t>(nnz_y++)] =
                    elimBuffer_[static_cast<std::size_t>(--nnz_e)];
        }

        // Process pattern entries in topological (stack) order.
        for (Index s = nnz_y - 1; s >= 0; --s) {
            const Index c = yIdx_[static_cast<std::size_t>(s)];
            const Real y_c = yVals_[static_cast<std::size_t>(c)];

            // Sparse triangular update with the existing column c of L.
            for (Index p = lColPtr_[static_cast<std::size_t>(c)];
                 p < lNextSpace_[static_cast<std::size_t>(c)]; ++p) {
                yVals_[static_cast<std::size_t>(
                    li_[static_cast<std::size_t>(p)])] -=
                    lx_[static_cast<std::size_t>(p)] * y_c;
            }

            // Store L(k, c) and update the pivot.
            const Index slot = lNextSpace_[static_cast<std::size_t>(c)]++;
            const Real l_kc = y_c * dinv_[static_cast<std::size_t>(c)];
            li_[static_cast<std::size_t>(slot)] = k;
            lx_[static_cast<std::size_t>(slot)] = l_kc;
            d_[static_cast<std::size_t>(k)] -= y_c * l_kc;

            yVals_[static_cast<std::size_t>(c)] = 0.0;
        }

        const Real pivot = d_[static_cast<std::size_t>(k)];
        if (pivot == 0.0)
            return false;
        if (pivot > 0.0)
            ++posPivots_;
        else
            ++negPivots_;
        dinv_[static_cast<std::size_t>(k)] = 1.0 / pivot;
    }
    numericOk_ = true;
    return true;
}

void
LdlFactorization::solve(Vector& x) const
{
    RSQP_ASSERT(numericOk_, "solve() before a successful factor()");
    RSQP_ASSERT(static_cast<Index>(x.size()) == n_, "rhs size mismatch");

    // Forward substitution: L y = b.
    for (Index j = 0; j < n_; ++j) {
        const Real xj = x[static_cast<std::size_t>(j)];
        if (xj == 0.0)
            continue;
        for (Index p = lColPtr_[static_cast<std::size_t>(j)];
             p < lColPtr_[static_cast<std::size_t>(j) + 1]; ++p)
            x[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])] -=
                lx_[static_cast<std::size_t>(p)] * xj;
    }
    // Diagonal solve: D z = y.
    for (Index j = 0; j < n_; ++j)
        x[static_cast<std::size_t>(j)] *= dinv_[static_cast<std::size_t>(j)];
    // Backward substitution: L' x = z.
    for (Index j = n_ - 1; j >= 0; --j) {
        Real acc = x[static_cast<std::size_t>(j)];
        for (Index p = lColPtr_[static_cast<std::size_t>(j)];
             p < lColPtr_[static_cast<std::size_t>(j) + 1]; ++p)
            acc -= lx_[static_cast<std::size_t>(p)] *
                x[static_cast<std::size_t>(li_[static_cast<std::size_t>(p)])];
        x[static_cast<std::size_t>(j)] = acc;
    }
}

} // namespace rsqp
