/**
 * @file
 * Linear-system backends for the OSQP iteration (paper Section 2.2).
 *
 * DirectKktSolver factors the full indefinite KKT matrix with LDL' and
 * reuses the numeric factorization until rho changes. IndirectKktSolver
 * solves the reduced positive-definite system with PCG and never forms
 * K explicitly. Both present the same interface so the ADMM loop is
 * backend-agnostic — the same split OSQP uses to host MKL, cuOSQP, or
 * the RSQP accelerator.
 */

#ifndef RSQP_SOLVERS_KKT_SOLVER_HPP
#define RSQP_SOLVERS_KKT_SOLVER_HPP

#include <memory>
#include <vector>

#include "common/profile.hpp"
#include "common/types.hpp"
#include "linalg/csc.hpp"
#include "linalg/kkt.hpp"
#include "solvers/ldl.hpp"
#include "solvers/ordering.hpp"
#include "solvers/pcg.hpp"

namespace rsqp
{

/** Per-solve statistics reported back to the ADMM loop. */
struct KktSolveStats
{
    Index pcgIterations = 0;   ///< 0 for the direct backend
    bool refactorized = false; ///< direct backend only
    bool usedFallback = false; ///< PCG broke down; LDL' solved the step
    PcgBreakdown pcgBreakdown = PcgBreakdown::None;
    /// fp64 refinement sweeps (mixed-precision indirect backend only).
    Index refinementSweeps = 0;
    /// This step ran the fp32-storage inner path.
    bool usedMixedPrecision = false;
    /// Mixed mode stalled; a full-fp64 PCG solve finished the step.
    bool fp64Rescue = false;
    /// Cumulative hot-path counters through this solve (indirect
    /// backend with PcgSettings::profile only; zeros otherwise).
    HotPathProfile hotPath;
};

/**
 * Abstract solver of the ADMM equality-QP step.
 *
 * Given rhs_x = sigma*x - q and rhs_z = z - y/rho, produce
 * x_tilde (the new primal iterate candidate) and z_tilde = A x_tilde.
 */
class KktSolver
{
  public:
    virtual ~KktSolver() = default;

    /** Solve the step; returns per-call statistics. */
    virtual KktSolveStats solve(const Vector& rhs_x, const Vector& rhs_z,
                                Vector& x_tilde, Vector& z_tilde) = 0;

    /** Inform the backend of a rho change. */
    virtual void updateRho(const Vector& rho_vec) = 0;

    /**
     * Refresh P/A values in place after the problem data changed with
     * an unchanged sparsity pattern (the caller already rewrote the
     * matrices the backend references). Returns false when the backend
     * cannot update incrementally — the caller must rebuild it.
     */
    virtual bool
    updateMatrixValues(const std::vector<Real>&, const std::vector<Real>&)
    {
        return false;
    }

    /** Human-readable backend name for reports. */
    virtual const char* name() const = 0;

    /** Cumulative PCG iterations (0 for direct). */
    virtual Count totalPcgIterations() const { return 0; }

    /** Hot-path profiler, when the backend records one (else null). */
    virtual const HotPathProfiler* hotPathProfiler() const
    {
        return nullptr;
    }

    /** Zero the hot-path counters (no-op without a profiler). */
    virtual void resetHotPathProfile() {}
};

/** LDL'-based direct backend (OSQP's default "qdldl" backend). */
class DirectKktSolver : public KktSolver
{
  public:
    /**
     * @param p_upper Hessian (upper-triangle CSC).
     * @param a Constraint matrix.
     * @param sigma ADMM sigma.
     * @param rho_vec Initial per-constraint rho.
     * @param ordering Fill-reducing ordering strategy.
     */
    DirectKktSolver(const CscMatrix& p_upper, const CscMatrix& a,
                    Real sigma, const Vector& rho_vec,
                    OrderingKind ordering = OrderingKind::Rcm);

    KktSolveStats solve(const Vector& rhs_x, const Vector& rhs_z,
                        Vector& x_tilde, Vector& z_tilde) override;
    void updateRho(const Vector& rho_vec) override;
    bool updateMatrixValues(const std::vector<Real>& p_values,
                            const std::vector<Real>& a_values) override;
    const char* name() const override { return "direct-ldl"; }

    /** Factor non-zero count (for reporting). */
    Count factorNnz() const { return ldl_->lnnz(); }

  private:
    void refactor();

    Index n_;
    Index m_;
    KktAssembler assembler_;
    IndexVector perm_;     ///< ordering permutation
    IndexVector invPerm_;  ///< inverse permutation
    CscMatrix kktPermuted_;
    std::unique_ptr<LdlFactorization> ldl_;
    Vector rhoVec_;
    Vector work_;
    bool needRefactor_ = true;
};

/** PCG-based indirect backend (cuOSQP / RSQP style). */
class IndirectKktSolver : public KktSolver
{
  public:
    IndirectKktSolver(const CscMatrix& p_upper, const CscMatrix& a,
                      Real sigma, const Vector& rho_vec,
                      PcgSettings pcg_settings = {});

    KktSolveStats solve(const Vector& rhs_x, const Vector& rhs_z,
                        Vector& x_tilde, Vector& z_tilde) override;
    void updateRho(const Vector& rho_vec) override;
    bool updateMatrixValues(const std::vector<Real>& p_values,
                            const std::vector<Real>& a_values) override;
    const char* name() const override { return "indirect-pcg"; }
    Count totalPcgIterations() const override { return totalPcgIters_; }

    const HotPathProfiler*
    hotPathProfiler() const override
    {
        return pcgSettings_.profile ? &profiler_ : nullptr;
    }

    void resetHotPathProfile() override { profiler_.reset(); }

    /** Iterations used by the most recent solve. */
    Index lastPcgIterations() const { return lastPcgIters_; }

    /** Steps answered by the LDL' fallback after a PCG breakdown. */
    Count fallbackSolves() const { return fallbackSolves_; }

  private:
    /**
     * Solve this step with a lazily constructed DirectKktSolver.
     * Returns false if the fallback is disabled or its factorization
     * fails (the caller keeps the PCG iterate and its breakdown tag).
     */
    bool solveWithFallback(const Vector& rhs_x, const Vector& rhs_z,
                           Vector& x_tilde, Vector& z_tilde);

    const CscMatrix* p_;  ///< Hessian upper triangle (fallback input)
    const CscMatrix* a_;
    Real sigma_;
    ReducedKktOperator op_;
    JacobiPreconditioner precond_;  ///< rebuilt in place on rho change
    PcgSettings pcgSettings_;
    Vector rhoVec_;
    Vector warmX_;     ///< previous solution for warm starting
    Vector reducedRhs_;
    PcgWorkspace pcgWorkspace_;  ///< persistent CG vectors (no realloc)
    MixedPcgWorkspace mixedWorkspace_;  ///< mixed-precision mode only
    HotPathProfiler profiler_;   ///< active while this solver solves
    Index lastPcgIters_ = 0;
    Count totalPcgIters_ = 0;
    Count solveCount_ = 0;  ///< drives the adaptive tolerance schedule
    std::unique_ptr<DirectKktSolver> fallback_;  ///< built on first use
    Count fallbackSolves_ = 0;
};

} // namespace rsqp

#endif // RSQP_SOLVERS_KKT_SOLVER_HPP
