/**
 * @file
 * Preconditioned Conjugate Gradient — Algorithm 2 of the paper.
 *
 * The operator K is applied matrix-free; the preconditioner is the
 * Jacobi (diagonal) preconditioner diag(K), the choice used by both
 * cuOSQP and RSQP. The loop structure matches the paper line by line so
 * the architecture program lowering (src/arch/program_builder) can be
 * validated against this reference.
 */

#ifndef RSQP_SOLVERS_PCG_HPP
#define RSQP_SOLVERS_PCG_HPP

#include <functional>

#include "common/execution.hpp"
#include "common/types.hpp"
#include "linalg/kkt.hpp"

namespace rsqp
{

/** Configuration of a PCG solve. */
struct PcgSettings
{
    /**
     * Relative residual tolerance: stop when ||r|| < eps * ||b||.
     * The floor must sit well below the ADMM termination tolerance or
     * the inexact subproblem solves stall the outer iteration (1e-9
     * supports eps_abs/eps_rel down to ~1e-6).
     */
    Real epsRel = 1e-9;
    /** Absolute floor so a zero rhs terminates immediately. */
    Real epsAbs = 1e-12;
    /** Hard iteration cap. */
    Index maxIter = 5000;

    /**
     * Adaptive tolerance schedule (cuOSQP-style): early ADMM iterations
     * tolerate loose PCG solves. Solve k uses
     *   epsRel_k = max(epsRel, epsRelStart * epsRelDecay^k).
     */
    bool adaptiveTolerance = true;
    Real epsRelStart = 1e-2;
    Real epsRelDecay = 0.85;

    /** Effective relative tolerance for the k-th consecutive solve. */
    Real
    effectiveEpsRel(Count solve_index) const
    {
        if (!adaptiveTolerance)
            return epsRel;
        Real eps = epsRelStart;
        for (Count i = 0; i < solve_index && eps > epsRel; ++i)
            eps *= epsRelDecay;
        return eps > epsRel ? eps : epsRel;
    }

    /**
     * Declare stagnation breakdown after this many consecutive
     * iterations without the residual norm improving on its best by
     * at least 0.1% (0 disables the check). Distinct from a clean
     * maxIter cap-out: stagnation means the Krylov recurrence has
     * stopped making progress (lost conjugacy, corrupted operator)
     * and more iterations cannot help.
     */
    Index stagnationWindow = 250;

    /**
     * Let IndirectKktSolver answer a broken-down PCG solve with the
     * DirectKktSolver LDL' path for that step (the PCG warm start is
     * then re-seeded from the direct solution). A clean maxIter
     * cap-out never triggers the fallback — only a breakdown does.
     */
    bool directFallback = true;

    /**
     * Record per-phase hot-path counters (SpMV passes, fused kernels,
     * reductions) during IndirectKktSolver solves; surfaced through
     * KktSolveStats/OsqpInfo. Costs one thread-local read plus two
     * clock reads per instrumented kernel call.
     */
    bool profile = true;

    /**
     * Precision of the inner iterations. MixedFp32 runs fp32-storage /
     * fp64-accumulate CG sweeps inside an fp64 iterative-refinement
     * loop (pcgSolveMixed); the convergence test stays the fp64
     * residual, so the returned solution meets the same tolerance as
     * the Fp64 path. Only the ReducedKktOperator overloads honor this
     * — the generic std::function overloads always run Fp64.
     */
    PrecisionMode precision = PrecisionMode::Fp64;

    /**
     * Inner fp32 CG sweeps stop at this relative residual reduction
     * (fp32 storage can't push much below ~1e-5 anyway); refinement
     * then re-measures in fp64 and re-solves on the new residual.
     */
    Real mixedInnerEpsRel = 1e-4;

    /** Cap on fp64 refinement sweeps before declaring stagnation. */
    Index maxRefinementSweeps = 40;
};

/** Why a PCG solve gave up before converging. */
enum class PcgBreakdown
{
    None,                ///< converged, or a clean maxIter cap-out
    IndefiniteDirection, ///< p'Kp <= 0 or non-finite curvature
    NonFiniteResidual,   ///< NaN/Inf contaminated the recurrence
    Stagnation,          ///< no residual progress for stagnationWindow
};

/** Printable breakdown name. */
const char* toString(PcgBreakdown breakdown);

/** Outcome of a PCG solve. */
struct PcgResult
{
    Index iterations = 0;     ///< PCG iterations executed (all sweeps)
    Real residualNorm = 0.0;  ///< final ||K x - b||_2
    bool converged = false;
    PcgBreakdown breakdown = PcgBreakdown::None;

    /// fp64 refinement sweeps run (mixed-precision mode only).
    Index refinementSweeps = 0;
    /// Whether the fp32 inner path produced this solution.
    bool usedMixedPrecision = false;
    /// Mixed mode stalled and a full-fp64 solve finished the job.
    bool fp64Rescue = false;
};

/**
 * Diagonal (Jacobi) preconditioner: d -> r / diag(K).
 */
class JacobiPreconditioner
{
  public:
    /** Build from the operator diagonal; all entries must be positive. */
    explicit JacobiPreconditioner(const Vector& diagonal);

    /**
     * Rebuild in place from a new diagonal of the same length,
     * reusing the inverse-diagonal storage (no allocation). All
     * entries must be positive.
     */
    void rebuild(const Vector& diagonal);

    /**
     * out = M^-1 r (element-wise divide). out must already have the
     * preconditioner's size — callers own the storage (see
     * PcgWorkspace); this hot-path kernel never resizes.
     */
    void apply(const Vector& r, Vector& out) const;

    const Vector& inverseDiagonal() const { return invDiag_; }

  private:
    Vector invDiag_;
};

/**
 * Persistent work vectors of a PCG solve. Owned by the caller (one per
 * IndirectKktSolver) so the steady-state CG loop performs zero heap
 * allocations: resize() is a no-op once the problem size is fixed.
 */
struct PcgWorkspace
{
    Vector r;   ///< residual b - K x
    Vector d;   ///< preconditioned residual M^-1 r
    Vector p;   ///< search direction
    Vector kp;  ///< operator image K p

    /** Size every vector for an n-dimensional solve. */
    void
    resize(std::size_t n)
    {
        r.resize(n);
        d.resize(n);
        p.resize(n);
        kp.resize(n);
    }
};

/**
 * Work vectors of a mixed-precision PCG solve: fp32 CG state for the
 * inner sweeps plus fp64 residual/correction vectors for refinement.
 * Owned by the caller so the steady-state loop allocates nothing.
 */
struct MixedPcgWorkspace
{
    FloatVector r32;       ///< fp32 inner residual
    FloatVector d32;       ///< fp32 preconditioned residual
    FloatVector p32;       ///< fp32 search direction
    FloatVector kp32;      ///< fp32 operator image
    FloatVector e32;       ///< fp32 correction iterate
    FloatVector invDiag32; ///< fp32 Jacobi inverse diagonal
    Vector r64;            ///< fp64 outer residual b - K x
    Vector e64;            ///< widened correction
    PcgWorkspace rescue;   ///< fp64 workspace for the rescue solve

    /** Size every vector for an n-dimensional solve. */
    void
    resize(std::size_t n)
    {
        r32.resize(n);
        d32.resize(n);
        p32.resize(n);
        kp32.resize(n);
        e32.resize(n);
        invDiag32.resize(n);
        r64.resize(n);
        e64.resize(n);
        rescue.resize(n);
    }
};

/**
 * Run PCG on K x = b starting from x (warm start), overwriting x with
 * the solution. The workspace overloads reuse the caller's vectors;
 * the workspace-free overloads allocate a transient one per call.
 */
PcgResult pcgSolve(const ReducedKktOperator& op,
                   const JacobiPreconditioner& precond, const Vector& b,
                   Vector& x, const PcgSettings& settings,
                   PcgWorkspace& workspace);

PcgResult pcgSolve(const ReducedKktOperator& op,
                   const JacobiPreconditioner& precond, const Vector& b,
                   Vector& x, const PcgSettings& settings);

/**
 * Generic-operator overload used by the GPU model and tests: apply_k
 * computes y = K x.
 */
PcgResult pcgSolve(
    const std::function<void(const Vector&, Vector&)>& apply_k,
    const JacobiPreconditioner& precond, const Vector& b, Vector& x,
    const PcgSettings& settings, PcgWorkspace& workspace);

PcgResult pcgSolve(
    const std::function<void(const Vector&, Vector&)>& apply_k,
    const JacobiPreconditioner& precond, const Vector& b, Vector& x,
    const PcgSettings& settings);

/**
 * Mixed-precision solve of K x = b: fp32-storage / fp64-accumulate CG
 * sweeps (on the operator's fp32 mirror — enableFp32Mirror() must have
 * been called) inside an fp64 iterative-refinement loop. Convergence
 * is judged on the fp64 residual against the same epsRel/epsAbs
 * thresholds as pcgSolve, so a converged result is as accurate as the
 * pure-fp64 path. If refinement stalls (fp32 can't reduce the
 * residual further) or an inner sweep breaks down, the remaining gap
 * is closed by a full-fp64 pcgSolve rescue (result.fp64Rescue).
 */
PcgResult pcgSolveMixed(const ReducedKktOperator& op,
                        const JacobiPreconditioner& precond,
                        const Vector& b, Vector& x,
                        const PcgSettings& settings,
                        MixedPcgWorkspace& workspace);

PcgResult pcgSolveMixed(const ReducedKktOperator& op,
                        const JacobiPreconditioner& precond,
                        const Vector& b, Vector& x,
                        const PcgSettings& settings);

} // namespace rsqp

#endif // RSQP_SOLVERS_PCG_HPP
