#include "structure_adapt.hpp"

#include <algorithm>
#include <numeric>

#include "common/logging.hpp"
#include "common/random.hpp"

namespace rsqp
{

QpProblem
permuteProblem(const QpProblem& problem, const IndexVector& var_perm,
               const IndexVector& constraint_perm)
{
    const Index n = problem.numVariables();
    const Index m = problem.numConstraints();
    RSQP_ASSERT(static_cast<Index>(var_perm.size()) == n,
                "variable permutation size");
    RSQP_ASSERT(static_cast<Index>(constraint_perm.size()) == m,
                "constraint permutation size");

    IndexVector inv_var(var_perm.size());
    for (Index i = 0; i < n; ++i)
        inv_var[static_cast<std::size_t>(
            var_perm[static_cast<std::size_t>(i)])] = i;
    IndexVector inv_con(constraint_perm.size());
    for (Index i = 0; i < m; ++i)
        inv_con[static_cast<std::size_t>(
            constraint_perm[static_cast<std::size_t>(i)])] = i;

    QpProblem permuted;
    permuted.name = problem.name + "_perm";
    // Symmetric permutation of P (rows and columns together).
    permuted.pUpper = problem.pUpper.symUpperPermute(var_perm);
    // A: rows by the constraint permutation, columns by the variable
    // permutation.
    TripletList a_triplets(m, n);
    a_triplets.reserve(static_cast<std::size_t>(problem.a.nnz()));
    for (Index c = 0; c < n; ++c)
        for (Index p = problem.a.colPtr()[c];
             p < problem.a.colPtr()[c + 1]; ++p)
            a_triplets.add(
                inv_con[static_cast<std::size_t>(
                    problem.a.rowIdx()[p])],
                inv_var[static_cast<std::size_t>(c)],
                problem.a.values()[p]);
    permuted.a = CscMatrix::fromTriplets(a_triplets);

    permuted.q.resize(static_cast<std::size_t>(n));
    for (Index j = 0; j < n; ++j)
        permuted.q[static_cast<std::size_t>(j)] =
            problem.q[static_cast<std::size_t>(
                var_perm[static_cast<std::size_t>(j)])];
    permuted.l.resize(static_cast<std::size_t>(m));
    permuted.u.resize(static_cast<std::size_t>(m));
    for (Index i = 0; i < m; ++i) {
        const auto src = static_cast<std::size_t>(
            constraint_perm[static_cast<std::size_t>(i)]);
        permuted.l[static_cast<std::size_t>(i)] = problem.l[src];
        permuted.u[static_cast<std::size_t>(i)] = problem.u[src];
    }
    return permuted;
}

namespace
{

AdaptationCandidate
evaluateCandidate(const QpProblem& scaled,
                  const CustomizeSettings& settings,
                  IndexVector var_perm, IndexVector con_perm)
{
    AdaptationCandidate candidate;
    candidate.variablePerm = std::move(var_perm);
    candidate.constraintPerm = std::move(con_perm);
    const QpProblem permuted = permuteProblem(
        scaled, candidate.variablePerm, candidate.constraintPerm);
    // Sec. 4.4 compares achievable E_p/E_c, so every candidate is
    // customized under the same pure slot-count objective (the
    // time-aware objective of the end-to-end flow would confound the
    // comparison with fmax effects).
    CustomizeSettings fixed = settings;
    if (!fixed.search.objective)
        fixed.search.objective = [](const StructureSet&,
                                    Count slots) -> Real {
            return static_cast<Real>(slots);
        };
    const ProblemCustomization custom =
        customizeProblem(permuted, fixed);
    candidate.eta = custom.eta();
    candidate.ep = custom.totalEp();
    return candidate;
}

} // namespace

AdaptationResult
adaptProblemStructure(const QpProblem& scaled,
                      const CustomizeSettings& settings,
                      Index candidates, std::uint64_t seed)
{
    const Index n = scaled.numVariables();
    const Index m = scaled.numConstraints();

    IndexVector id_var(static_cast<std::size_t>(n));
    std::iota(id_var.begin(), id_var.end(), Index{0});
    IndexVector id_con(static_cast<std::size_t>(m));
    std::iota(id_con.begin(), id_con.end(), Index{0});

    AdaptationResult result;
    result.identity =
        evaluateCandidate(scaled, settings, id_var, id_con);
    result.best = result.identity;
    ++result.candidatesTried;

    auto consider = [&](IndexVector var_perm, IndexVector con_perm) {
        AdaptationCandidate candidate = evaluateCandidate(
            scaled, settings, std::move(var_perm),
            std::move(con_perm));
        ++result.candidatesTried;
        if (candidate.eta > result.best.eta)
            result.best = std::move(candidate);
    };

    // Heuristic candidate: cluster constraint rows by non-zero count
    // (groups rows of equal width into runs of equal characters).
    {
        const CsrMatrix a_csr = CsrMatrix::fromCsc(scaled.a);
        IndexVector by_nnz = id_con;
        std::stable_sort(by_nnz.begin(), by_nnz.end(),
                         [&](Index a, Index b) {
                             return a_csr.rowNnz(a) < a_csr.rowNnz(b);
                         });
        consider(id_var, std::move(by_nnz));
    }

    // Random symmetric permutations.
    Rng rng(seed);
    for (Index k = 1; k < candidates; ++k)
        consider(rng.permutation(n), rng.permutation(m));

    return result;
}

} // namespace rsqp
