/**
 * @file
 * On-chip memory accounting of a customized architecture.
 *
 * The CVBs are the dominant on-chip consumer: full duplication stores
 * C copies of every multiplicand vector — exactly the "severe
 * scalability pressure" of paper Sec. 3.4 — while the compressed
 * buffers shrink that to depth * C cells. The U50 offers 28.4 MB of
 * on-chip memory (Table 2), which every generated design must fit;
 * problems whose baseline exceeds it are precisely where CVB
 * compression is not merely faster but *enabling*.
 */

#ifndef RSQP_CORE_MEMORY_MODEL_HPP
#define RSQP_CORE_MEMORY_MODEL_HPP

#include "core/customization.hpp"

namespace rsqp
{

/** On-chip memory footprint breakdown (FP32 words -> bytes). */
struct OnChipMemoryEstimate
{
    Count cvbBytes = 0;    ///< vector-buffer cells across all CVBs
    Count vbBytes = 0;     ///< plain vector buffers (solver state)
    Count tableBytes = 0;  ///< index-translation + duplication tables
    Count totalBytes = 0;

    Real
    totalMb() const
    {
        return static_cast<Real>(totalBytes) / (1024.0 * 1024.0);
    }
};

/** Estimate the on-chip footprint of a customized problem. */
OnChipMemoryEstimate
estimateOnChipMemory(const ProblemCustomization& customization);

/** Does the design fit the U50's on-chip memory budget? */
bool fitsU50Memory(const OnChipMemoryEstimate& estimate);

} // namespace rsqp

#endif // RSQP_CORE_MEMORY_MODEL_HPP
