#include "design_space.hpp"

#include "common/logging.hpp"

namespace rsqp
{

DesignPoint
evaluateDesignPoint(const QpProblem& scaled, Index c,
                    const std::vector<std::string>& patterns,
                    bool compress_cvb)
{
    CustomizeSettings baseline_settings;
    baseline_settings.c = c;
    baseline_settings.customizeStructures = false;
    baseline_settings.compressCvb = false;
    const ProblemCustomization baseline =
        customizeProblem(scaled, baseline_settings);

    CustomizeSettings settings;
    settings.c = c;
    settings.customizeStructures = false;
    settings.compressCvb = compress_cvb;
    settings.forcedPatterns = patterns;
    const ProblemCustomization custom = customizeProblem(scaled, settings);

    DesignPoint point;
    point.name = custom.config.structures.name();
    point.fmaxMhz = estimateFmaxMhz(custom.config);
    point.eta = custom.eta();
    point.deltaEta = custom.eta() - baseline.eta();
    point.resources = estimateResources(custom.config);
    point.kApplyPacks = custom.kApplyPacks();
    // One K application = SpMV with P, A, A' back to back, plus the
    // pipeline fill per SpMV instruction.
    const Real cycles = static_cast<Real>(custom.kApplyPacks()) +
        3.0 * static_cast<Real>(custom.config.timings.spmvLatency);
    point.spmvPerUs = point.fmaxMhz / cycles;
    return point;
}

std::vector<DesignPoint>
exploreDesignSpace(const QpProblem& scaled)
{
    std::vector<DesignPoint> points;
    for (const Index c : {16, 32, 64}) {
        // Baseline (single-output tree, full duplication).
        points.push_back(evaluateDesignPoint(scaled, c, {}, false));

        // Structure sets of increasing size from the search.
        const CsrMatrix p_csr =
            CsrMatrix::fromCsc(scaled.pUpper.symUpperToFull());
        const CsrMatrix a_csr = CsrMatrix::fromCsc(scaled.a);
        const CsrMatrix at_csr = CsrMatrix::fromCsc(scaled.a.transpose());
        const SparsityString p_str = encodeMatrix(p_csr, c);
        const SparsityString a_str = encodeMatrix(a_csr, c);
        const SparsityString at_str = encodeMatrix(at_csr, c);
        for (const Index target : {2, 3, 5}) {
            StructureSearchSettings search;
            search.targetSize = target;
            const auto result = searchStructureSet(
                {&p_str, &a_str, &at_str}, search);
            std::vector<std::string> patterns = result.set.patterns();
            points.push_back(
                evaluateDesignPoint(scaled, c, patterns, true));
        }
    }
    return points;
}

} // namespace rsqp
