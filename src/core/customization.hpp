/**
 * @file
 * The problem-specific customization pipeline (paper Fig. 6):
 *
 *   problem structure -> sparsity-string encoding -> E_p optimization
 *   (LZW + greedy structure search) -> schedule -> HBM pack layout ->
 *   E_c optimization (First-Fit CVB compression) -> architecture
 *   configuration + match score eta.
 *
 * RSQP schedules three matrices on the same SpMV engine (P, A, A' —
 * plus an element-squared A' used to rebuild the PCG preconditioner on
 * device after rho updates), so the structure search optimizes their
 * strings jointly.
 */

#ifndef RSQP_CORE_CUSTOMIZATION_HPP
#define RSQP_CORE_CUSTOMIZATION_HPP

#include <string>

#include "arch/config.hpp"
#include "cvb/cvb.hpp"
#include "encoding/packing.hpp"
#include "encoding/scheduler.hpp"
#include "encoding/structure_search.hpp"
#include "osqp/problem.hpp"

namespace rsqp
{

/** Everything derived for one matrix under one architecture. */
struct MatrixArtifacts
{
    std::string name;
    CsrMatrix csr;
    SparsityString str;
    Schedule schedule;
    PackedMatrix packed;
    CvbPlan plan;

    /** Match score of this matrix's SpMV + duplication pair. */
    Real eta() const;
};

/** Customization settings. */
struct CustomizeSettings
{
    Index c = 64;                     ///< datapath width
    bool customizeStructures = true;  ///< run the E_p optimization
    bool compressCvb = true;          ///< run the E_c optimization
    bool fp32Datapath = false;        ///< FP32 MAC trees (the silicon)
    /** Simulation-host threads (0 = library default, 1 = serial). */
    Index numThreads = 0;
    /** Seeded HBM/MAC soft-error injection (testing only). */
    FaultInjectionConfig faultInjection;
    StructureSearchSettings search;   ///< E_p search knobs
    /** Explicit structure set (bypasses the search when non-empty). */
    std::vector<std::string> forcedPatterns;
};

/** Result of customizing one problem. */
struct ProblemCustomization
{
    ArchConfig config;
    MatrixArtifacts p;     ///< full symmetric P
    MatrixArtifacts a;     ///< A
    MatrixArtifacts at;    ///< A'
    MatrixArtifacts atSq;  ///< A' with squared values

    /** Aggregate E_p over P, A, A' (atSq mirrors at; not re-counted). */
    Count totalEp() const;
    /** Aggregate match score over the three SpMV matrices. */
    Real eta() const;
    /** Cycles of one K-operator application (3 SpMVs). */
    Count kApplyPacks() const;
};

/**
 * Run the full pipeline on a (scaled) problem.
 *
 * @param scaled The scaled problem as the accelerator will see it.
 * @param settings Pipeline knobs (width, which optimizations to run).
 */
ProblemCustomization customizeProblem(const QpProblem& scaled,
                                      const CustomizeSettings& settings);

/** Convenience: the paper's generic baseline at width c. */
ProblemCustomization baselineCustomization(const QpProblem& scaled,
                                           Index c);

} // namespace rsqp

#endif // RSQP_CORE_CUSTOMIZATION_HPP
