/**
 * @file
 * The problem-specific customization pipeline (paper Fig. 6):
 *
 *   problem structure -> sparsity-string encoding -> E_p optimization
 *   (LZW + greedy structure search) -> schedule -> HBM pack layout ->
 *   E_c optimization (First-Fit CVB compression) -> architecture
 *   configuration + match score eta.
 *
 * RSQP schedules three matrices on the same SpMV engine (P, A, A' —
 * plus an element-squared A' used to rebuild the PCG preconditioner on
 * device after rho updates), so the structure search optimizes their
 * strings jointly.
 */

#ifndef RSQP_CORE_CUSTOMIZATION_HPP
#define RSQP_CORE_CUSTOMIZATION_HPP

#include <memory>
#include <string>

#include "arch/config.hpp"
#include "cvb/cvb.hpp"
#include "encoding/packing.hpp"
#include "encoding/scheduler.hpp"
#include "encoding/structure_search.hpp"
#include "osqp/problem.hpp"

namespace rsqp
{

/** Everything derived for one matrix under one architecture. */
struct MatrixArtifacts
{
    std::string name;
    CsrMatrix csr;
    SparsityString str;
    Schedule schedule;
    PackedMatrix packed;
    CvbPlan plan;

    /** Match score of this matrix's SpMV + duplication pair. */
    Real eta() const;
};

/** Customization settings. */
struct CustomizeSettings
{
    Index c = 64;                     ///< datapath width
    bool customizeStructures = true;  ///< run the E_p optimization
    bool compressCvb = true;          ///< run the E_c optimization
    bool fp32Datapath = false;        ///< FP32 MAC trees (the silicon)
    /** Execution resources for the simulation host. */
    ExecutionConfig execution;

    /** Effective thread count of the simulation host. */
    Index
    resolvedNumThreads() const
    {
        return execution.numThreads;
    }

    /** Seeded HBM/MAC soft-error injection (testing only). */
    FaultInjectionConfig faultInjection;
    StructureSearchSettings search;   ///< E_p search knobs
    /** Explicit structure set (bypasses the search when non-empty). */
    std::vector<std::string> forcedPatterns;
};

/** Result of customizing one problem. */
struct ProblemCustomization
{
    ArchConfig config;
    MatrixArtifacts p;     ///< full symmetric P
    MatrixArtifacts a;     ///< A
    MatrixArtifacts at;    ///< A'
    MatrixArtifacts atSq;  ///< A' with squared values

    /** Aggregate E_p over P, A, A' (atSq mirrors at; not re-counted). */
    Count totalEp() const;
    /** Aggregate match score over the three SpMV matrices. */
    Real eta() const;
    /** Cycles of one K-operator application (3 SpMVs). */
    Count kApplyPacks() const;
};

/**
 * Run the full pipeline on a (scaled) problem.
 *
 * @param scaled The scaled problem as the accelerator will see it.
 * @param settings Pipeline knobs (width, which optimizations to run).
 */
ProblemCustomization customizeProblem(const QpProblem& scaled,
                                      const CustomizeSettings& settings);

/**
 * The value-blind half of one matrix customization: the encoded
 * sparsity string, its MAC-tree schedule and the CVB compression map —
 * everything except the CSR values and the packed HBM stream, all of
 * which are pure functions of the sparsity structure.
 */
struct FrozenMatrixArtifact
{
    std::string name;
    SparsityString str;
    Schedule schedule;
    CvbPlan plan;
};

/**
 * A frozen, reusable customization: the expensive per-structure work
 * (E_p structure search, scheduling, E_c CVB packing) detached from
 * any particular numeric values. Thawing against a value-distinct but
 * structurally identical problem reproduces customizeProblem() bitwise
 * while skipping the whole pipeline — the amortization unit of the
 * service layer's customization cache.
 */
struct CustomizationArtifact
{
    /**
     * The generated architecture. numThreads and faultInjection are
     * per-instance host knobs, overwritten at thaw time from the
     * caller's settings; everything else is part of the frozen design.
     */
    ArchConfig config;
    FrozenMatrixArtifact p;
    FrozenMatrixArtifact a;
    FrozenMatrixArtifact at;
    FrozenMatrixArtifact atSq;

    /** Approximate host-memory footprint (cache accounting). */
    Count footprintBytes() const;

    /** Structural compatibility with a (scaled) problem + settings. */
    bool compatibleWith(const QpProblem& scaled,
                        const CustomizeSettings& settings) const;
};

/** Detach the value-blind artifact from a finished customization. */
CustomizationArtifact
freezeCustomization(const ProblemCustomization& custom);

/**
 * Re-instantiate a customization from a frozen artifact and a (scaled)
 * problem with the same sparsity structure: rebuild the CSR mirrors
 * from the problem values and re-pack the HBM streams on the frozen
 * schedules. For a structure-identical problem the result is
 * bitwise-identical to customizeProblem(scaled, settings) — asserted
 * by the service tests — at O(nnz) cost instead of the full search.
 *
 * @param settings Supplies the per-instance host knobs (numThreads,
 *        faultInjection); its structural knobs (c, optimization flags)
 *        must match the artifact (see compatibleWith).
 */
ProblemCustomization
thawCustomization(const QpProblem& scaled,
                  const CustomizationArtifact& artifact,
                  const CustomizeSettings& settings);

/** Convenience: the paper's generic baseline at width c. */
ProblemCustomization baselineCustomization(const QpProblem& scaled,
                                           Index c);

} // namespace rsqp

#endif // RSQP_CORE_CUSTOMIZATION_HPP
