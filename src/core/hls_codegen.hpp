/**
 * @file
 * HLS code generation (paper Figs. 4-6): emit the problem-specific
 * C++/HLS description of the customized routing logic between the MAC
 * tree and the vector buffers, plus the top-level alignment function
 * that #includes it.
 *
 * On the paper's flow this text goes into the vendor HLS compiler; in
 * this reproduction it is the tangible "architecture generation"
 * artifact (and is validated structurally by the tests) while the
 * cycle-level machine plays the role of the bitstream.
 */

#ifndef RSQP_CORE_HLS_CODEGEN_HPP
#define RSQP_CORE_HLS_CODEGEN_HPP

#include <string>

#include "arch/config.hpp"
#include "encoding/mac_structure.hpp"

namespace rsqp
{

/**
 * Generate the `align_acc_cnt_switch.h` snippet of Fig. 4: a nested
 * switch over the per-cycle output count and the alignment pointer
 * that routes variable-length MAC outputs into C-wide groups.
 */
std::string generateAlignmentSwitch(const StructureSet& set);

/**
 * Generate the `spmv_align` top-level HLS function of Fig. 5 that
 * instantiates the switch.
 */
std::string generateSpmvAlignFunction(const StructureSet& set);

/**
 * Generate a self-contained architecture header: structure-set
 * constants, CVB geometry macros, and both snippets above.
 */
std::string generateArchitectureHeader(const ArchConfig& config);

} // namespace rsqp

#endif // RSQP_CORE_HLS_CODEGEN_HPP
