/**
 * @file
 * Umbrella public header of the RSQP library.
 *
 * Typical use:
 *
 * @code
 *   #include "core/rsqp.hpp"
 *
 *   rsqp::QpProblem qp = ...;            // P (upper CSC), q, A, l, u
 *   rsqp::OsqpSettings settings;         // defaults follow OSQP
 *   settings.backend = rsqp::KktBackend::IndirectPcg;
 *
 *   // Reference CPU solve:
 *   rsqp::OsqpSolver cpu(qp, settings);
 *   auto ref = cpu.solve();
 *
 *   // Accelerated solve on a problem-customized architecture:
 *   rsqp::CustomizeSettings custom;      // C = 64, E_p + E_c on
 *   rsqp::RsqpSolver fpga(qp, settings, custom);
 *   auto acc = fpga.solve();             // acc.deviceSeconds, acc.eta
 * @endcode
 */

#ifndef RSQP_CORE_RSQP_HPP
#define RSQP_CORE_RSQP_HPP

#include "common/random.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "core/customization.hpp"
#include "core/design_space.hpp"
#include "core/hls_codegen.hpp"
#include "core/memory_model.hpp"
#include "core/report.hpp"
#include "core/rsqp_solver.hpp"
#include "core/structure_adapt.hpp"
#include "encoding/lzw.hpp"
#include "encoding/match_score.hpp"
#include "gpu/gpu_model.hpp"
#include "hwmodel/devices.hpp"
#include "hwmodel/power.hpp"
#include "osqp/builder.hpp"
#include "osqp/polish.hpp"
#include "osqp/problem_io.hpp"
#include "osqp/residuals.hpp"
#include "osqp/solver.hpp"
#include "problems/generators.hpp"
#include "problems/suite.hpp"

#endif // RSQP_CORE_RSQP_HPP
