/**
 * @file
 * Problem-structure adaptation by symmetric permutation (paper
 * Sec. 4.4).
 *
 * Rows of P and A can be permuted to expose more repeated sub-strings
 * (lower E_p bound) or a sparser access matrix V (better E_c), but KKT
 * symmetry forces variable permutations to apply to rows *and* columns
 * simultaneously. This module implements the search the paper
 * describes — try candidate permutations, keep the best match score —
 * and reproduces its negative finding: the symmetric coupling leaves
 * little to gain (quantified by bench_ablation_permute).
 */

#ifndef RSQP_CORE_STRUCTURE_ADAPT_HPP
#define RSQP_CORE_STRUCTURE_ADAPT_HPP

#include "core/customization.hpp"

namespace rsqp
{

/** One evaluated permutation candidate. */
struct AdaptationCandidate
{
    IndexVector variablePerm;    ///< variable (symmetric) permutation
    IndexVector constraintPerm;  ///< constraint-row permutation
    Real eta = 0.0;              ///< match score after customization
    Count ep = 0;                ///< aggregate E_p
};

/** Result of the adaptation search. */
struct AdaptationResult
{
    AdaptationCandidate identity;  ///< the unpermuted baseline
    AdaptationCandidate best;      ///< best candidate found
    Index candidatesTried = 0;

    /** Relative eta gain of the best candidate over identity. */
    Real
    gain() const
    {
        return identity.eta > 0.0
            ? (best.eta - identity.eta) / identity.eta
            : 0.0;
    }
};

/**
 * Try `candidates` random symmetric permutations (plus sorting
 * constraint rows by non-zero count, a natural clustering heuristic)
 * and return the best-scoring one.
 *
 * @param scaled Scaled problem data.
 * @param settings Customization settings (width etc.).
 * @param candidates Number of random permutations to evaluate.
 * @param seed RNG seed for the candidate permutations.
 */
AdaptationResult adaptProblemStructure(const QpProblem& scaled,
                                       const CustomizeSettings& settings,
                                       Index candidates = 4,
                                       std::uint64_t seed = 1);

/**
 * Apply a symmetric variable permutation + constraint permutation to a
 * problem (P rows+columns, A columns and rows, q/l/u accordingly).
 * var_perm[i] = original variable at new position i.
 */
QpProblem permuteProblem(const QpProblem& problem,
                         const IndexVector& var_perm,
                         const IndexVector& constraint_perm);

} // namespace rsqp

#endif // RSQP_CORE_STRUCTURE_ADAPT_HPP
