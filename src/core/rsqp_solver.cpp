#include "rsqp_solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "hwmodel/resources.hpp"
#include "linalg/vector_ops.hpp"
#include "osqp/residuals.hpp"
#include "osqp/validate.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace rsqp
{

RsqpSolver::RsqpSolver(QpProblem problem, OsqpSettings settings,
                       CustomizeSettings custom)
    : RsqpSolver(std::move(problem), std::move(settings),
                 std::move(custom), nullptr)
{}

RsqpSolver::RsqpSolver(
    QpProblem problem, OsqpSettings settings, CustomizeSettings custom,
    std::shared_ptr<const CustomizationArtifact> artifact)
    : original_(std::move(problem)), settings_(std::move(settings))
{
    // Malformed problem data leaves the solver inert (machine_ stays
    // null); solve() then reports a typed InvalidProblem result with
    // the diagnostics instead of crashing the deployment flow.
    validation_ = validateProblem(original_);
    if (!validation_.ok()) {
        RSQP_WARN("problem '", original_.name,
                  "' failed validation:\n", validation_.describe());
        return;
    }
    // The device loop checks termination every checkInterval
    // iterations, so align maxIter (and the rho interval).
    const Index ci = settings_.checkInterval;
    settings_.maxIter = ((settings_.maxIter + ci - 1) / ci) * ci;
    if (settings_.adaptiveRho &&
        settings_.adaptiveRhoInterval % ci != 0) {
        settings_.adaptiveRhoInterval =
            ((settings_.adaptiveRhoInterval + ci - 1) / ci) * ci;
    }

    scaled_ = original_;
    scaling_ = ruizEquilibrate(scaled_, settings_.scalingIterations);

    if (artifact != nullptr &&
        artifact->compatibleWith(scaled_, custom)) {
        // Cache hit: the frozen structures/schedules/CVB plans apply
        // verbatim; only the value-dependent packing runs.
        custom_ = thawCustomization(scaled_, *artifact, custom);
        customizationReused_ = true;
    } else {
        if (artifact != nullptr)
            RSQP_WARN("customization artifact incompatible with "
                      "problem '", original_.name,
                      "'; running the full pipeline");
        custom_ = customizeProblem(scaled_, custom);
    }

    ArchConfig config = custom_.config;
    machine_ = std::make_unique<Machine>(config);
    mats_.p = machine_->addMatrix(custom_.p.packed, custom_.p.plan, "P");
    mats_.a = machine_->addMatrix(custom_.a.packed, custom_.a.plan, "A");
    mats_.at =
        machine_->addMatrix(custom_.at.packed, custom_.at.plan, "At");
    mats_.atSq = machine_->addMatrix(custom_.atSq.packed,
                                     custom_.atSq.plan, "AtSq");
    prog_ = buildOsqpProgram(*machine_, mats_, scaled_, scaling_,
                             settings_);
}

bool
RsqpSolver::warmStart(const Vector& x, const Vector& y)
{
    if (machine_ == nullptr)
        return false;  // inert solver: solve() reports InvalidProblem
    const Index n = original_.numVariables();
    const Index m = original_.numConstraints();
    if (static_cast<Index>(x.size()) != n ||
        static_cast<Index>(y.size()) != m) {
        // A malformed client guess must not take the solver down; the
        // next solve simply starts cold.
        RSQP_WARN("warmStart ignored: got sizes (", x.size(), ", ",
                  y.size(), "), expected (", n, ", ", m, ")");
        return false;
    }
    Vector xs(static_cast<std::size_t>(n));
    Vector ys(static_cast<std::size_t>(m));
    for (Index j = 0; j < n; ++j)
        xs[static_cast<std::size_t>(j)] =
            scaling_.dInv[static_cast<std::size_t>(j)] *
            x[static_cast<std::size_t>(j)];
    for (Index i = 0; i < m; ++i)
        ys[static_cast<std::size_t>(i)] = scaling_.c *
            scaling_.eInv[static_cast<std::size_t>(i)] *
            y[static_cast<std::size_t>(i)];
    Vector zs;
    scaled_.a.spmv(xs, zs);
    machine_->setHbmVector(prog_.hbmX0, std::move(xs));
    machine_->setHbmVector(prog_.hbmY0, std::move(ys));
    machine_->setHbmVector(prog_.hbmZ0, std::move(zs));
    return true;
}

void
RsqpSolver::updateLinearCost(const Vector& q)
{
    if (machine_ == nullptr)
        return;
    const Index n = original_.numVariables();
    RSQP_ASSERT(static_cast<Index>(q.size()) == n, "q size mismatch");
    original_.q = q;
    for (Index j = 0; j < n; ++j)
        scaled_.q[static_cast<std::size_t>(j)] = scaling_.c *
            scaling_.d[static_cast<std::size_t>(j)] *
            q[static_cast<std::size_t>(j)];
    machine_->setHbmVector(prog_.hbmQ, scaled_.q);
}

void
RsqpSolver::updateBounds(const Vector& l, const Vector& u)
{
    if (machine_ == nullptr)
        return;
    const Index m = original_.numConstraints();
    RSQP_ASSERT(static_cast<Index>(l.size()) == m &&
                static_cast<Index>(u.size()) == m, "bound size mismatch");
    for (Index i = 0; i < m; ++i)
        if (l[static_cast<std::size_t>(i)] > u[static_cast<std::size_t>(i)])
            RSQP_FATAL("updateBounds: l > u at constraint ", i);
    original_.l = l;
    original_.u = u;
    for (Index i = 0; i < m; ++i) {
        const auto s = static_cast<std::size_t>(i);
        scaled_.l[s] = (l[s] <= -kInf) ? l[s] : scaling_.e[s] * l[s];
        scaled_.u[s] = (u[s] >= kInf) ? u[s] : scaling_.e[s] * u[s];
    }
    machine_->setHbmVector(prog_.hbmL, scaled_.l);
    machine_->setHbmVector(prog_.hbmU, scaled_.u);

    // Constraint classes (equality / loose / regular) may change with
    // the bounds; refresh the device's rho class multipliers to keep
    // parity with OsqpSolver::buildRhoVec.
    Vector rho_scale(static_cast<std::size_t>(m), 1.0);
    for (Index i = 0; i < m; ++i) {
        const auto s = static_cast<std::size_t>(i);
        if (scaled_.l[s] <= -kInf && scaled_.u[s] >= kInf)
            rho_scale[s] = 0.0;
        else if (scaled_.u[s] - scaled_.l[s] < 1e-12)
            rho_scale[s] = settings_.rhoEqScale;
    }
    machine_->setHbmVector(prog_.hbmRhoScale, std::move(rho_scale));
}

void
RsqpSolver::updateMatrixValues(const std::vector<Real>& p_values,
                               const std::vector<Real>& a_values)
{
    if (machine_ == nullptr)
        return;
    const Index n = original_.numVariables();
    // 1. Update the unscaled data and re-apply the fixed scaling,
    //    exactly as the host solver does.
    if (!p_values.empty()) {
        RSQP_ASSERT(p_values.size() == original_.pUpper.values().size(),
                    "P value count mismatch");
        original_.pUpper.values() = p_values;
        auto& scaled_vals = scaled_.pUpper.values();
        const auto& col_ptr = scaled_.pUpper.colPtr();
        const auto& row_idx = scaled_.pUpper.rowIdx();
        for (Index c = 0; c < n; ++c)
            for (Index p = col_ptr[c]; p < col_ptr[c + 1]; ++p)
                scaled_vals[static_cast<std::size_t>(p)] = scaling_.c *
                    scaling_.d[static_cast<std::size_t>(row_idx[p])] *
                    scaling_.d[static_cast<std::size_t>(c)] *
                    p_values[static_cast<std::size_t>(p)];
    }
    if (!a_values.empty()) {
        RSQP_ASSERT(a_values.size() == original_.a.values().size(),
                    "A value count mismatch");
        original_.a.values() = a_values;
        auto& scaled_vals = scaled_.a.values();
        const auto& col_ptr = scaled_.a.colPtr();
        const auto& row_idx = scaled_.a.rowIdx();
        for (Index c = 0; c < n; ++c)
            for (Index p = col_ptr[c]; p < col_ptr[c + 1]; ++p)
                scaled_vals[static_cast<std::size_t>(p)] =
                    scaling_.e[static_cast<std::size_t>(row_idx[p])] *
                    scaling_.d[static_cast<std::size_t>(c)] *
                    a_values[static_cast<std::size_t>(p)];
    }
    if (p_values.empty() && a_values.empty())
        return;

    // 2. Re-pack the affected matrices on the existing schedules and
    //    rewrite the HBM streams (structure unchanged).
    const StructureSet& set = custom_.config.structures;
    auto repack = [&](MatrixArtifacts& artifacts, CsrMatrix csr,
                      Index mat_id) {
        artifacts.csr = std::move(csr);
        artifacts.packed = packMatrix(artifacts.csr, artifacts.str,
                                      artifacts.schedule, set);
        machine_->updateMatrixValues(mat_id, artifacts.packed);
    };
    if (!p_values.empty()) {
        repack(custom_.p,
               CsrMatrix::fromCsc(scaled_.pUpper.symUpperToFull()),
               mats_.p);
        // diag(P_scaled) + sigma feeds the on-device preconditioner.
        Vector diag_p_sigma = scaled_.pUpper.diagonalVector();
        for (Real& v : diag_p_sigma)
            v += settings_.sigma;
        machine_->setHbmVector(prog_.hbmDiagP, std::move(diag_p_sigma));
    }
    if (!a_values.empty()) {
        repack(custom_.a, CsrMatrix::fromCsc(scaled_.a), mats_.a);
        CsrMatrix at = CsrMatrix::fromCsc(scaled_.a.transpose());
        CsrMatrix at_sq = at;
        for (Real& v : at_sq.values())
            v *= v;
        repack(custom_.at, std::move(at), mats_.at);
        repack(custom_.atSq, std::move(at_sq), mats_.atSq);
    }
}

RsqpResult
RsqpSolver::solve()
{
    TELEMETRY_SPAN("device.run");
    RsqpResult result;
    result.telemetry.route = customizationReused_
        ? SolveRoute::CacheThaw
        : SolveRoute::FullCustomize;
    if (!validation_.ok()) {
        result.validation = validation_;
        result.status = SolveStatus::InvalidProblem;
        return result;
    }

    const Index n = original_.numVariables();
    const Index m = original_.numConstraints();

    // A corrupted device run can leave any scalar register non-finite;
    // screen before the (undefined-behavior) float->int casts below.
    const auto scalar_or = [&](Index id, Real fallback) {
        const Real v = machine_->scalarValue(id);
        return std::isfinite(v) ? clampReal(v, 0.0, 1e12) : fallback;
    };

    machine_->resetStats();

    // Under fault injection the run is retried once: each run() draws
    // a fresh deterministic fault pattern, so a transient soft error
    // does not condemn the solve. Cycle counts accumulate across
    // attempts — the retry cost is real device time.
    const FaultInjector* injector = machine_->faultInjector();
    const Index max_attempts = injector != nullptr ? 2 : 1;

    for (Index attempt = 1; attempt <= max_attempts; ++attempt) {
        machine_->run(prog_.program);

        const Vector& xs = machine_->hbmValue(prog_.hbmXOut);
        const Vector& ys = machine_->hbmValue(prog_.hbmYOut);
        const Vector& zs = machine_->hbmValue(prog_.hbmZOut);
        result.x.resize(static_cast<std::size_t>(n));
        result.y.resize(static_cast<std::size_t>(m));
        result.z.resize(static_cast<std::size_t>(m));
        for (Index j = 0; j < n; ++j)
            result.x[static_cast<std::size_t>(j)] =
                scaling_.d[static_cast<std::size_t>(j)] *
                xs[static_cast<std::size_t>(j)];
        for (Index i = 0; i < m; ++i) {
            const auto s = static_cast<std::size_t>(i);
            result.y[s] = scaling_.cInv * scaling_.e[s] * ys[s];
            result.z[s] = scaling_.eInv[s] * zs[s];
        }

        result.status = machine_->scalarValue(prog_.sStatus) > 0.5
            ? SolveStatus::Solved
            : SolveStatus::MaxIterReached;
        result.iterations =
            static_cast<Index>(scalar_or(prog_.sIterations, 0.0));
        result.pcgIterationsTotal =
            static_cast<Count>(scalar_or(prog_.sPcgTotal, 0.0));
        result.rhoUpdates =
            static_cast<Index>(scalar_or(prog_.sRhoUpdates, 0.0));
        result.primRes = machine_->scalarValue(prog_.sPrimRes);
        result.dualRes = machine_->scalarValue(prog_.sDualRes);

        bool healthy = !(hasNonFinite(result.x) ||
                         hasNonFinite(result.y) ||
                         hasNonFinite(result.z));
        if (healthy && injector != nullptr &&
            result.status == SolveStatus::Solved) {
            // The device's own convergence verdict rides on registers
            // the injector may have corrupted — re-verify on the host.
            const ResidualInfo res = computeResiduals(
                original_, result.x, result.y, result.z,
                settings_.epsAbs, settings_.epsRel);
            result.primRes = res.primRes;
            result.dualRes = res.dualRes;
            healthy = res.converged();
        }
        if (healthy)
            break;

        if (attempt < max_attempts) {
            result.recovery.record(
                RecoveryAction::FaultRetry, result.iterations,
                "device run returned non-finite or unverifiable "
                "results");
            ++result.recovery.faultRetries;
            continue;
        }

        // Out of retries: hand back finite zeros with a typed failure,
        // never a poisoned vector.
        result.x.assign(static_cast<std::size_t>(n), 0.0);
        result.y.assign(static_cast<std::size_t>(m), 0.0);
        result.z.assign(static_cast<std::size_t>(m), 0.0);
        result.primRes = kInf;
        result.dualRes = kInf;
        result.status = SolveStatus::NumericalError;
    }

    result.objective = original_.objective(result.x);
    if (injector != nullptr)
        result.faultsInjected = injector->faultsInjected();

    result.machineStats = machine_->stats();
    result.fmaxMhz = estimateFmaxMhz(custom_.config);
    result.deviceSeconds =
        static_cast<Real>(result.machineStats.totalCycles) /
        (result.fmaxMhz * 1e6);
    result.eta = custom_.eta();
    result.archName = custom_.config.name();

    // The device engine always runs the ADMM recurrence; the label
    // keeps device and host telemetry comparable per backend.
    result.telemetry.backend = "admm";
    result.telemetry.iterations = result.iterations;
    result.telemetry.kktSolves = static_cast<Count>(result.iterations);
    result.telemetry.pcgIterationsTotal = result.pcgIterationsTotal;
    if (result.iterations > 0)
        result.telemetry.pcgItersPerSolve =
            static_cast<Real>(result.pcgIterationsTotal) /
            static_cast<Real>(result.iterations);
    result.telemetry.pushResidual(result.iterations, result.primRes,
                                  result.dualRes);
    result.telemetry.recoveryEvents =
        static_cast<Count>(result.recovery.events.size());
    result.telemetry.faultsInjected = result.faultsInjected;
    result.telemetry.solveSeconds = result.deviceSeconds;

    {
        static telemetry::Counter& solves =
            telemetry::MetricsRegistry::global().counter(
                "rsqp_device_solves_total",
                "Accelerated (simulated-device) solves completed");
        static telemetry::Counter& iters =
            telemetry::MetricsRegistry::global().counter(
                "rsqp_device_iterations_total",
                "ADMM iterations executed on the simulated device");
        static telemetry::Counter& retries =
            telemetry::MetricsRegistry::global().counter(
                "rsqp_device_fault_retries_total",
                "Device runs retried after corrupted results");
        solves.increment();
        iters.add(static_cast<std::uint64_t>(
            std::max<Index>(result.iterations, 0)));
        retries.add(static_cast<std::uint64_t>(
            std::max<Count>(result.recovery.faultRetries, 0)));
    }
    return result;
}

std::vector<RsqpResult>
solveBatch(const std::vector<QpProblem>& problems,
           const OsqpSettings& settings, const CustomizeSettings& custom,
           Index num_threads)
{
    std::vector<RsqpResult> results(problems.size());
    if (problems.empty())
        return results;

    const Index width = num_threads > 0
        ? num_threads
        : effectiveNumThreads();

    auto solve_one = [&](Index i) {
        const auto s = static_cast<std::size_t>(i);
        RsqpSolver solver(problems[s], settings, custom);
        results[s] = solver.solve();
    };

    if (width <= 1 || problems.size() == 1) {
        for (Index i = 0; i < static_cast<Index>(problems.size()); ++i)
            solve_one(i);
        return results;
    }

    ThreadPool::global().parallelFor(
        0, static_cast<Index>(problems.size()), 1,
        [&](Index b, Index e) {
            // Pin each instance to its host thread: intra-solve
            // parallelism would only contend with the batch fan-out.
            NumThreadsScope serial_instance(1);
            for (Index i = b; i < e; ++i)
                solve_one(i);
        },
        static_cast<unsigned>(width));
    return results;
}

} // namespace rsqp
