/**
 * @file
 * Human-readable customization reports — the textual rendering of the
 * Fig. 6 generation flow's outcome: per-matrix schedules, E_p/E_c,
 * match scores, the chosen structure set, estimated resources, clock
 * and on-chip memory.
 */

#ifndef RSQP_CORE_REPORT_HPP
#define RSQP_CORE_REPORT_HPP

#include <string>

#include "core/customization.hpp"

namespace rsqp
{

/** Render a full customization report (multi-line text). */
std::string customizationReport(const ProblemCustomization& custom);

/** One-line summary: "64{8d4e1g}+cvb eta=0.44 fmax=237MHz 1.2MB". */
std::string customizationSummary(const ProblemCustomization& custom);

} // namespace rsqp

#endif // RSQP_CORE_REPORT_HPP
