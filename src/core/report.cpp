#include "report.hpp"

#include <sstream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/memory_model.hpp"
#include "hwmodel/resources.hpp"

namespace rsqp
{

std::string
customizationReport(const ProblemCustomization& custom)
{
    std::ostringstream oss;
    oss << "architecture " << custom.config.name() << "\n";
    oss << "structure set S:\n";
    for (const auto& pattern : custom.config.structures.patterns())
        oss << "  \"" << pattern << "\" (width "
            << patternWidth(pattern) << ", " << pattern.size()
            << " outputs)\n";

    TextTable table({"matrix", "rows", "cols", "nnz", "slots", "E_p",
                     "cvb_depth", "E_c", "eta"});
    for (const MatrixArtifacts* m :
         {&custom.p, &custom.a, &custom.at, &custom.atSq}) {
        table.addRow({m->name, std::to_string(m->csr.rows()),
                      std::to_string(m->csr.cols()),
                      std::to_string(m->csr.nnz()),
                      std::to_string(m->schedule.slotCount()),
                      std::to_string(m->schedule.ep),
                      std::to_string(m->plan.depth),
                      formatFixed(m->plan.ec(), 2),
                      formatFixed(m->eta(), 3)});
    }
    table.print(oss);

    const ResourceEstimate resources = estimateResources(custom.config);
    const OnChipMemoryEstimate memory = estimateOnChipMemory(custom);
    oss << "aggregate eta " << formatFixed(custom.eta(), 3)
        << ", K-apply packs " << custom.kApplyPacks() << "\n";
    oss << "fmax " << formatFixed(estimateFmaxMhz(custom.config), 0)
        << " MHz, DSP " << resources.dsp << ", FF " << resources.ff
        << ", LUT " << resources.lut << "\n";
    oss << "on-chip memory " << formatFixed(memory.totalMb(), 2)
        << " MB (CVB " << formatFixed(
               static_cast<Real>(memory.cvbBytes) / (1024.0 * 1024.0), 2)
        << " MB)" << (fitsU50Memory(memory) ? "" : "  ** EXCEEDS U50 **")
        << "\n";
    return oss.str();
}

std::string
customizationSummary(const ProblemCustomization& custom)
{
    std::ostringstream oss;
    oss << custom.config.name() << " eta="
        << formatFixed(custom.eta(), 3) << " fmax="
        << formatFixed(estimateFmaxMhz(custom.config), 0) << "MHz "
        << formatFixed(estimateOnChipMemory(custom).totalMb(), 2)
        << "MB";
    return oss.str();
}

} // namespace rsqp
