/**
 * @file
 * Micro-architectural design-space exploration (paper Sec. 5.3 /
 * Table 3): evaluate a family of architecture candidates C{S} on one
 * problem, reporting fmax, delta-eta, SpMV throughput and estimated
 * resources, so the performance/area trade-off can be examined.
 */

#ifndef RSQP_CORE_DESIGN_SPACE_HPP
#define RSQP_CORE_DESIGN_SPACE_HPP

#include <string>
#include <vector>

#include "core/customization.hpp"
#include "hwmodel/resources.hpp"
#include "osqp/problem.hpp"

namespace rsqp
{

/** One evaluated design point (a Table 3 row). */
struct DesignPoint
{
    std::string name;        ///< "C{S}" notation
    Real fmaxMhz = 0.0;
    Real deltaEta = 0.0;     ///< eta gain over the same-C baseline
    Real spmvPerUs = 0.0;    ///< K-operator applications per microsecond
    ResourceEstimate resources;
    Real eta = 0.0;
    Count kApplyPacks = 0;   ///< cycles of one K application
};

/**
 * Evaluate one architecture candidate on a scaled problem.
 *
 * @param scaled Scaled problem data.
 * @param c Datapath width.
 * @param patterns Structure set (paper notation, fallback implied);
 *        empty = baseline.
 * @param compress_cvb Customized CVB on/off.
 */
DesignPoint evaluateDesignPoint(const QpProblem& scaled, Index c,
                                const std::vector<std::string>& patterns,
                                bool compress_cvb = true);

/**
 * Evaluate a Table 3-style candidate family on a problem: for each
 * width in {16, 32, 64}, the baseline plus structure sets of
 * increasing size found by the search.
 */
std::vector<DesignPoint> exploreDesignSpace(const QpProblem& scaled);

} // namespace rsqp

#endif // RSQP_CORE_DESIGN_SPACE_HPP
