#include "customization.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "encoding/match_score.hpp"
#include "hwmodel/resources.hpp"

namespace rsqp
{

Real
MatrixArtifacts::eta() const
{
    return matchScore(schedule.nnz, static_cast<Count>(csr.cols()),
                      schedule.ep, std::max(Real(1.0), plan.ec()));
}

Count
ProblemCustomization::totalEp() const
{
    return p.schedule.ep + a.schedule.ep + at.schedule.ep;
}

Real
ProblemCustomization::eta() const
{
    const MatrixArtifacts* mats[] = {&p, &a, &at};
    Count nnz = 0, length = 0;
    Real real_cost = 0.0;
    for (const MatrixArtifacts* m : mats) {
        nnz += m->schedule.nnz;
        length += m->csr.cols();
        real_cost += static_cast<Real>(m->schedule.nnz) +
            static_cast<Real>(m->schedule.ep) +
            std::max(Real(1.0), m->plan.ec()) *
                static_cast<Real>(m->csr.cols());
    }
    return static_cast<Real>(nnz + length) / real_cost;
}

Count
ProblemCustomization::kApplyPacks() const
{
    return p.packed.packCount() + a.packed.packCount() +
        at.packed.packCount();
}

namespace
{

MatrixArtifacts
buildArtifacts(std::string name, CsrMatrix csr, const StructureSet& set,
               bool compress_cvb)
{
    MatrixArtifacts artifacts;
    artifacts.name = std::move(name);
    artifacts.csr = std::move(csr);
    artifacts.str = encodeMatrix(artifacts.csr, set.c());
    artifacts.schedule = scheduleString(artifacts.str, set);
    artifacts.packed = packMatrix(artifacts.csr, artifacts.str,
                                  artifacts.schedule, set);
    if (compress_cvb) {
        const AccessRequirements req =
            buildAccessRequirements(artifacts.packed);
        artifacts.plan = compressFirstFit(req);
    } else {
        artifacts.plan = fullDuplicationPlan(set.c(),
                                             artifacts.csr.cols());
    }
    return artifacts;
}

/** Copy of a CSR matrix with element-wise squared values. */
CsrMatrix
squaredValues(const CsrMatrix& matrix)
{
    CsrMatrix result = matrix;
    for (Real& v : result.values())
        v *= v;
    return result;
}

} // namespace

ProblemCustomization
customizeProblem(const QpProblem& scaled, const CustomizeSettings& settings)
{
    RSQP_ASSERT(isPow2(settings.c) && settings.c <= 64,
                "datapath width must be a power of two <= 64");

    const CsrMatrix p_csr =
        CsrMatrix::fromCsc(scaled.pUpper.symUpperToFull());
    const CsrMatrix a_csr = CsrMatrix::fromCsc(scaled.a);
    const CsrMatrix at_csr = CsrMatrix::fromCsc(scaled.a.transpose());

    // Choose the structure set.
    StructureSet set = StructureSet::baseline(settings.c);
    if (!settings.forcedPatterns.empty()) {
        set = StructureSet(settings.c, settings.forcedPatterns);
    } else if (settings.customizeStructures) {
        const SparsityString p_str = encodeMatrix(p_csr, settings.c);
        const SparsityString a_str = encodeMatrix(a_csr, settings.c);
        const SparsityString at_str = encodeMatrix(at_csr, settings.c);
        StructureSearchSettings search = settings.search;
        const bool default_objective = !search.objective;
        if (default_objective) {
            // Time-aware objective: minimize slots / fmax(S). A set
            // with many tree outputs schedules in fewer cycles but
            // clocks slower (the Table 3 trade-off); end-to-end time
            // is what the customization must win.
            const Index width = settings.c;
            search.objective = [width](const StructureSet& candidate,
                                       Count slots) -> Real {
                ArchConfig probe;
                probe.c = width;
                probe.structures = candidate;
                return static_cast<Real>(slots) /
                    estimateFmaxMhz(probe);
            };
        }
        const auto result =
            searchStructureSet({&p_str, &a_str, &at_str}, search);
        set = result.set;

        // Final guard (default objective only): the search scores SpMV
        // slots/fmax, but an fmax penalty taxes *every* cycle (vector
        // engine, duplication, control) while structure gains only
        // shrink the SpMV share. Estimate the per-K-application time
        // including that fixed overhead and fall back to the baseline
        // tree if it wins.
        const Index n = scaled.numVariables();
        const Index m = scaled.numConstraints();
        const Count overhead =
            (8 * n + 6 * m) / settings.c + 600;  // vec ops + latencies
        auto estimate_time = [&](const StructureSet& candidate) {
            Count slots = 0;
            for (const SparsityString* str :
                 {&p_str, &a_str, &at_str})
                slots += scheduleString(*str, candidate).slotCount();
            ArchConfig probe;
            probe.c = settings.c;
            probe.structures = candidate;
            return static_cast<Real>(slots + overhead) /
                estimateFmaxMhz(probe);
        };
        const StructureSet baseline = StructureSet::baseline(settings.c);
        if (default_objective &&
            estimate_time(baseline) <= estimate_time(set))
            set = baseline;
    }

    ProblemCustomization customization;
    customization.config.c = settings.c;
    customization.config.structures = set;
    customization.config.compressedCvb = settings.compressCvb;
    customization.config.fp32Datapath = settings.fp32Datapath;
    customization.config.numThreads = settings.numThreads;
    customization.config.faultInjection = settings.faultInjection;

    customization.p =
        buildArtifacts("P", p_csr, set, settings.compressCvb);
    customization.a =
        buildArtifacts("A", a_csr, set, settings.compressCvb);
    customization.at =
        buildArtifacts("At", at_csr, set, settings.compressCvb);
    // A'^2 shares the sparsity structure (and therefore the schedule
    // and CVB plan shape) with A'; only the values differ.
    customization.atSq = buildArtifacts("AtSq", squaredValues(at_csr),
                                        set, settings.compressCvb);
    return customization;
}

ProblemCustomization
baselineCustomization(const QpProblem& scaled, Index c)
{
    CustomizeSettings settings;
    settings.c = c;
    settings.customizeStructures = false;
    settings.compressCvb = false;
    return customizeProblem(scaled, settings);
}

} // namespace rsqp
