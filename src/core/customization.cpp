#include "customization.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "encoding/match_score.hpp"
#include "hwmodel/resources.hpp"

namespace rsqp
{

Real
MatrixArtifacts::eta() const
{
    return matchScore(schedule.nnz, static_cast<Count>(csr.cols()),
                      schedule.ep, std::max(Real(1.0), plan.ec()));
}

Count
ProblemCustomization::totalEp() const
{
    return p.schedule.ep + a.schedule.ep + at.schedule.ep;
}

Real
ProblemCustomization::eta() const
{
    const MatrixArtifacts* mats[] = {&p, &a, &at};
    Count nnz = 0, length = 0;
    Real real_cost = 0.0;
    for (const MatrixArtifacts* m : mats) {
        nnz += m->schedule.nnz;
        length += m->csr.cols();
        real_cost += static_cast<Real>(m->schedule.nnz) +
            static_cast<Real>(m->schedule.ep) +
            std::max(Real(1.0), m->plan.ec()) *
                static_cast<Real>(m->csr.cols());
    }
    return static_cast<Real>(nnz + length) / real_cost;
}

Count
ProblemCustomization::kApplyPacks() const
{
    return p.packed.packCount() + a.packed.packCount() +
        at.packed.packCount();
}

namespace
{

MatrixArtifacts
buildArtifacts(std::string name, CsrMatrix csr, const StructureSet& set,
               bool compress_cvb)
{
    MatrixArtifacts artifacts;
    artifacts.name = std::move(name);
    artifacts.csr = std::move(csr);
    artifacts.str = encodeMatrix(artifacts.csr, set.c());
    artifacts.schedule = scheduleString(artifacts.str, set);
    artifacts.packed = packMatrix(artifacts.csr, artifacts.str,
                                  artifacts.schedule, set);
    if (compress_cvb) {
        const AccessRequirements req =
            buildAccessRequirements(artifacts.packed);
        artifacts.plan = compressFirstFit(req);
    } else {
        artifacts.plan = fullDuplicationPlan(set.c(),
                                             artifacts.csr.cols());
    }
    return artifacts;
}

/** Copy of a CSR matrix with element-wise squared values. */
CsrMatrix
squaredValues(const CsrMatrix& matrix)
{
    CsrMatrix result = matrix;
    for (Real& v : result.values())
        v *= v;
    return result;
}

} // namespace

ProblemCustomization
customizeProblem(const QpProblem& scaled, const CustomizeSettings& settings)
{
    RSQP_ASSERT(isPow2(settings.c) && settings.c <= 64,
                "datapath width must be a power of two <= 64");

    const CsrMatrix p_csr =
        CsrMatrix::fromCsc(scaled.pUpper.symUpperToFull());
    const CsrMatrix a_csr = CsrMatrix::fromCsc(scaled.a);
    const CsrMatrix at_csr = CsrMatrix::fromCsc(scaled.a.transpose());

    // Choose the structure set.
    StructureSet set = StructureSet::baseline(settings.c);
    if (!settings.forcedPatterns.empty()) {
        set = StructureSet(settings.c, settings.forcedPatterns);
    } else if (settings.customizeStructures) {
        const SparsityString p_str = encodeMatrix(p_csr, settings.c);
        const SparsityString a_str = encodeMatrix(a_csr, settings.c);
        const SparsityString at_str = encodeMatrix(at_csr, settings.c);
        StructureSearchSettings search = settings.search;
        const bool default_objective = !search.objective;
        if (default_objective) {
            // Time-aware objective: minimize slots / fmax(S). A set
            // with many tree outputs schedules in fewer cycles but
            // clocks slower (the Table 3 trade-off); end-to-end time
            // is what the customization must win.
            const Index width = settings.c;
            search.objective = [width](const StructureSet& candidate,
                                       Count slots) -> Real {
                ArchConfig probe;
                probe.c = width;
                probe.structures = candidate;
                return static_cast<Real>(slots) /
                    estimateFmaxMhz(probe);
            };
        }
        const auto result =
            searchStructureSet({&p_str, &a_str, &at_str}, search);
        set = result.set;

        // Final guard (default objective only): the search scores SpMV
        // slots/fmax, but an fmax penalty taxes *every* cycle (vector
        // engine, duplication, control) while structure gains only
        // shrink the SpMV share. Estimate the per-K-application time
        // including that fixed overhead and fall back to the baseline
        // tree if it wins.
        const Index n = scaled.numVariables();
        const Index m = scaled.numConstraints();
        const Count overhead =
            (8 * n + 6 * m) / settings.c + 600;  // vec ops + latencies
        auto estimate_time = [&](const StructureSet& candidate) {
            Count slots = 0;
            for (const SparsityString* str :
                 {&p_str, &a_str, &at_str})
                slots += scheduleString(*str, candidate).slotCount();
            ArchConfig probe;
            probe.c = settings.c;
            probe.structures = candidate;
            return static_cast<Real>(slots + overhead) /
                estimateFmaxMhz(probe);
        };
        const StructureSet baseline = StructureSet::baseline(settings.c);
        if (default_objective &&
            estimate_time(baseline) <= estimate_time(set))
            set = baseline;
    }

    ProblemCustomization customization;
    customization.config.c = settings.c;
    customization.config.structures = set;
    customization.config.compressedCvb = settings.compressCvb;
    customization.config.fp32Datapath = settings.fp32Datapath;
    customization.config.execution.numThreads =
        settings.resolvedNumThreads();
    customization.config.faultInjection = settings.faultInjection;

    customization.p =
        buildArtifacts("P", p_csr, set, settings.compressCvb);
    customization.a =
        buildArtifacts("A", a_csr, set, settings.compressCvb);
    customization.at =
        buildArtifacts("At", at_csr, set, settings.compressCvb);
    // A'^2 shares the sparsity structure (and therefore the schedule
    // and CVB plan shape) with A'; only the values differ.
    customization.atSq = buildArtifacts("AtSq", squaredValues(at_csr),
                                        set, settings.compressCvb);
    return customization;
}

namespace
{

/** Frozen half of one MatrixArtifacts (drops CSR values + stream). */
FrozenMatrixArtifact
freezeArtifacts(const MatrixArtifacts& artifacts)
{
    FrozenMatrixArtifact frozen;
    frozen.name = artifacts.name;
    frozen.str = artifacts.str;
    frozen.schedule = artifacts.schedule;
    frozen.plan = artifacts.plan;
    return frozen;
}

/**
 * Rebuild full MatrixArtifacts from a frozen artifact and fresh CSR
 * values: identical to buildArtifacts() except that the string, the
 * schedule and the CVB plan are taken as given instead of recomputed.
 */
MatrixArtifacts
thawArtifacts(CsrMatrix csr, const FrozenMatrixArtifact& frozen,
              const StructureSet& set)
{
    MatrixArtifacts artifacts;
    artifacts.name = frozen.name;
    artifacts.csr = std::move(csr);
    artifacts.str = frozen.str;
    artifacts.schedule = frozen.schedule;
    artifacts.packed = packMatrix(artifacts.csr, artifacts.str,
                                  artifacts.schedule, set);
    artifacts.plan = frozen.plan;
    return artifacts;
}

Count
frozenBytes(const FrozenMatrixArtifact& frozen)
{
    Count bytes = static_cast<Count>(frozen.str.encoded.size()) +
        static_cast<Count>(frozen.str.rowOfPos.size() +
                           frozen.str.nnzOfPos.size() +
                           frozen.plan.address.size()) *
            static_cast<Count>(sizeof(Index));
    for (const SlotAssignment& slot : frozen.schedule.slots)
        bytes += static_cast<Count>(sizeof(SlotAssignment)) +
            static_cast<Count>(slot.positions.size()) *
                static_cast<Count>(sizeof(Index));
    for (const IndexVector& bank : frozen.plan.bankContents)
        bytes += static_cast<Count>(bank.size()) *
            static_cast<Count>(sizeof(Index));
    return bytes;
}

} // namespace

Count
CustomizationArtifact::footprintBytes() const
{
    return static_cast<Count>(sizeof(CustomizationArtifact)) +
        frozenBytes(p) + frozenBytes(a) + frozenBytes(at) +
        frozenBytes(atSq);
}

bool
CustomizationArtifact::compatibleWith(
    const QpProblem& scaled, const CustomizeSettings& settings) const
{
    if (config.c != settings.c ||
        config.compressedCvb != settings.compressCvb ||
        config.fp32Datapath != settings.fp32Datapath)
        return false;
    const Index n = scaled.numVariables();
    const Index m = scaled.numConstraints();
    // The CVB plan length is the multiplicand-vector length of each
    // scheduled matrix: x for P and A, the m-vector for A'.
    if (p.plan.length != n || a.plan.length != n ||
        at.plan.length != m || atSq.plan.length != m)
        return false;
    // nnz of the full symmetric expansion of P: every off-diagonal
    // upper entry mirrors once.
    Count p_offdiag = 0;
    const auto& col_ptr = scaled.pUpper.colPtr();
    const auto& row_idx = scaled.pUpper.rowIdx();
    for (Index c = 0; c < n; ++c)
        for (Index k = col_ptr[static_cast<std::size_t>(c)];
             k < col_ptr[static_cast<std::size_t>(c) + 1]; ++k)
            if (row_idx[static_cast<std::size_t>(k)] != c)
                ++p_offdiag;
    const Count p_full_nnz = scaled.pUpper.nnz() + p_offdiag;
    return p.schedule.nnz == p_full_nnz &&
        a.schedule.nnz == scaled.a.nnz() &&
        at.schedule.nnz == scaled.a.nnz();
}

CustomizationArtifact
freezeCustomization(const ProblemCustomization& custom)
{
    CustomizationArtifact artifact;
    artifact.config = custom.config;
    artifact.p = freezeArtifacts(custom.p);
    artifact.a = freezeArtifacts(custom.a);
    artifact.at = freezeArtifacts(custom.at);
    artifact.atSq = freezeArtifacts(custom.atSq);
    return artifact;
}

ProblemCustomization
thawCustomization(const QpProblem& scaled,
                  const CustomizationArtifact& artifact,
                  const CustomizeSettings& settings)
{
    RSQP_ASSERT(artifact.compatibleWith(scaled, settings),
                "thawCustomization: artifact/problem mismatch");
    ProblemCustomization customization;
    customization.config = artifact.config;
    customization.config.execution.numThreads =
        settings.resolvedNumThreads();
    customization.config.faultInjection = settings.faultInjection;

    const StructureSet& set = customization.config.structures;
    const CsrMatrix at_csr = CsrMatrix::fromCsc(scaled.a.transpose());
    customization.p = thawArtifacts(
        CsrMatrix::fromCsc(scaled.pUpper.symUpperToFull()), artifact.p,
        set);
    customization.a =
        thawArtifacts(CsrMatrix::fromCsc(scaled.a), artifact.a, set);
    customization.at = thawArtifacts(at_csr, artifact.at, set);
    customization.atSq =
        thawArtifacts(squaredValues(at_csr), artifact.atSq, set);
    return customization;
}

ProblemCustomization
baselineCustomization(const QpProblem& scaled, Index c)
{
    CustomizeSettings settings;
    settings.c = c;
    settings.customizeStructures = false;
    settings.compressCvb = false;
    return customizeProblem(scaled, settings);
}

} // namespace rsqp
