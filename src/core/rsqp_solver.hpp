/**
 * @file
 * The end-to-end RSQP solver: OSQP accelerated by a problem-specific
 * simulated FPGA architecture.
 *
 * Construction mirrors the paper's deployment flow: scale the problem,
 * run the customization pipeline (or pick the generic baseline),
 * "generate the hardware" (instantiate the cycle-level machine), lower
 * OSQP onto the ISA, and load the packed matrices into HBM. solve()
 * then runs the program, reads back the scaled solution, unscales it,
 * and converts the cycle count into wall-clock time through the fmax
 * model. Parametric re-solves (new q / bounds / warm starts) reuse the
 * generated architecture — the amortization story of the paper.
 */

#ifndef RSQP_CORE_RSQP_SOLVER_HPP
#define RSQP_CORE_RSQP_SOLVER_HPP

#include <memory>
#include <vector>

#include "arch/machine.hpp"
#include "arch/osqp_program.hpp"
#include "core/customization.hpp"
#include "osqp/scaling.hpp"
#include "osqp/settings.hpp"
#include "osqp/status.hpp"

namespace rsqp
{

/** Result of one accelerated solve. */
struct RsqpResult
{
    Vector x;  ///< primal solution (unscaled)
    Vector y;  ///< dual solution (unscaled)
    Vector z;  ///< A x (unscaled)

    SolveStatus status = SolveStatus::Unsolved;
    Index iterations = 0;
    Count pcgIterationsTotal = 0;
    Index rhoUpdates = 0;
    Real primRes = 0.0;
    Real dualRes = 0.0;
    Real objective = 0.0;

    MachineStats machineStats;
    Real fmaxMhz = 0.0;
    /** Accelerator wall-clock time: cycles / fmax. */
    Real deviceSeconds = 0.0;
    Real eta = 0.0;          ///< match score of the architecture
    std::string archName;    ///< "C{...}+cvb" tag

    RecoveryReport recovery;       ///< device-run retries on record
    Count faultsInjected = 0;      ///< soft errors injected (testing)
    ValidationReport validation;   ///< diagnostics when InvalidProblem
    SolveTelemetry telemetry;      ///< per-solve observability record
};

/** OSQP on the simulated RSQP accelerator. */
class RsqpSolver
{
  public:
    /**
     * Set up the accelerated solver.
     *
     * @param problem The QP (unscaled).
     * @param settings OSQP settings (maxIter is rounded up to a
     *        multiple of checkInterval for the device loop).
     * @param custom Customization pipeline settings (width, E_p/E_c
     *        optimizations on/off).
     */
    RsqpSolver(QpProblem problem, OsqpSettings settings,
               CustomizeSettings custom);

    /**
     * Set up the accelerated solver from a frozen customization
     * artifact (see core/customization.hpp): when the artifact is
     * non-null and structurally compatible with the problem, the whole
     * E_p/E_c pipeline is skipped and only the value-dependent packing
     * runs — the cache-hit fast path of the service layer. An
     * incompatible or null artifact falls back to the full pipeline.
     */
    RsqpSolver(QpProblem problem, OsqpSettings settings,
               CustomizeSettings custom,
               std::shared_ptr<const CustomizationArtifact> artifact);

    /** Run the accelerator program and return the solution. */
    RsqpResult solve();

    /**
     * Warm start the next solve() (unscaled guesses). A size mismatch
     * is a recoverable client error: the guess is ignored with a
     * warning and false is returned (the solve proceeds cold), in the
     * same spirit as the non-throwing InvalidProblem path.
     */
    bool warmStart(const Vector& x, const Vector& y);

    /** True if setup reused a frozen artifact (skipped the pipeline). */
    bool customizationReused() const { return customizationReused_; }

    /** Replace q; the architecture and program are reused. */
    void updateLinearCost(const Vector& q);

    /** Replace the bounds; the architecture and program are reused. */
    void updateBounds(const Vector& l, const Vector& u);

    /**
     * Replace the numeric values of P and/or A keeping the sparsity
     * structure (pass empty vectors to keep current values). Values
     * follow the original (unscaled) CSC order. The schedules, CVB
     * plans and program are all reused; only the packed HBM streams
     * are rewritten — the paper's same-structure amortization.
     */
    void updateMatrixValues(const std::vector<Real>& p_values,
                            const std::vector<Real>& a_values);

    /**
     * Problem diagnostics from setup. When not ok() the solver is
     * inert: solve() returns InvalidProblem, mutators are no-ops, and
     * machine()/program() must not be called.
     */
    const ValidationReport& validation() const { return validation_; }

    const ProblemCustomization& customization() const { return custom_; }
    const ArchConfig& config() const { return custom_.config; }
    const Machine& machine() const { return *machine_; }
    const Program& program() const { return prog_.program; }

  private:
    QpProblem original_;
    QpProblem scaled_;
    Scaling scaling_;
    ValidationReport validation_;  ///< setup diagnostics
    OsqpSettings settings_;
    ProblemCustomization custom_;
    bool customizationReused_ = false;
    std::unique_ptr<Machine> machine_;
    OsqpMatrixIds mats_;
    OsqpDeviceProgram prog_;
};

/**
 * Solve independent QP instances concurrently — the multi-instance
 * analogue of the paper's "multiple solver cores per FPGA" deployment
 * (Table 3): each worker customizes, generates and runs its own
 * simulated accelerator.
 *
 * Every instance produces exactly the result of a standalone
 * RsqpSolver(problem, settings, custom).solve(): the per-instance
 * work is pinned to one host thread, so batch results are independent
 * of the batch width and of scheduling.
 *
 * @param num_threads Workers fanned across the batch (0 = library
 *        default, 1 = serial loop). The first exception thrown by any
 *        instance is rethrown after the batch drains.
 */
std::vector<RsqpResult> solveBatch(const std::vector<QpProblem>& problems,
                                   const OsqpSettings& settings,
                                   const CustomizeSettings& custom,
                                   Index num_threads = 0);

} // namespace rsqp

#endif // RSQP_CORE_RSQP_SOLVER_HPP
