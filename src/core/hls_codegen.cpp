#include "hls_codegen.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/logging.hpp"

namespace rsqp
{

namespace
{

/** Distinct per-cycle output counts of a structure set, ascending. */
std::vector<Index>
outputCounts(const StructureSet& set)
{
    std::set<Index> counts;
    for (const auto& pattern : set.patterns())
        counts.insert(static_cast<Index>(pattern.size()));
    return {counts.begin(), counts.end()};
}

} // namespace

std::string
generateAlignmentSwitch(const StructureSet& set)
{
    const auto counts = outputCounts(set);
    const Index pack_width = counts.back();  // widest output bundle
    std::ostringstream oss;

    if (counts.size() == 1 && counts.front() == 1) {
        // Baseline: the single-output MAC tree needs no routing.
        oss << "align_out[0] << acc_pack.data[0];\n";
        return oss.str();
    }

    oss << "switch (acc_cnt) {\n";
    for (const Index cnt : counts) {
        oss << "case " << cnt << ":\n";
        oss << "\tswitch (align_ptr){\n";
        for (Index i = 0; i < pack_width; ++i) {
            oss << "\tcase " << i << ":\n";
            for (Index j = 0; j < cnt; ++j) {
                oss << "\t\talign_out[" << (j + i) % pack_width
                    << "] << acc_pack.data[" << j << "];\n";
            }
            oss << "\t\tbreak;\n";
        }
        oss << "\t}\n";
        oss << "\tbreak;\n";
    }
    oss << "}\nalign_ptr += acc_cnt;\n";
    oss << "if (align_ptr >= " << pack_width << ") align_ptr -= "
        << pack_width << ";\n";
    return oss.str();
}

std::string
generateSpmvAlignFunction(const StructureSet& set)
{
    const auto counts = outputCounts(set);
    const Index pack_width = counts.back();
    std::ostringstream oss;
    oss << "void spmv_align(int align_cnt,\n"
        << "                data_stream align_out[" << pack_width
        << "],\n"
        << "                cnt_pack_stream &acc_cnt_in,\n"
        << "                data_stream &acc_complete_in,\n"
        << "                spmv_pack_stream &spmv_pack_in)\n"
        << "{\n"
        << "    ap_uint<ALIGN_PTR_BITWIDTH> align_ptr = 0;\n"
        << "align_loop:\n"
        << "    for (int loc = 0; loc < align_cnt; loc++)\n"
        << "    {\n"
        << "#pragma HLS pipeline II = 1\n"
        << "        u16_t acc_cnt = acc_cnt_in.read();\n"
        << "        spmv_pack_t acc_pack;\n"
        << "        if (acc_cnt == CNT_AS_FADD_FLAG) {\n"
        << "            acc_pack.data[0] = acc_complete_in.read();\n"
        << "            acc_cnt = 1;\n"
        << "        } else {\n"
        << "            acc_pack = spmv_pack_in.read();\n"
        << "        }\n"
        << "#include \"align_acc_cnt_switch.h\"\n"
        << "    }\n"
        << "}\n";
    return oss.str();
}

std::string
generateArchitectureHeader(const ArchConfig& config)
{
    std::ostringstream oss;
    oss << "// Auto-generated problem-specific RSQP architecture\n"
        << "// " << config.name() << "\n"
        << "#ifndef RSQP_GENERATED_ARCH_H\n"
        << "#define RSQP_GENERATED_ARCH_H\n\n"
        << "#define ISCA_C " << config.c << "\n"
        << "#define MAC_STRUCTURES "
        << config.structures.patterns().size() << "\n"
        << "#define MAC_OUTPUTS_TOTAL "
        << config.structures.totalOutputs() << "\n"
        << "#define CVB_COMPRESSED " << (config.compressedCvb ? 1 : 0)
        << "\n\n";
    oss << "// Structure set S:\n";
    for (std::size_t i = 0; i < config.structures.patterns().size(); ++i)
        oss << "//   S[" << i << "] = \""
            << config.structures.patterns()[i] << "\"\n";
    oss << "\n// ---- spmv_align ----\n"
        << generateSpmvAlignFunction(config.structures)
        << "\n// ---- align_acc_cnt_switch.h ----\n"
        << generateAlignmentSwitch(config.structures)
        << "\n#endif // RSQP_GENERATED_ARCH_H\n";
    return oss.str();
}

} // namespace rsqp
