#include "memory_model.hpp"

#include "hwmodel/devices.hpp"

namespace rsqp
{

OnChipMemoryEstimate
estimateOnChipMemory(const ProblemCustomization& customization)
{
    OnChipMemoryEstimate estimate;
    constexpr Count kWord = 4;   // FP32 value
    constexpr Count kIndex = 4;  // address/index word

    const MatrixArtifacts* mats[] = {
        &customization.p, &customization.a, &customization.at,
        &customization.atSq};
    for (const MatrixArtifacts* m : mats) {
        // One cell per stored copy in the CVB banks.
        estimate.cvbBytes += m->plan.storedCopies() * kWord;
        // Index-translation table: one address per vector element,
        // plus the duplication-control map (one source id per cell).
        if (!m->plan.fullDuplication)
            estimate.tableBytes +=
                static_cast<Count>(m->plan.length) * kIndex +
                m->plan.storedCopies() * kIndex;
    }

    // Solver-state vector buffers: the OSQP program keeps ~16
    // n-vectors and ~17 m-vectors on chip.
    const Count n = customization.p.csr.cols();
    const Count m_dim = customization.a.csr.rows();
    estimate.vbBytes = (16 * n + 17 * m_dim) * kWord;

    estimate.totalBytes =
        estimate.cvbBytes + estimate.vbBytes + estimate.tableBytes;
    return estimate;
}

bool
fitsU50Memory(const OnChipMemoryEstimate& estimate)
{
    return estimate.totalMb() <= u50Budget().onChipMemoryMb;
}

} // namespace rsqp
