#include "telemetry/metrics.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

namespace rsqp::telemetry
{

namespace
{

/** Round-robin shard assignment, stable for the thread's lifetime. */
std::atomic<std::size_t> next_shard{0};

/** Strip a "{label=...}" suffix for the HELP/TYPE family name. */
std::string_view
familyName(std::string_view name)
{
    const std::size_t brace = name.find('{');
    return brace == std::string_view::npos ? name
                                           : name.substr(0, brace);
}

void
appendJsonKey(std::ostringstream& os, const std::string& name)
{
    os << '"';
    for (char ch : name) {
        if (ch == '"' || ch == '\\')
            os << '\\';
        os << ch;
    }
    os << "\":";
}

} // namespace

std::string
labeledName(std::string_view base, std::string_view label,
            std::string_view value)
{
    std::string name;
    name.reserve(base.size() + label.size() + value.size() + 5);
    name.append(base);
    name.append("{");
    name.append(label);
    name.append("=\"");
    name.append(value);
    name.append("\"}");
    return name;
}

std::size_t
threadShardIndex()
{
    thread_local const std::size_t slot =
        next_shard.fetch_add(1, std::memory_order_relaxed) %
        kCounterShards;
    return slot;
}

Counter::Counter(std::string name, std::string help)
    : name_(std::move(name)), help_(std::move(help))
{
}

std::uint64_t
Counter::value() const noexcept
{
    std::uint64_t total = 0;
    for (const Shard& shard : shards_)
        total += shard.value.load(std::memory_order_relaxed);
    return total;
}

Gauge::Gauge(std::string name, std::string help)
    : name_(std::move(name)), help_(std::move(help))
{
}

void
Gauge::updateMax(std::int64_t candidate) noexcept
{
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < candidate &&
           !value_.compare_exchange_weak(seen, candidate,
                                         std::memory_order_relaxed)) {
    }
}

Histogram::Histogram(std::string name, std::string help)
    : name_(std::move(name)), help_(std::move(help))
{
    for (auto& bucket : buckets_)
        bucket.store(0, std::memory_order_relaxed);
}

void
Histogram::observe(std::uint64_t value) noexcept
{
    const std::size_t bucket = static_cast<std::size_t>(
        std::bit_width(value));
    buckets_[std::min(bucket, kHistogramBuckets - 1)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t
Histogram::count() const noexcept
{
    std::uint64_t total = 0;
    for (const auto& bucket : buckets_)
        total += bucket.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t
Histogram::sum() const noexcept
{
    return sum_.load(std::memory_order_relaxed);
}

std::array<std::uint64_t, kHistogramBuckets>
Histogram::bucketCounts() const
{
    std::array<std::uint64_t, kHistogramBuckets> counts{};
    for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
    return counts;
}

const CounterSample*
MetricsSnapshot::findCounter(std::string_view name) const
{
    for (const CounterSample& sample : counters)
        if (sample.name == name)
            return &sample;
    return nullptr;
}

const GaugeSample*
MetricsSnapshot::findGauge(std::string_view name) const
{
    for (const GaugeSample& sample : gauges)
        if (sample.name == name)
            return &sample;
    return nullptr;
}

const HistogramSample*
MetricsSnapshot::findHistogram(std::string_view name) const
{
    for (const HistogramSample& sample : histograms)
        if (sample.name == name)
            return &sample;
    return nullptr;
}

std::uint64_t
MetricsSnapshot::counterValue(std::string_view name,
                              std::uint64_t fallback) const
{
    const CounterSample* sample = findCounter(name);
    return sample != nullptr ? sample->value : fallback;
}

std::string
MetricsSnapshot::toPrometheusText() const
{
    std::ostringstream os;
    for (const CounterSample& sample : counters) {
        const std::string_view family = familyName(sample.name);
        if (!sample.help.empty())
            os << "# HELP " << family << ' ' << sample.help << '\n';
        os << "# TYPE " << family << " counter\n";
        os << sample.name << ' ' << sample.value << '\n';
    }
    for (const GaugeSample& sample : gauges) {
        const std::string_view family = familyName(sample.name);
        if (!sample.help.empty())
            os << "# HELP " << family << ' ' << sample.help << '\n';
        os << "# TYPE " << family << " gauge\n";
        os << sample.name << ' ' << sample.value << '\n';
    }
    for (const HistogramSample& sample : histograms) {
        const std::string_view family = familyName(sample.name);
        if (!sample.help.empty())
            os << "# HELP " << family << ' ' << sample.help << '\n';
        os << "# TYPE " << family << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
            if (sample.buckets[i] == 0)
                continue;
            cumulative += sample.buckets[i];
            // Upper bound of bucket i (bit_width == i) is 2^i - 1.
            const long double upper =
                i >= 64 ? 0.0L
                        : static_cast<long double>(
                              (i == 0) ? 0ULL
                                       : ((~0ULL) >> (64 - i)));
            os << family << "_bucket{le=\""
               << static_cast<double>(upper) << "\"} " << cumulative
               << '\n';
        }
        os << family << "_bucket{le=\"+Inf\"} " << sample.count
           << '\n';
        os << family << "_sum " << sample.sum << '\n';
        os << family << "_count " << sample.count << '\n';
    }
    return os.str();
}

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    os << "{\"counters\":{";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        if (i)
            os << ',';
        appendJsonKey(os, counters[i].name);
        os << counters[i].value;
    }
    os << "},\"gauges\":{";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        if (i)
            os << ',';
        appendJsonKey(os, gauges[i].name);
        os << gauges[i].value;
    }
    os << "},\"histograms\":{";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        if (i)
            os << ',';
        appendJsonKey(os, histograms[i].name);
        os << "{\"count\":" << histograms[i].count
           << ",\"sum\":" << histograms[i].sum << '}';
    }
    os << "}}";
    return os.str();
}

Counter&
MetricsRegistry::counter(const std::string& name,
                         const std::string& help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& existing : counters_)
        if (existing->name() == name)
            return *existing;
    counters_.push_back(std::make_unique<Counter>(name, help));
    return *counters_.back();
}

bool
MetricsRegistry::removeCounter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = counters_.begin(); it != counters_.end(); ++it) {
        if ((*it)->name() == name) {
            counters_.erase(it);
            return true;
        }
    }
    return false;
}

Gauge&
MetricsRegistry::gauge(const std::string& name, const std::string& help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& existing : gauges_)
        if (existing->name() == name)
            return *existing;
    gauges_.push_back(std::make_unique<Gauge>(name, help));
    return *gauges_.back();
}

Histogram&
MetricsRegistry::histogram(const std::string& name,
                           const std::string& help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& existing : histograms_)
        if (existing->name() == name)
            return *existing;
    histograms_.push_back(std::make_unique<Histogram>(name, help));
    return *histograms_.back();
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto& counter : counters_)
        snap.counters.push_back(
            {counter->name(), counter->help(), counter->value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto& gauge : gauges_)
        snap.gauges.push_back(
            {gauge->name(), gauge->help(), gauge->value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto& histogram : histograms_) {
        HistogramSample sample;
        sample.name = histogram->name();
        sample.help = histogram->help();
        sample.buckets = histogram->bucketCounts();
        sample.sum = histogram->sum();
        for (std::uint64_t bucket : sample.buckets)
            sample.count += bucket;
        snap.histograms.push_back(std::move(sample));
    }
    return snap;
}

MetricsRegistry&
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace rsqp::telemetry
