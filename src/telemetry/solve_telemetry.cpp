#include "telemetry/solve_telemetry.hpp"

#include <sstream>

namespace rsqp
{

const char*
toString(SolveRoute route)
{
    switch (route) {
    case SolveRoute::None: return "none";
    case SolveRoute::Parametric: return "parametric";
    case SolveRoute::CacheThaw: return "cache_thaw";
    case SolveRoute::FullCustomize: return "full_customize";
    }
    return "unknown";
}

void
SolveTelemetry::pushResidual(Index iteration, Real primal, Real dual)
{
    if (residualTail.size() >= kResidualTailCapacity)
        residualTail.erase(residualTail.begin());
    residualTail.push_back({iteration, primal, dual});
}

std::string
SolveTelemetry::toJson() const
{
    std::ostringstream os;
    os << "{\"backend\":\"" << backend
       << "\",\"restarts\":" << restarts
       << ",\"backend_switches\":" << backendSwitches
       << ",\"iterations\":" << iterations
       << ",\"kkt_solves\":" << kktSolves
       << ",\"pcg_iterations_total\":" << pcgIterationsTotal
       << ",\"pcg_iters_per_solve\":" << pcgItersPerSolve
       << ",\"isa_level\":\"" << isaLevel
       << "\",\"precision\":\"" << precision
       << "\",\"refinement_sweeps\":" << refinementSweeps
       << ",\"fp64_rescues\":" << fp64Rescues
       << ",\"recovery_events\":" << recoveryEvents
       << ",\"faults_injected\":" << faultsInjected
       << ",\"route\":\"" << toString(route)
       << "\",\"queue_wait_seconds\":" << queueWaitSeconds
       << ",\"setup_seconds\":" << setupSeconds
       << ",\"solve_seconds\":" << solveSeconds
       << ",\"residual_tail\":[";
    for (std::size_t i = 0; i < residualTail.size(); ++i) {
        const ResidualSample& sample = residualTail[i];
        if (i)
            os << ',';
        os << "{\"iter\":" << sample.iteration
           << ",\"prim_res\":" << sample.primalResidual
           << ",\"dual_res\":" << sample.dualResidual << '}';
    }
    os << "]}";
    return os.str();
}

} // namespace rsqp
