/**
 * @file
 * Convenience umbrella for the telemetry subsystem: metrics registry,
 * trace spans, and the per-solve telemetry record.
 */

#ifndef RSQP_TELEMETRY_TELEMETRY_HPP
#define RSQP_TELEMETRY_TELEMETRY_HPP

#include "telemetry/config.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/solve_telemetry.hpp"
#include "telemetry/trace.hpp"

#endif // RSQP_TELEMETRY_TELEMETRY_HPP
