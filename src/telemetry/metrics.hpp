/**
 * @file
 * Lock-cheap metrics registry: monotonic counters, gauges, and
 * fixed-bucket log2 histograms.
 *
 * Hot-path cost model: a Counter::add is one relaxed fetch_add into a
 * cache-line-aligned per-thread shard (threads hash onto shards, so
 * unrelated threads never bounce the same line); Histogram::observe is
 * two relaxed adds plus a bit_width; Gauge operations are single
 * atomics on a dedicated line. All aggregation cost (folding shards,
 * name lookups, string formatting) is paid by snapshot() — never by
 * the instrumented code.
 *
 * Metric handles returned by MetricsRegistry::counter()/gauge()/
 * histogram() are stable references valid for the registry's lifetime;
 * instrumented code resolves them once and caches the reference.
 *
 * Names follow the Prometheus convention ("rsqp_service_submitted_
 * total"); an optional "{label=\"value\"}" suffix is carried through
 * verbatim to the text exposition so per-session families ("rsqp_
 * service_session_solves_total{session=\"3\"}") work without a
 * separate label API.
 */

#ifndef RSQP_TELEMETRY_METRICS_HPP
#define RSQP_TELEMETRY_METRICS_HPP

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/config.hpp"

namespace rsqp::telemetry
{

/** Number of per-thread counter shards (power of two). */
inline constexpr std::size_t kCounterShards = 16;

/** Number of log2 histogram buckets; bucket i covers bit_width == i. */
inline constexpr std::size_t kHistogramBuckets = 64;

/** Stable per-thread shard slot in [0, kCounterShards). */
std::size_t threadShardIndex();

/**
 * Compose a single-label series name in the registry's labels-in-name
 * convention: labeledName("rsqp_service_class_shed_total", "class",
 * "batch") == "rsqp_service_class_shed_total{class=\"batch\"}". The
 * value is embedded verbatim — callers pass label values that need no
 * escaping (identifiers, small integers).
 */
std::string labeledName(std::string_view base, std::string_view label,
                        std::string_view value);

/**
 * Monotonic counter. add() is a single relaxed fetch_add on the
 * calling thread's shard; value() folds all shards and is exact once
 * the writers have quiesced (and never under-counts a completed add).
 */
class Counter
{
  public:
    Counter(std::string name, std::string help);

    Counter(const Counter&) = delete;
    Counter& operator=(const Counter&) = delete;

    void
    add(std::uint64_t delta) noexcept
    {
        shards_[threadShardIndex()].value.fetch_add(
            delta, std::memory_order_relaxed);
    }

    void
    increment() noexcept
    {
        add(1);
    }

    /** Fold all shards into the current total. */
    std::uint64_t value() const noexcept;

    const std::string& name() const { return name_; }
    const std::string& help() const { return help_; }

  private:
    struct alignas(64) Shard
    {
        std::atomic<std::uint64_t> value{0};
    };

    std::array<Shard, kCounterShards> shards_;
    std::string name_;
    std::string help_;
};

/** Last-written-value gauge with an atomic-max variant for peaks. */
class Gauge
{
  public:
    Gauge(std::string name, std::string help);

    Gauge(const Gauge&) = delete;
    Gauge& operator=(const Gauge&) = delete;

    void
    set(std::int64_t value) noexcept
    {
        value_.store(value, std::memory_order_relaxed);
    }

    void
    add(std::int64_t delta) noexcept
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    void
    sub(std::int64_t delta) noexcept
    {
        value_.fetch_sub(delta, std::memory_order_relaxed);
    }

    /** Raise the gauge to at least `candidate` (CAS loop; rarely hot). */
    void updateMax(std::int64_t candidate) noexcept;

    std::int64_t
    value() const noexcept
    {
        return value_.load(std::memory_order_relaxed);
    }

    const std::string& name() const { return name_; }
    const std::string& help() const { return help_; }

  private:
    alignas(64) std::atomic<std::int64_t> value_{0};
    std::string name_;
    std::string help_;
};

/**
 * Histogram over fixed log2 buckets: an observation v lands in bucket
 * bit_width(v) (bucket 0 holds v == 0, bucket i holds 2^(i-1)..2^i-1).
 * observe() is two relaxed adds; no locks, no allocation.
 */
class Histogram
{
  public:
    Histogram(std::string name, std::string help);

    Histogram(const Histogram&) = delete;
    Histogram& operator=(const Histogram&) = delete;

    void observe(std::uint64_t value) noexcept;

    std::uint64_t count() const noexcept;
    std::uint64_t sum() const noexcept;

    const std::string& name() const { return name_; }
    const std::string& help() const { return help_; }

    /** Non-cumulative per-bucket counts (index = bit_width). */
    std::array<std::uint64_t, kHistogramBuckets> bucketCounts() const;

  private:
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_;
    alignas(64) std::atomic<std::uint64_t> sum_{0};
    std::string name_;
    std::string help_;
};

/** Point-in-time copy of one counter. */
struct CounterSample
{
    std::string name;
    std::string help;
    std::uint64_t value = 0;
};

/** Point-in-time copy of one gauge. */
struct GaugeSample
{
    std::string name;
    std::string help;
    std::int64_t value = 0;
};

/** Point-in-time copy of one histogram. */
struct HistogramSample
{
    std::string name;
    std::string help;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/**
 * Stable snapshot of a registry. Samples keep registration order, so
 * diffing two snapshots lines up by index as well as by name.
 */
struct MetricsSnapshot
{
    std::vector<CounterSample> counters;
    std::vector<GaugeSample> gauges;
    std::vector<HistogramSample> histograms;

    const CounterSample* findCounter(std::string_view name) const;
    const GaugeSample* findGauge(std::string_view name) const;
    const HistogramSample* findHistogram(std::string_view name) const;

    /** Counter value by name, or `fallback` when absent. */
    std::uint64_t counterValue(std::string_view name,
                               std::uint64_t fallback = 0) const;

    /** Prometheus text exposition (HELP/TYPE + samples). */
    std::string toPrometheusText() const;

    /** Single JSON object {"counters":{...},...} for bench artifacts. */
    std::string toJson() const;
};

/**
 * Owner of metric instances. Registration takes a mutex and is meant
 * for startup/first-use; the returned references stay valid until the
 * registry dies and are safe to use from any thread. Registering the
 * same name twice returns the same instance.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    Counter& counter(const std::string& name,
                     const std::string& help = "");
    Gauge& gauge(const std::string& name, const std::string& help = "");
    Histogram& histogram(const std::string& name,
                         const std::string& help = "");

    /**
     * Retire a counter series by exact name (including any label
     * suffix) so per-instance families — per-session solve counters —
     * stop growing the registry as instances churn. Returns whether
     * the series existed. This is the one exception to handle
     * stability: the reference counter() returned for that name
     * dangles afterwards, so only the owner that registered the
     * series may remove it, after dropping every cached handle (the
     * service folds the value into an aggregate "retired" counter
     * first). A later counter() call with the same name starts a
     * fresh series from zero.
     */
    bool removeCounter(const std::string& name);

    MetricsSnapshot snapshot() const;

    /** Process-wide registry used by solver/thread-pool internals. */
    static MetricsRegistry& global();

  private:
    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Counter>> counters_;
    std::vector<std::unique_ptr<Gauge>> gauges_;
    std::vector<std::unique_ptr<Histogram>> histograms_;
};

} // namespace rsqp::telemetry

#endif // RSQP_TELEMETRY_METRICS_HPP
