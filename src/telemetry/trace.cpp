#include "telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace rsqp::telemetry
{

std::uint64_t
traceNowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point anchor = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - anchor)
            .count());
}

TraceRecorder&
TraceRecorder::global()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::setRingCapacity(std::size_t events)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ringCapacity_ = std::max<std::size_t>(1, events);
}

TraceRecorder::Ring&
TraceRecorder::threadRing()
{
    thread_local Ring* ring = nullptr;
    thread_local const TraceRecorder* owner = nullptr;
    if (ring == nullptr || owner != this) {
        std::lock_guard<std::mutex> lock(mutex_);
        rings_.push_back(std::make_unique<Ring>());
        ring = rings_.back().get();
        ring->capacity = ringCapacity_;
        ring->events.reserve(ring->capacity);
        ring->tid = nextTid_++;
        owner = this;
    }
    return *ring;
}

void
TraceRecorder::record(const char* name, std::uint64_t startNs,
                      std::uint64_t durationNs)
{
    Ring& ring = threadRing();
    std::lock_guard<std::mutex> lock(ring.mutex);
    TraceEvent event{name, startNs, durationNs, ring.tid};
    if (ring.events.size() < ring.capacity) {
        ring.events.push_back(event);
    } else {
        // Full: overwrite the oldest entry and count it as dropped.
        ring.events[ring.next] = event;
        ring.next = (ring.next + 1) % ring.capacity;
        ++ring.dropped;
    }
}

TraceRecorder::DrainResult
TraceRecorder::drain()
{
    DrainResult result;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& ring_ptr : rings_) {
        Ring& ring = *ring_ptr;
        std::lock_guard<std::mutex> ring_lock(ring.mutex);
        // Chronological order: the oldest surviving event sits at the
        // overwrite cursor once the ring has wrapped.
        for (std::size_t i = 0; i < ring.events.size(); ++i) {
            const std::size_t slot =
                (ring.next + i) % ring.events.size();
            result.events.push_back(ring.events[slot]);
        }
        result.dropped += ring.dropped;
        ring.events.clear();
        ring.next = 0;
        ring.dropped = 0;
    }
    std::sort(result.events.begin(), result.events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  return a.startNs < b.startNs;
              });
    return result;
}

std::string
TraceRecorder::drainJson()
{
    const DrainResult drained = drain();
    std::ostringstream os;
    // trace_event timestamps are microseconds; emit ns as micro.nano.
    auto micros = [&os](std::uint64_t ns) {
        os << ns / 1000 << '.';
        const std::uint64_t frac = ns % 1000;
        os << static_cast<char>('0' + frac / 100)
           << static_cast<char>('0' + (frac / 10) % 10)
           << static_cast<char>('0' + frac % 10);
    };
    os << "{\"displayTimeUnit\":\"ms\",\"droppedEvents\":"
       << drained.dropped << ",\"traceEvents\":[";
    for (std::size_t i = 0; i < drained.events.size(); ++i) {
        const TraceEvent& event = drained.events[i];
        if (i)
            os << ',';
        os << "{\"name\":\"" << event.name
           << "\",\"cat\":\"rsqp\",\"ph\":\"X\",\"pid\":1,\"tid\":"
           << event.tid << ",\"ts\":";
        micros(event.startNs);
        os << ",\"dur\":";
        micros(event.durationNs);
        os << '}';
    }
    os << "]}";
    return os.str();
}

} // namespace rsqp::telemetry
