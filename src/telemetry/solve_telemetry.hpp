/**
 * @file
 * Per-solve telemetry record: the compact, structured summary of one
 * solve that rides along on OsqpInfo / RsqpResult / SessionResult.
 *
 * Unlike the registry (process-wide monotonic aggregates) and trace
 * spans (timeline), SolveTelemetry answers "what happened to *this*
 * request": iteration counts, PCG effort, the tail of the residual
 * trajectory, recovery/fault events, which customization route the
 * service took, and queue-wait vs execute time. It is always
 * populated — the RSQP_TELEMETRY switch only compiles out the timed
 * span instrumentation, not this record.
 */

#ifndef RSQP_TELEMETRY_SOLVE_TELEMETRY_HPP
#define RSQP_TELEMETRY_SOLVE_TELEMETRY_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace rsqp
{

/** Which path produced the solver a request ran on. */
enum class SolveRoute
{
    None,           ///< direct solver use, no service routing
    Parametric,     ///< in-place update of a live solver
    CacheThaw,      ///< customization artifact thawed from the cache
    FullCustomize,  ///< cold path: full customization run
};

const char* toString(SolveRoute route);

/** One residual check: (iteration, primal, dual). */
struct ResidualSample
{
    Index iteration = 0;
    Real primalResidual = 0.0;
    Real dualResidual = 0.0;
};

/** How many residual checks the trajectory tail keeps. */
inline constexpr std::size_t kResidualTailCapacity = 8;

/** Structured per-solve summary (see file comment). */
struct SolveTelemetry
{
    /**
     * First-order engine that produced the result ("admm",
     * "admm-accel", "pdhg"; after an Auto-driver mid-solve switch,
     * the engine that finished). Empty only on results that never
     * reached a solver (rejected/shedded service requests).
     */
    std::string backend;

    /** Momentum/average restarts taken (accelerated ADMM and PDHG). */
    Count restarts = 0;

    /** Mid-solve engine switches (Auto driver only). */
    Count backendSwitches = 0;

    /** First-order iterations executed. */
    Index iterations = 0;

    /** KKT system solves (== iterations on the happy path). */
    Count kktSolves = 0;

    /** Total inner PCG iterations (0 for the direct backend). */
    Count pcgIterationsTotal = 0;

    /** Mean PCG iterations per KKT solve. */
    Real pcgItersPerSolve = 0.0;

    /** Active SIMD ISA level of the vector kernels ("scalar", "avx2",
     *  "avx512"). */
    std::string isaLevel;

    /** PCG precision mode of the solve ("fp64" / "mixed-fp32"). */
    std::string precision;

    /** fp64 iterative-refinement sweeps (mixed-precision mode only). */
    Count refinementSweeps = 0;

    /** KKT steps where mixed precision stalled and fp64 rescued. */
    Count fp64Rescues = 0;

    /** Last <= kResidualTailCapacity residual checks, oldest first. */
    std::vector<ResidualSample> residualTail;

    /** Recovery actions taken (rollbacks, sigma boosts, fallbacks). */
    Count recoveryEvents = 0;

    /** Injected faults observed (fault-injection builds/tests). */
    Count faultsInjected = 0;

    /** Service routing decision (None outside the service layer). */
    SolveRoute route = SolveRoute::None;

    /** Time spent queued before execution began (service layer). */
    double queueWaitSeconds = 0.0;

    /** Customization/setup time before iterating (service layer). */
    double setupSeconds = 0.0;

    /** Wall-clock solve time. */
    double solveSeconds = 0.0;

    /** Append one residual check, keeping only the most recent tail. */
    void pushResidual(Index iteration, Real primal, Real dual);

    /** Single-line JSON object (bench artifacts, logs). */
    std::string toJson() const;
};

} // namespace rsqp

#endif // RSQP_TELEMETRY_SOLVE_TELEMETRY_HPP
