/**
 * @file
 * Trace spans: RAII-scoped timed regions recorded into per-thread
 * ring buffers, drained as Chrome trace_event JSON (load the output
 * of drainJson() in chrome://tracing or Perfetto).
 *
 * Cost model: with tracing disabled at runtime a TELEMETRY_SPAN is a
 * relaxed atomic load plus one branch; enabled it adds two
 * steady_clock reads and a short uncontended mutex hold on the
 * calling thread's own ring. Under -DRSQP_TELEMETRY=OFF the macro
 * expands to nothing and no trace code is referenced at all.
 *
 * Rings have fixed capacity; when full, new events overwrite the
 * oldest and the overwritten count is reported as "dropped" by
 * drain(). Span names must be string literals (the recorder stores
 * the pointer, not a copy).
 */

#ifndef RSQP_TELEMETRY_TRACE_HPP
#define RSQP_TELEMETRY_TRACE_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/config.hpp"

namespace rsqp::telemetry
{

/** Default per-thread ring capacity, in events. */
inline constexpr std::size_t kDefaultTraceRingCapacity = 8192;

/** Monotonic nanoseconds since the first telemetry clock read. */
std::uint64_t traceNowNs();

/** One completed span. `name` must outlive the recorder (literal). */
struct TraceEvent
{
    const char* name = nullptr;
    std::uint64_t startNs = 0;
    std::uint64_t durationNs = 0;
    std::uint32_t tid = 0;
};

/**
 * Process-wide span sink. Threads append to private rings; drain()
 * collects every ring, empties them, and reports how many events were
 * overwritten since the previous drain.
 */
class TraceRecorder
{
  public:
    static TraceRecorder& global();

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    void enable() { enabled_.store(true, std::memory_order_relaxed); }

    void
    disable()
    {
        enabled_.store(false, std::memory_order_relaxed);
    }

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Ring size for threads that record their first span later on. */
    void setRingCapacity(std::size_t events);

    /** Append one completed span to the calling thread's ring. */
    void record(const char* name, std::uint64_t startNs,
                std::uint64_t durationNs);

    struct DrainResult
    {
        std::vector<TraceEvent> events;  // sorted by startNs
        std::uint64_t dropped = 0;       // overwritten since last drain
    };

    /** Move all buffered events out and reset every ring. */
    DrainResult drain();

    /** drain() rendered as a Chrome trace_event JSON document. */
    std::string drainJson();

  private:
    TraceRecorder() = default;

    struct Ring
    {
        std::mutex mutex;
        std::vector<TraceEvent> events;
        std::size_t capacity = kDefaultTraceRingCapacity;
        std::size_t next = 0;       // overwrite cursor once full
        std::uint64_t dropped = 0;  // overwritten since last drain
        std::uint32_t tid = 0;
    };

    Ring& threadRing();

    std::atomic<bool> enabled_{false};
    std::mutex mutex_;  // guards rings_ and capacity changes
    std::vector<std::unique_ptr<Ring>> rings_;
    std::size_t ringCapacity_ = kDefaultTraceRingCapacity;
    std::uint32_t nextTid_ = 1;
};

/**
 * RAII span: samples the clock in the constructor when tracing is
 * enabled and records on destruction. Use via TELEMETRY_SPAN.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char* name)
    {
        if (TraceRecorder::global().enabled()) {
            name_ = name;
            start_ = traceNowNs();
        }
    }

    ~TraceSpan()
    {
        if (name_ != nullptr)
            TraceRecorder::global().record(name_, start_,
                                           traceNowNs() - start_);
    }

    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

  private:
    const char* name_ = nullptr;
    std::uint64_t start_ = 0;
};

} // namespace rsqp::telemetry

#if RSQP_TELEMETRY_ENABLED
#define RSQP_TELEMETRY_CONCAT_IMPL(a, b) a##b
#define RSQP_TELEMETRY_CONCAT(a, b) RSQP_TELEMETRY_CONCAT_IMPL(a, b)
/** Open a named RAII span covering the rest of the enclosing scope. */
#define TELEMETRY_SPAN(name)                                          \
    ::rsqp::telemetry::TraceSpan RSQP_TELEMETRY_CONCAT(               \
        rsqp_telemetry_span_, __COUNTER__)(name)
#else
#define TELEMETRY_SPAN(name) ((void)0)
#endif

#endif // RSQP_TELEMETRY_TRACE_HPP
