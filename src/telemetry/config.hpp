/**
 * @file
 * Compile-time switch for the telemetry subsystem.
 *
 * The build defines RSQP_TELEMETRY_DISABLED (via -DRSQP_TELEMETRY=OFF
 * at configure time) to compile out the hot-path instrumentation:
 * TELEMETRY_SPAN expands to nothing and the timed sections guarded by
 * RSQP_TELEMETRY_ENABLED disappear. The metrics registry itself stays
 * functional in both modes — service-level counters (queue depth,
 * cache hits, per-session solves) are control-plane state that the
 * serving layer depends on, not optional profiling.
 */

#ifndef RSQP_TELEMETRY_CONFIG_HPP
#define RSQP_TELEMETRY_CONFIG_HPP

#if defined(RSQP_TELEMETRY_DISABLED)
#define RSQP_TELEMETRY_ENABLED 0
#else
#define RSQP_TELEMETRY_ENABLED 1
#endif

namespace rsqp::telemetry
{

/** True when the build compiled the span/timing instrumentation in. */
inline constexpr bool kTelemetryCompiled = RSQP_TELEMETRY_ENABLED != 0;

} // namespace rsqp::telemetry

#endif // RSQP_TELEMETRY_CONFIG_HPP
