/**
 * @file
 * Solver status codes and result/info containers.
 */

#ifndef RSQP_OSQP_STATUS_HPP
#define RSQP_OSQP_STATUS_HPP

#include <string>
#include <vector>

#include "common/profile.hpp"
#include "common/types.hpp"
#include "osqp/recovery.hpp"
#include "osqp/validate.hpp"
#include "telemetry/solve_telemetry.hpp"

namespace rsqp
{

/** Final status of an OSQP solve. */
enum class SolveStatus
{
    Solved,
    MaxIterReached,
    PrimalInfeasible,
    DualInfeasible,
    NumericalError,
    InvalidProblem,   ///< problem data failed validation (see report)
    TimeLimitReached, ///< wall-clock budget expired (mid-solve, or in
                      ///< the service queue before the solve started)
    Rejected,         ///< service admission queue full or bad request
    ShuttingDown,     ///< service destroyed with the request still
                      ///< queued; it was never started (shed load, not
                      ///< a client error — distinct from Rejected)
    Cancelled,        ///< client cancelled the request via its token
                      ///< before it launched; session state untouched
    Unsolved,
};

/**
 * Printable name of a status code — the one canonical stringifier;
 * bench/report code must not roll its own.
 */
const char* statusToString(SolveStatus status);

/** Printable name of a status code (alias of statusToString). */
const char* toString(SolveStatus status);

/** One row of the optional per-iteration trace. */
struct IterationRecord
{
    Index iteration = 0;
    Real primRes = 0.0;
    Real dualRes = 0.0;
    Real rho = 0.0;
    Index pcgIterations = 0;
};

/** Run statistics mirroring OSQP's info struct. */
struct OsqpInfo
{
    SolveStatus status = SolveStatus::Unsolved;
    Index iterations = 0;
    Real objective = 0.0;
    Real primRes = 0.0;
    Real dualRes = 0.0;
    Index rhoUpdates = 0;
    Count pcgIterationsTotal = 0;
    /// fp64 iterative-refinement sweeps (mixed-precision PCG only).
    Count refinementSweepsTotal = 0;
    /// KKT steps where the mixed-precision path stalled and a full
    /// fp64 PCG solve finished the step.
    Count fp64Rescues = 0;

    double setupTime = 0.0;    ///< seconds spent in setup()
    double solveTime = 0.0;    ///< seconds spent in solve()
    double kktSolveTime = 0.0; ///< seconds inside the KKT backend
                               ///< (the Fig. 8 numerator)

    /// Per-phase hot-path counters of this solve (indirect backend
    /// with PcgSettings::profile; all-zero otherwise).
    HotPathProfile hotPath;

    RecoveryReport recovery;   ///< every recovery action of the solve

    /** Structured per-solve summary (residual tail, PCG effort). */
    SolveTelemetry telemetry;
};

/** Outcome of a solution-polish attempt (see osqp/polish.hpp). */
struct PolishReport
{
    bool attempted = false;
    bool adopted = false;
    Index activeLower = 0;  ///< constraints active at their lower bound
    Index activeUpper = 0;  ///< constraints active at their upper bound
    Real primResBefore = 0.0;
    Real dualResBefore = 0.0;
    Real primResAfter = 0.0;
    Real dualResAfter = 0.0;
};

/** Solution + info returned by OsqpSolver::solve(). */
struct OsqpResult
{
    Vector x;  ///< primal solution (unscaled)
    Vector y;  ///< dual solution (unscaled)
    Vector z;  ///< constraint activation A x (unscaled)
    OsqpInfo info;
    PolishReport polish;  ///< filled if settings.polish
    std::vector<IterationRecord> trace;  ///< filled if recordTrace
    ValidationReport validation;  ///< diagnostics when InvalidProblem
};

} // namespace rsqp

#endif // RSQP_OSQP_STATUS_HPP
