#include "residuals.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "linalg/vector_ops.hpp"

namespace rsqp
{

ResidualInfo
computeResiduals(const QpProblem& problem, const Vector& x,
                 const Vector& y, const Vector& z, Real eps_abs,
                 Real eps_rel)
{
    ResidualInfo info;
    Vector ax;
    problem.a.spmv(x, ax);
    info.primRes = normInfDiff(ax, z);
    info.epsPrim = eps_abs +
        eps_rel * std::max(normInf(ax), normInf(z));

    Vector px;
    problem.pUpper.spmvSymUpper(x, px);
    Vector aty;
    problem.a.spmvTranspose(y, aty);
    Real dual = 0.0;
    for (std::size_t j = 0; j < px.size(); ++j)
        dual = std::max(dual,
                        std::abs(px[j] + problem.q[j] + aty[j]));
    info.dualRes = dual;
    info.epsDual = eps_abs +
        eps_rel * std::max({normInf(px), normInf(aty),
                            normInf(problem.q)});
    return info;
}

} // namespace rsqp
