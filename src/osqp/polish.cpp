#include "polish.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "linalg/kkt.hpp"
#include "linalg/vector_ops.hpp"
#include "osqp/residuals.hpp"
#include "solvers/ldl.hpp"
#include "solvers/ordering.hpp"

namespace rsqp
{

namespace
{

/** y_full = K_true * t for K_true = [[P, A_act'], [A_act, 0]]. */
void
applyTrueKkt(const CscMatrix& p_upper, const CscMatrix& a_act,
             const Vector& t, Vector& out)
{
    const Index n = p_upper.cols();
    const Index ma = a_act.rows();
    const Vector x(t.begin(), t.begin() + n);
    const Vector y(t.begin() + n, t.end());
    Vector px;
    p_upper.spmvSymUpper(x, px);
    Vector aty;
    a_act.spmvTranspose(y, aty);
    Vector ax;
    a_act.spmv(x, ax);
    out.resize(t.size());
    for (Index j = 0; j < n; ++j)
        out[static_cast<std::size_t>(j)] =
            px[static_cast<std::size_t>(j)] +
            aty[static_cast<std::size_t>(j)];
    for (Index i = 0; i < ma; ++i)
        out[static_cast<std::size_t>(n + i)] =
            ax[static_cast<std::size_t>(i)];
}

} // namespace

PolishReport
polishSolution(const QpProblem& problem, const OsqpSettings& settings,
               OsqpResult& result)
{
    PolishReport report;
    const Index n = problem.numVariables();
    const Index m = problem.numConstraints();

    const ResidualInfo before = computeResiduals(
        problem, result.x, result.y, result.z, settings.epsAbs,
        settings.epsRel);
    report.primResBefore = before.primRes;
    report.dualResBefore = before.dualRes;

    // Guess the active set from the dual signs.
    IndexVector active_rows;
    Vector b_act;
    for (Index i = 0; i < m; ++i) {
        const Real y_i = result.y[static_cast<std::size_t>(i)];
        const Real lo = problem.l[static_cast<std::size_t>(i)];
        const Real hi = problem.u[static_cast<std::size_t>(i)];
        if (y_i < 0.0 && lo > -kInf) {
            active_rows.push_back(i);
            b_act.push_back(lo);
            ++report.activeLower;
        } else if (y_i > 0.0 && hi < kInf) {
            active_rows.push_back(i);
            b_act.push_back(hi);
            ++report.activeUpper;
        }
    }
    report.attempted = true;

    // Extract the active rows of A.
    const Index ma = static_cast<Index>(active_rows.size());
    IndexVector row_map(static_cast<std::size_t>(m), -1);
    for (Index k = 0; k < ma; ++k)
        row_map[static_cast<std::size_t>(
            active_rows[static_cast<std::size_t>(k)])] = k;
    TripletList act_triplets(ma, n);
    for (Index c = 0; c < n; ++c) {
        for (Index p = problem.a.colPtr()[c];
             p < problem.a.colPtr()[c + 1]; ++p) {
            const Index mapped =
                row_map[static_cast<std::size_t>(problem.a.rowIdx()[p])];
            if (mapped >= 0)
                act_triplets.add(mapped, c, problem.a.values()[p]);
        }
    }
    const CscMatrix a_act = CscMatrix::fromTriplets(act_triplets);

    // Regularized KKT of the active-set equality QP. Reusing the
    // KKT assembler: sigma = delta, rho = 1/delta gives the -delta*I
    // lower-right block.
    const Real delta = settings.polishDelta;
    KktAssembler assembler(problem.pUpper, a_act, delta,
                           constantVector(ma, 1.0 / delta));
    const IndexVector perm =
        computeOrdering(assembler.kkt(), OrderingKind::Rcm);
    IndexVector inv(perm.size());
    for (Index i = 0; i < static_cast<Index>(perm.size()); ++i)
        inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] =
            i;
    const CscMatrix kkt_perm = assembler.kkt().symUpperPermute(perm);
    LdlFactorization ldl(kkt_perm);
    if (!ldl.factor(kkt_perm))
        return report;  // degenerate active set; keep the ADMM point

    // rhs = [-q; b_act]; solve with iterative refinement against the
    // unregularized system.
    Vector rhs(static_cast<std::size_t>(n + ma));
    for (Index j = 0; j < n; ++j)
        rhs[static_cast<std::size_t>(j)] =
            -problem.q[static_cast<std::size_t>(j)];
    for (Index i = 0; i < ma; ++i)
        rhs[static_cast<std::size_t>(n + i)] =
            b_act[static_cast<std::size_t>(i)];

    auto permuted_solve = [&](const Vector& b) {
        Vector pb(b.size());
        for (std::size_t i = 0; i < b.size(); ++i)
            pb[i] = b[static_cast<std::size_t>(
                perm[static_cast<std::size_t>(i)])];
        ldl.solve(pb);
        Vector out(b.size());
        for (std::size_t i = 0; i < b.size(); ++i)
            out[static_cast<std::size_t>(
                perm[static_cast<std::size_t>(i)])] = pb[i];
        return out;
    };

    Vector t = permuted_solve(rhs);
    Vector kt, residual(rhs.size());
    for (Index iter = 0; iter < settings.polishRefineIter; ++iter) {
        applyTrueKkt(problem.pUpper, a_act, t, kt);
        for (std::size_t i = 0; i < rhs.size(); ++i)
            residual[i] = rhs[i] - kt[i];
        const Vector dt = permuted_solve(residual);
        for (std::size_t i = 0; i < t.size(); ++i)
            t[i] += dt[i];
    }
    if (!allFinite(t))
        return report;

    // Candidate polished point.
    Vector x_pol(t.begin(), t.begin() + n);
    Vector y_pol(static_cast<std::size_t>(m), 0.0);
    for (Index k = 0; k < ma; ++k)
        y_pol[static_cast<std::size_t>(
            active_rows[static_cast<std::size_t>(k)])] =
            t[static_cast<std::size_t>(n + k)];
    Vector z_pol;
    problem.a.spmv(x_pol, z_pol);

    const ResidualInfo after = computeResiduals(
        problem, x_pol, y_pol, z_pol, settings.epsAbs, settings.epsRel);
    report.primResAfter = after.primRes;
    report.dualResAfter = after.dualRes;

    if (after.primRes <= before.primRes &&
        after.dualRes <= before.dualRes) {
        result.x = std::move(x_pol);
        result.y = std::move(y_pol);
        result.z = std::move(z_pol);
        result.info.primRes = after.primRes;
        result.info.dualRes = after.dualRes;
        result.info.objective = problem.objective(result.x);
        report.adopted = true;
    }
    return report;
}

} // namespace rsqp
