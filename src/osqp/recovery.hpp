/**
 * @file
 * Numerical-failure recovery machinery of the ADMM loop: the
 * divergence watchdog, the last-good iterate checkpoint, and the
 * RecoveryReport that records every recovery action a solve took
 * (PCG→LDL fallback, checkpoint restore, sigma boost, device retry).
 *
 * The design goal is *bounded, typed* behavior under numerical stress:
 * a solve either converges (possibly after recovery, all attempts on
 * record) or terminates with a typed failure status and finite
 * iterates — never a NaN result, never a hang.
 */

#ifndef RSQP_OSQP_RECOVERY_HPP
#define RSQP_OSQP_RECOVERY_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace rsqp
{

/** One kind of recovery action the solver can take. */
enum class RecoveryAction
{
    PcgDirectFallback,  ///< PCG broke down; the LDL' path solved the step
    CheckpointRestore,  ///< diverged; rolled back to the last-good iterate
    SigmaBoost,         ///< retried with boosted sigma regularization
    FaultRetry,         ///< device run produced non-finite data; re-ran
};

/** Printable name of a recovery action. */
const char* toString(RecoveryAction action);

/** One recorded recovery attempt. */
struct RecoveryEvent
{
    RecoveryAction action = RecoveryAction::PcgDirectFallback;
    Index iteration = 0;  ///< ADMM iteration (0 = outside the loop)
    std::string detail;   ///< trigger description, new parameter value...
};

/** Every recovery action of one solve, in order. */
struct RecoveryReport
{
    std::vector<RecoveryEvent> events;
    Index pcgFallbacks = 0;       ///< KKT steps solved by the LDL' path
    Index checkpointRestores = 0; ///< divergence rollbacks
    Index sigmaBoosts = 0;        ///< regularization escalations
    Index faultRetries = 0;       ///< full device-run retries

    bool empty() const { return events.empty(); }

    /** Append one event (counters are bumped by the caller's field). */
    void record(RecoveryAction action, Index iteration,
                std::string detail = "");

    /** One-line human-readable digest ("2 pcg fallbacks, 1 restore"). */
    std::string summary() const;
};

/** Watchdog thresholds and recovery policy knobs. */
struct FaultToleranceSettings
{
    /**
     * Master switch for the divergence watchdog and the
     * checkpoint/restore recovery path. When false the solver keeps
     * the legacy behavior: a non-finite iterate at a termination
     * check reports NumericalError immediately with no rollback.
     */
    bool watchdog = true;

    /**
     * Declare divergence when the combined residual exceeds the best
     * combined residual seen so far by this factor (or goes
     * non-finite). Conservative by design: transient residual bumps
     * from rho updates are orders of magnitude smaller.
     */
    Real divergenceFactor = 1e6;

    /**
     * Declare a stall after this many consecutive termination checks
     * without any improvement of the best combined residual
     * (0 disables stall detection). A stall triggers the same
     * checkpoint+sigma recovery once, then the solve is left to run
     * to its iteration budget.
     */
    Index stallChecks = 40;

    /** Checkpoint-restore attempts before giving up. */
    Index maxRecoveryAttempts = 1;

    /** Multiplier applied to sigma on every checkpoint restore. */
    Real sigmaBoost = 1e3;
};

/** Last-good iterate snapshot used by the divergence recovery path. */
class IterateCheckpoint
{
  public:
    /** Snapshot the (scaled) iterates at a healthy termination check. */
    void capture(const Vector& x, const Vector& y, const Vector& z,
                 Index iteration);

    bool valid() const { return valid_; }
    Index iteration() const { return iteration_; }

    /** Overwrite the iterates with the snapshot (requires valid()). */
    void restore(Vector& x, Vector& y, Vector& z) const;

  private:
    Vector x_, y_, z_;
    Index iteration_ = 0;
    bool valid_ = false;
};

/**
 * Divergence/stall detector fed at every termination check with the
 * unscaled residual pair.
 */
class DivergenceWatchdog
{
  public:
    enum class Verdict
    {
        Ok,        ///< residuals healthy (new checkpoint candidate)
        Stalled,   ///< no progress for stallChecks checks
        Diverged,  ///< non-finite or blown up vs. the best seen
    };

    explicit DivergenceWatchdog(const FaultToleranceSettings& settings);

    /** Feed one residual observation; returns the verdict. */
    Verdict observe(Real prim_res, Real dual_res);

    /** Forget history (after a checkpoint restore). */
    void reset();

    Real bestScore() const { return bestScore_; }

  private:
    FaultToleranceSettings settings_;
    Real bestScore_ = kInf;
    Index checksSinceImprovement_ = 0;
};

/** Printable verdict name for diagnostics. */
const char* toString(DivergenceWatchdog::Verdict verdict);

} // namespace rsqp

#endif // RSQP_OSQP_RECOVERY_HPP
