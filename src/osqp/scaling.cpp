#include "scaling.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "linalg/vector_ops.hpp"

namespace rsqp
{

namespace
{

constexpr Real kMinScaling = 1e-4;
constexpr Real kMaxScaling = 1e4;

/** 1/sqrt(norm), guarded for zero norms and clamped to sane bounds. */
Real
equilibrationFactor(Real norm)
{
    if (norm == 0.0)
        return 1.0;
    return clampReal(1.0 / std::sqrt(norm), kMinScaling, kMaxScaling);
}

} // namespace

Scaling
Scaling::identity(Index n, Index m)
{
    Scaling s;
    s.d = constantVector(n, 1.0);
    s.dInv = constantVector(n, 1.0);
    s.e = constantVector(m, 1.0);
    s.eInv = constantVector(m, 1.0);
    return s;
}

Scaling
ruizEquilibrate(QpProblem& problem, Index iterations)
{
    const Index n = problem.numVariables();
    const Index m = problem.numConstraints();
    Scaling scaling = Scaling::identity(n, m);
    if (iterations <= 0)
        return scaling;

    for (Index sweep = 0; sweep < iterations; ++sweep) {
        // Column infinity norms of the symmetric KKT-like stack
        // M = [[P, A'], [A, 0]].
        const Vector p_norms = problem.pUpper.symUpperColumnInfNorms();
        const Vector a_col_norms = problem.a.columnInfNorms();
        const Vector a_row_norms = problem.a.rowInfNorms();

        Vector delta_d(static_cast<std::size_t>(n));
        for (Index j = 0; j < n; ++j)
            delta_d[static_cast<std::size_t>(j)] = equilibrationFactor(
                std::max(p_norms[static_cast<std::size_t>(j)],
                         a_col_norms[static_cast<std::size_t>(j)]));
        Vector delta_e(static_cast<std::size_t>(m));
        for (Index i = 0; i < m; ++i)
            delta_e[static_cast<std::size_t>(i)] = equilibrationFactor(
                a_row_norms[static_cast<std::size_t>(i)]);

        // Apply this sweep's diagonal scaling.
        problem.pUpper.scaleInPlace(delta_d, delta_d);
        for (Index j = 0; j < n; ++j)
            problem.q[static_cast<std::size_t>(j)] *=
                delta_d[static_cast<std::size_t>(j)];
        problem.a.scaleInPlace(delta_e, delta_d);
        for (Index j = 0; j < n; ++j)
            scaling.d[static_cast<std::size_t>(j)] *=
                delta_d[static_cast<std::size_t>(j)];
        for (Index i = 0; i < m; ++i)
            scaling.e[static_cast<std::size_t>(i)] *=
                delta_e[static_cast<std::size_t>(i)];

        // Cost normalization: make the objective O(1).
        const Vector p_norms_now = problem.pUpper.symUpperColumnInfNorms();
        Real mean_p = 0.0;
        for (Real v : p_norms_now)
            mean_p += v;
        if (n > 0)
            mean_p /= static_cast<Real>(n);
        const Real q_norm = normInf(problem.q);
        Real gamma = std::max(mean_p, q_norm);
        gamma = (gamma == 0.0)
            ? 1.0
            : clampReal(1.0 / gamma, kMinScaling, kMaxScaling);
        scale(problem.q, gamma);
        scale(problem.pUpper.values(), gamma);
        scaling.c *= gamma;
    }

    // Scale the bounds once with the accumulated E (infinities stay put).
    for (Index i = 0; i < m; ++i) {
        const Real e_i = scaling.e[static_cast<std::size_t>(i)];
        auto& lo = problem.l[static_cast<std::size_t>(i)];
        auto& hi = problem.u[static_cast<std::size_t>(i)];
        if (lo > -kInf)
            lo *= e_i;
        if (hi < kInf)
            hi *= e_i;
    }

    ewReciprocal(scaling.d, scaling.dInv);
    ewReciprocal(scaling.e, scaling.eInv);
    scaling.cInv = 1.0 / scaling.c;
    return scaling;
}

} // namespace rsqp
