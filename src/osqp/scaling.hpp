/**
 * @file
 * Modified Ruiz equilibration of the QP data, as in OSQP.
 *
 * The scaled problem is
 *   minimize    (1/2) xb' (c D P D) xb + (c D q)' xb
 *   subject to  E l <= (E A D) xb <= E u
 * with diagonal D (n), E (m) and cost scalar c. Solutions map back as
 *   x = D xb,   y = c^{-1} E yb,   z = E^{-1} zb.
 */

#ifndef RSQP_OSQP_SCALING_HPP
#define RSQP_OSQP_SCALING_HPP

#include "common/types.hpp"
#include "osqp/problem.hpp"

namespace rsqp
{

/** Diagonal scaling produced by Ruiz equilibration. */
struct Scaling
{
    Vector d;     ///< variable scaling, length n
    Vector dInv;  ///< 1 / d
    Vector e;     ///< constraint scaling, length m
    Vector eInv;  ///< 1 / e
    Real c = 1.0;     ///< cost scaling
    Real cInv = 1.0;  ///< 1 / c

    /** Identity scaling of the given dimensions. */
    static Scaling identity(Index n, Index m);
};

/**
 * Run `iterations` sweeps of modified Ruiz equilibration on (P, q, A)
 * and scale the problem in place (bounds included).
 *
 * @param problem QP data, modified in place to the scaled problem.
 * @param iterations Number of sweeps; 0 returns identity scaling.
 * @return the scaling that was applied.
 */
Scaling ruizEquilibrate(QpProblem& problem, Index iterations);

} // namespace rsqp

#endif // RSQP_OSQP_SCALING_HPP
