#include "problem_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.hpp"
#include "linalg/io.hpp"

namespace rsqp
{

namespace
{

void
writeVector(std::ostream& os, const char* tag, const Vector& values)
{
    os << tag << " " << values.size() << "\n";
    os.precision(17);
    for (Real v : values)
        os << v << "\n";
}

Vector
readVector(std::istream& is, const char* tag)
{
    std::string token;
    std::size_t count = 0;
    if (!(is >> token >> count) || token != tag)
        RSQP_FATAL("problem file: expected section '", tag, "', got '",
                   token, "'");
    Vector values(count);
    for (Real& v : values)
        if (!(is >> v))
            RSQP_FATAL("problem file: truncated '", tag, "' section");
    return values;
}

} // namespace

void
writeQpProblem(std::ostream& os, const QpProblem& problem)
{
    os << "RSQP-QP 1\n";
    os << "name " << (problem.name.empty() ? "unnamed" : problem.name)
       << "\n";
    writeVector(os, "q", problem.q);
    writeVector(os, "l", problem.l);
    writeVector(os, "u", problem.u);
    os << "P\n";
    writeMatrixMarket(os, problem.pUpper, /*symmetric_upper=*/true);
    os << "A\n";
    writeMatrixMarket(os, problem.a, /*symmetric_upper=*/false);
}

QpProblem
readQpProblem(std::istream& is)
{
    std::string magic;
    int version = 0;
    if (!(is >> magic >> version) || magic != "RSQP-QP" || version != 1)
        RSQP_FATAL("not an RSQP-QP v1 problem file");
    std::string token, name;
    if (!(is >> token >> name) || token != "name")
        RSQP_FATAL("problem file: missing name");

    QpProblem problem;
    problem.name = name;
    problem.q = readVector(is, "q");
    problem.l = readVector(is, "l");
    problem.u = readVector(is, "u");
    if (!(is >> token) || token != "P")
        RSQP_FATAL("problem file: missing P section");
    is.ignore();  // consume the newline before the MM banner
    problem.pUpper = readMatrixMarket(is);
    if (!(is >> token) || token != "A")
        RSQP_FATAL("problem file: missing A section");
    is.ignore();
    problem.a = readMatrixMarket(is);
    problem.validate();
    return problem;
}

void
saveQpProblem(const std::string& path, const QpProblem& problem)
{
    std::ofstream os(path);
    if (!os)
        RSQP_FATAL("cannot open '", path, "' for writing");
    writeQpProblem(os, problem);
}

QpProblem
loadQpProblem(const std::string& path)
{
    std::ifstream is(path);
    if (!is)
        RSQP_FATAL("cannot open '", path, "' for reading");
    return readQpProblem(is);
}

} // namespace rsqp
