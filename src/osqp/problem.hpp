/**
 * @file
 * Convex QP problem data container — problem (1) of the paper:
 *
 *   minimize    (1/2) x' P x + q' x
 *   subject to  l <= A x <= u
 */

#ifndef RSQP_OSQP_PROBLEM_HPP
#define RSQP_OSQP_PROBLEM_HPP

#include <string>

#include "common/types.hpp"
#include "linalg/csc.hpp"

namespace rsqp
{

/** QP problem data. P is stored as its upper triangle (CSC). */
struct QpProblem
{
    CscMatrix pUpper;  ///< objective Hessian, upper triangle, n x n
    Vector q;          ///< linear objective, length n
    CscMatrix a;       ///< constraint matrix, m x n
    Vector l;          ///< lower bounds, length m (-kInf allowed)
    Vector u;          ///< upper bounds, length m (+kInf allowed)
    std::string name;  ///< optional label for reports

    Index numVariables() const { return pUpper.cols(); }
    Index numConstraints() const { return a.rows(); }

    /** nnz(P) + nnz(A) — the size axis of every figure in the paper. */
    Count totalNnz() const { return pUpper.nnz() + a.nnz(); }

    /** Objective value (1/2) x'Px + q'x for a given x. */
    Real objective(const Vector& x) const;

    /**
     * Validate shapes, bound ordering (l <= u) and upper-triangularity;
     * throws FatalError on violations.
     */
    void validate() const;
};

} // namespace rsqp

#endif // RSQP_OSQP_PROBLEM_HPP
