/**
 * @file
 * Structured QP problem validation.
 *
 * `validateProblem` inspects a QpProblem and returns a
 * ValidationReport instead of throwing: malformed input — wrong
 * dimensions, broken CSC structure, NaN/Inf data, `l > u`, a
 * structurally non-upper-triangular or diagonally-indefinite `P` —
 * becomes a typed `SolveStatus::InvalidProblem` result with
 * per-category diagnostics rather than undefined behavior deep inside
 * the ADMM loop or the accelerator compiler.
 */

#ifndef RSQP_OSQP_VALIDATE_HPP
#define RSQP_OSQP_VALIDATE_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace rsqp
{

struct QpProblem;

/** Category of one validation failure. */
enum class ValidationCode
{
    DimensionMismatch,      ///< vector/matrix shapes disagree
    InvalidSparseStructure, ///< CSC invariants broken (ragged colPtr...)
    NotUpperTriangular,     ///< P stores entries below the diagonal
    NonFiniteData,          ///< NaN/Inf in matrix values or q/l/u
    InfeasibleBounds,       ///< l[i] > u[i] for some constraint
    IndefiniteDiagonal,     ///< diag(P) has a negative entry
    InvalidSetting,         ///< solver settings out of range
};

/** Printable name of a validation category. */
const char* toString(ValidationCode code);

/**
 * One failed check. Element-level scans report the first offending
 * index plus the total count in that category, not one issue per
 * element — a million-NaN problem yields one NonFiniteData issue.
 */
struct ValidationIssue
{
    ValidationCode code = ValidationCode::DimensionMismatch;
    std::string message;  ///< human-readable diagnostic
    Index index = -1;     ///< first offending element/column (-1: n/a)
    Count count = 1;      ///< total offenders in this category
};

/** Outcome of validating one QpProblem. */
struct ValidationReport
{
    std::vector<ValidationIssue> issues;

    bool ok() const { return issues.empty(); }

    /** True if any issue carries the given code. */
    bool has(ValidationCode code) const;

    /** Multi-line digest of all issues ("" when ok). */
    std::string describe() const;
};

/**
 * Run every check and collect all failures. Never throws, never
 * dereferences out-of-range indices: structural checks gate the
 * element scans that would otherwise read past broken arrays.
 */
ValidationReport validateProblem(const QpProblem& problem);

struct OsqpSettings;

/**
 * Validate algorithm settings (alpha in (0, 2), positive rho/sigma,
 * positive iteration caps). Like validateProblem this never throws:
 * a failing report turns the solve into a typed InvalidProblem result
 * — the successor of the constructor's retired RSQP_FATAL path.
 */
ValidationReport validateSettings(const OsqpSettings& settings);

} // namespace rsqp

#endif // RSQP_OSQP_VALIDATE_HPP
