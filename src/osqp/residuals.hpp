/**
 * @file
 * Shared (unscaled) OSQP residual and tolerance computations, used by
 * the ADMM loop, the polisher and the tests.
 */

#ifndef RSQP_OSQP_RESIDUALS_HPP
#define RSQP_OSQP_RESIDUALS_HPP

#include "osqp/problem.hpp"
#include "osqp/settings.hpp"

namespace rsqp
{

/** Residuals and the matching OSQP termination tolerances. */
struct ResidualInfo
{
    Real primRes = 0.0;   ///< ||A x - z||_inf
    Real dualRes = 0.0;   ///< ||P x + q + A' y||_inf
    Real epsPrim = 0.0;   ///< eps_abs + eps_rel * max(||Ax||, ||z||)
    Real epsDual = 0.0;   ///< eps_abs + eps_rel * max(||Px||,||A'y||,||q||)

    bool
    converged() const
    {
        return primRes <= epsPrim && dualRes <= epsDual;
    }
};

/** Compute unscaled residuals/tolerances at the point (x, y, z). */
ResidualInfo computeResiduals(const QpProblem& problem, const Vector& x,
                              const Vector& y, const Vector& z,
                              Real eps_abs, Real eps_rel);

} // namespace rsqp

#endif // RSQP_OSQP_RESIDUALS_HPP
