#include "recovery.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hpp"

namespace rsqp
{

const char*
toString(RecoveryAction action)
{
    switch (action) {
    case RecoveryAction::PcgDirectFallback:
        return "pcg-direct-fallback";
    case RecoveryAction::CheckpointRestore:
        return "checkpoint-restore";
    case RecoveryAction::SigmaBoost:
        return "sigma-boost";
    case RecoveryAction::FaultRetry:
        return "fault-retry";
    }
    return "unknown";
}

void
RecoveryReport::record(RecoveryAction action, Index iteration,
                       std::string detail)
{
    RecoveryEvent event;
    event.action = action;
    event.iteration = iteration;
    event.detail = std::move(detail);
    events.push_back(std::move(event));
}

std::string
RecoveryReport::summary() const
{
    if (empty())
        return "no recovery actions";
    std::string out;
    const auto append = [&out](Index count, const char* label) {
        if (count <= 0)
            return;
        if (!out.empty())
            out += ", ";
        out += std::to_string(count);
        out += ' ';
        out += label;
        if (count != 1)
            out += 's';
    };
    append(pcgFallbacks, "pcg fallback");
    append(checkpointRestores, "checkpoint restore");
    append(sigmaBoosts, "sigma boost");
    append(faultRetries, "fault retry");
    if (out.empty())
        out = std::to_string(events.size()) + " recovery events";
    return out;
}

void
IterateCheckpoint::capture(const Vector& x, const Vector& y,
                           const Vector& z, Index iteration)
{
    x_ = x;
    y_ = y;
    z_ = z;
    iteration_ = iteration;
    valid_ = true;
}

void
IterateCheckpoint::restore(Vector& x, Vector& y, Vector& z) const
{
    RSQP_ASSERT(valid_, "restore from an empty checkpoint");
    x = x_;
    y = y_;
    z = z_;
}

DivergenceWatchdog::DivergenceWatchdog(
    const FaultToleranceSettings& settings)
    : settings_(settings)
{
}

DivergenceWatchdog::Verdict
DivergenceWatchdog::observe(Real prim_res, Real dual_res)
{
    const Real score = prim_res + dual_res;
    if (!std::isfinite(score))
        return Verdict::Diverged;

    if (score < bestScore_) {
        bestScore_ = score;
        checksSinceImprovement_ = 0;
        return Verdict::Ok;
    }

    // The epsilon floor keeps a tiny best score (already at solver
    // tolerance) from flagging every later observation as divergence.
    if (bestScore_ < kInf &&
        score > settings_.divergenceFactor *
                    std::max(bestScore_, Real(1e-12)))
        return Verdict::Diverged;

    ++checksSinceImprovement_;
    if (settings_.stallChecks > 0 &&
        checksSinceImprovement_ >= settings_.stallChecks) {
        checksSinceImprovement_ = 0;
        return Verdict::Stalled;
    }
    return Verdict::Ok;
}

void
DivergenceWatchdog::reset()
{
    bestScore_ = kInf;
    checksSinceImprovement_ = 0;
}

const char*
toString(DivergenceWatchdog::Verdict verdict)
{
    switch (verdict) {
    case DivergenceWatchdog::Verdict::Ok:
        return "ok";
    case DivergenceWatchdog::Verdict::Stalled:
        return "stalled";
    case DivergenceWatchdog::Verdict::Diverged:
        return "diverged";
    }
    return "unknown";
}

} // namespace rsqp
