#include "validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "osqp/problem.hpp"
#include "osqp/settings.hpp"

namespace rsqp
{

namespace
{

void
addIssue(ValidationReport& report, ValidationCode code,
         std::string message, Index index = -1, Count count = 1)
{
    ValidationIssue issue;
    issue.code = code;
    issue.message = std::move(message);
    issue.index = index;
    issue.count = count;
    report.issues.push_back(std::move(issue));
}

/** NaN or IEEE infinity (the kInf = 1e30 sentinel is finite). */
bool
isNonFinite(Real v)
{
    return !std::isfinite(v);
}

/** One NonFiniteData issue per array: first offender + total count. */
void
scanNonFinite(ValidationReport& report, const Vector& values,
              const char* what)
{
    Index first = -1;
    Count bad = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        if (isNonFinite(values[i])) {
            if (bad == 0)
                first = static_cast<Index>(i);
            ++bad;
        }
    }
    if (bad > 0) {
        std::ostringstream msg;
        msg << what << " has " << bad << " non-finite entr"
            << (bad == 1 ? "y" : "ies") << " (first at index " << first
            << ")";
        addIssue(report, ValidationCode::NonFiniteData, msg.str(), first,
                 bad);
    }
}

} // namespace

const char*
toString(ValidationCode code)
{
    switch (code) {
    case ValidationCode::DimensionMismatch:
        return "dimension-mismatch";
    case ValidationCode::InvalidSparseStructure:
        return "invalid-sparse-structure";
    case ValidationCode::NotUpperTriangular:
        return "not-upper-triangular";
    case ValidationCode::NonFiniteData:
        return "non-finite-data";
    case ValidationCode::InfeasibleBounds:
        return "infeasible-bounds";
    case ValidationCode::IndefiniteDiagonal:
        return "indefinite-diagonal";
    case ValidationCode::InvalidSetting:
        return "invalid-setting";
    }
    return "unknown";
}

bool
ValidationReport::has(ValidationCode code) const
{
    for (const ValidationIssue& issue : issues) {
        if (issue.code == code)
            return true;
    }
    return false;
}

std::string
ValidationReport::describe() const
{
    std::string out;
    for (const ValidationIssue& issue : issues) {
        if (!out.empty())
            out += '\n';
        out += '[';
        out += toString(issue.code);
        out += "] ";
        out += issue.message;
    }
    return out;
}

ValidationReport
validateProblem(const QpProblem& problem)
{
    ValidationReport report;

    // Structural invariants come first: they gate every element scan
    // that would otherwise index through broken colPtr/rowIdx arrays.
    const bool p_valid = problem.pUpper.isValid();
    const bool a_valid = problem.a.isValid();
    if (!p_valid)
        addIssue(report, ValidationCode::InvalidSparseStructure,
                 "P: broken CSC structure (column pointers not "
                 "monotone from 0 to nnz, or row indices unsorted / "
                 "out of range)");
    if (!a_valid)
        addIssue(report, ValidationCode::InvalidSparseStructure,
                 "A: broken CSC structure (column pointers not "
                 "monotone from 0 to nnz, or row indices unsorted / "
                 "out of range)");

    const Index n = problem.pUpper.cols();
    const Index m = problem.a.rows();

    if (problem.pUpper.rows() != n) {
        std::ostringstream msg;
        msg << "P must be square, got " << problem.pUpper.rows() << "x"
            << n;
        addIssue(report, ValidationCode::DimensionMismatch, msg.str());
    }
    if (static_cast<Index>(problem.q.size()) != n) {
        std::ostringstream msg;
        msg << "q has " << problem.q.size() << " entries, expected n = "
            << n;
        addIssue(report, ValidationCode::DimensionMismatch, msg.str());
    }
    if (problem.a.cols() != n) {
        std::ostringstream msg;
        msg << "A has " << problem.a.cols() << " columns, expected n = "
            << n;
        addIssue(report, ValidationCode::DimensionMismatch, msg.str());
    }
    if (static_cast<Index>(problem.l.size()) != m) {
        std::ostringstream msg;
        msg << "l has " << problem.l.size() << " entries, expected m = "
            << m;
        addIssue(report, ValidationCode::DimensionMismatch, msg.str());
    }
    if (static_cast<Index>(problem.u.size()) != m) {
        std::ostringstream msg;
        msg << "u has " << problem.u.size() << " entries, expected m = "
            << m;
        addIssue(report, ValidationCode::DimensionMismatch, msg.str());
    }

    scanNonFinite(report, problem.q, "q");
    scanNonFinite(report, problem.l, "l");
    scanNonFinite(report, problem.u, "u");
    if (p_valid)
        scanNonFinite(report, problem.pUpper.values(), "P values");
    if (a_valid)
        scanNonFinite(report, problem.a.values(), "A values");

    // l <= u per constraint. NaN compares false, so poisoned bounds do
    // not double-report here — they already landed in NonFiniteData.
    {
        const std::size_t pairs =
            std::min(problem.l.size(), problem.u.size());
        Index first = -1;
        Count bad = 0;
        for (std::size_t i = 0; i < pairs; ++i) {
            if (problem.l[i] > problem.u[i]) {
                if (bad == 0)
                    first = static_cast<Index>(i);
                ++bad;
            }
        }
        if (bad > 0) {
            std::ostringstream msg;
            msg << bad << " constraint" << (bad == 1 ? "" : "s")
                << " with l > u (first at row " << first << ")";
            addIssue(report, ValidationCode::InfeasibleBounds, msg.str(),
                     first, bad);
        }
    }

    if (p_valid) {
        // P is stored as its upper triangle; anything strictly below
        // the diagonal means the symmetric-storage convention was
        // violated and spmvSymUpper would double-count it.
        const std::vector<Index>& col_ptr = problem.pUpper.colPtr();
        const std::vector<Index>& row_idx = problem.pUpper.rowIdx();
        const std::vector<Real>& values = problem.pUpper.values();
        Index first_lower = -1;
        Count lower = 0;
        Index first_neg = -1;
        Count neg = 0;
        for (Index c = 0; c < problem.pUpper.cols(); ++c) {
            for (Index p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
                if (row_idx[p] > c) {
                    if (lower == 0)
                        first_lower = c;
                    ++lower;
                } else if (row_idx[p] == c && values[p] < 0.0) {
                    if (neg == 0)
                        first_neg = c;
                    ++neg;
                }
            }
        }
        if (lower > 0) {
            std::ostringstream msg;
            msg << "P has " << lower << " entr" << (lower == 1 ? "y" : "ies")
                << " below the diagonal (first in column " << first_lower
                << "); upper-triangle storage required";
            addIssue(report, ValidationCode::NotUpperTriangular, msg.str(),
                     first_lower, lower);
        }
        if (neg > 0) {
            std::ostringstream msg;
            msg << "diag(P) has " << neg << " negative entr"
                << (neg == 1 ? "y" : "ies") << " (first at index "
                << first_neg << "); P cannot be positive semidefinite";
            addIssue(report, ValidationCode::IndefiniteDiagonal, msg.str(),
                     first_neg, neg);
        }
    }

    return report;
}

ValidationReport
validateSettings(const OsqpSettings& settings)
{
    ValidationReport report;
    if (!(settings.alpha > 0.0 && settings.alpha < 2.0)) {
        std::ostringstream msg;
        msg << "alpha must be in (0, 2), got " << settings.alpha;
        addIssue(report, ValidationCode::InvalidSetting, msg.str());
    }
    if (!(settings.adaptiveRhoTolerance > 1.0)) {
        // A ratio threshold <= 1 makes every residual-balance check
        // fire, so rho would be refactored on every adaptation window.
        std::ostringstream msg;
        msg << "adaptiveRhoTolerance must be > 1, got "
            << settings.adaptiveRhoTolerance;
        addIssue(report, ValidationCode::InvalidSetting, msg.str());
    }
    if (!(settings.firstOrder.accel.restartEta > 0.0 &&
          settings.firstOrder.accel.restartEta <= 1.0)) {
        std::ostringstream msg;
        msg << "firstOrder.accel.restartEta must be in (0, 1], got "
            << settings.firstOrder.accel.restartEta;
        addIssue(report, ValidationCode::InvalidSetting, msg.str());
    }
    if (!(settings.rho > 0.0)) {
        std::ostringstream msg;
        msg << "rho must be positive, got " << settings.rho;
        addIssue(report, ValidationCode::InvalidSetting, msg.str());
    }
    if (!(settings.sigma > 0.0)) {
        std::ostringstream msg;
        msg << "sigma must be positive, got " << settings.sigma;
        addIssue(report, ValidationCode::InvalidSetting, msg.str());
    }
    if (settings.maxIter < 1) {
        std::ostringstream msg;
        msg << "maxIter must be >= 1, got " << settings.maxIter;
        addIssue(report, ValidationCode::InvalidSetting, msg.str());
    }
    if (settings.checkInterval < 1) {
        std::ostringstream msg;
        msg << "checkInterval must be >= 1, got "
            << settings.checkInterval;
        addIssue(report, ValidationCode::InvalidSetting, msg.str());
    }
    if (!(settings.pcg.mixedInnerEpsRel > 0.0 &&
          settings.pcg.mixedInnerEpsRel < 1.0)) {
        std::ostringstream msg;
        msg << "pcg.mixedInnerEpsRel must be in (0, 1), got "
            << settings.pcg.mixedInnerEpsRel;
        addIssue(report, ValidationCode::InvalidSetting, msg.str());
    }
    if (settings.pcg.maxRefinementSweeps < 1) {
        std::ostringstream msg;
        msg << "pcg.maxRefinementSweeps must be >= 1, got "
            << settings.pcg.maxRefinementSweeps;
        addIssue(report, ValidationCode::InvalidSetting, msg.str());
    }
    return report;
}

} // namespace rsqp
