/**
 * @file
 * From-scratch implementation of the OSQP ADMM solver (Algorithm 1).
 *
 * The solver owns the scaled problem data, per-constraint rho vector,
 * a pluggable KKT backend (direct LDL' or indirect PCG), adaptive rho,
 * Ruiz scaling and the full OSQP termination logic including
 * primal/dual infeasibility certificates.
 *
 * The parametric-update entry points (updateLinearCost, updateBounds,
 * updateMatrixValues) keep the sparsity structure fixed — the reuse
 * model that amortizes RSQP's per-structure hardware generation.
 */

#ifndef RSQP_OSQP_SOLVER_HPP
#define RSQP_OSQP_SOLVER_HPP

#include <memory>

#include "common/fault_injection.hpp"
#include "osqp/problem.hpp"
#include "osqp/recovery.hpp"
#include "osqp/scaling.hpp"
#include "osqp/settings.hpp"
#include "osqp/status.hpp"
#include "solvers/kkt_solver.hpp"

namespace rsqp
{

/** The OSQP solver object (setup once, solve many). */
class OsqpSolver
{
  public:
    /**
     * Set up the solver: validate, scale, build rho vector and the KKT
     * backend. Corresponds to osqp_setup().
     *
     * Never throws on caller input: malformed settings AND malformed
     * problem data both leave the solver inert, and every solve()
     * returns SolveStatus::InvalidProblem with the ValidationReport
     * attached (see validation()).
     */
    OsqpSolver(QpProblem problem, OsqpSettings settings);

    ~OsqpSolver();
    OsqpSolver(const OsqpSolver&) = delete;
    OsqpSolver& operator=(const OsqpSolver&) = delete;

    /** Run Algorithm 1 from the current warm-start state. */
    OsqpResult solve();

    /**
     * Warm start the next solve() from a primal/dual guess (unscaled).
     * A size mismatch is a recoverable client error: the guess is
     * ignored with a warning and false is returned (the solve proceeds
     * from the current iterates), in the same spirit as the
     * non-throwing InvalidProblem path.
     */
    bool warmStart(const Vector& x, const Vector& y);

    /** Replace q (same length); rescales internally. */
    void updateLinearCost(const Vector& q);

    /** Replace l and u (same length); rescales internally. */
    void updateBounds(const Vector& l, const Vector& u);

    /**
     * Manually set the scalar rho (osqp_update_rho): rebuilds the
     * per-constraint rho vector and refreshes the KKT backend.
     */
    void updateRho(Real rho_bar);

    /** Current scalar rho (after any adaptation). */
    Real currentRho() const { return rhoBar_; }

    /**
     * Replace the wall-clock budget of subsequent solve() calls
     * (seconds; 0 = no limit). The service layer uses this to apply a
     * per-request deadline — the remaining budget after queue wait —
     * without rebuilding the solver.
     */
    void setTimeLimit(Real seconds) { settings_.timeLimit = seconds; }

    /**
     * Replace the iteration budget of subsequent solve() calls. The
     * Auto backend driver uses this (like setTimeLimit) to run the
     * loop in slices without rebuilding the solver.
     */
    void setIterationBudget(Index max_iter)
    {
        settings_.maxIter = max_iter;
    }

    /**
     * Replace the numeric values of P and/or A keeping the sparsity
     * structure (pass empty vectors to keep current values). Values are
     * in the *original* (unscaled) CSC order of the setup matrices.
     */
    void updateMatrixValues(const std::vector<Real>& p_values,
                            const std::vector<Real>& a_values);

    const OsqpSettings& settings() const { return settings_; }

    /** Problem diagnostics from setup (ok() unless InvalidProblem). */
    const ValidationReport& validation() const { return validation_; }

    /** The scaled problem currently inside the solver (for the arch). */
    const QpProblem& scaledProblem() const { return scaled_; }

    /** Per-constraint rho vector currently in use (scaled space). */
    const Vector& rhoVec() const { return rhoVec_; }

    Index numVariables() const { return n_; }
    Index numConstraints() const { return m_; }

  private:
    void buildRhoVec(Real rho_bar);
    void rebuildKktSolver();

    /** PcgSettings with the execution-level precision knob applied. */
    PcgSettings effectivePcgSettings() const;

    /** Unscaled residuals + tolerances; fills the four outputs. */
    void computeResiduals(const Vector& x, const Vector& y,
                          const Vector& z, Real& prim_res, Real& dual_res,
                          Real& eps_prim, Real& eps_dual) const;

    bool checkPrimalInfeasibility(const Vector& delta_y) const;
    bool checkDualInfeasibility(const Vector& delta_x) const;

    /** rho adaptation; returns true if rho changed. */
    bool adaptRho(Real prim_res, Real dual_res, const Vector& x,
                  const Vector& y, const Vector& z);

    OsqpSettings settings_;
    QpProblem original_;  ///< unscaled copy (residuals, objective)
    QpProblem scaled_;    ///< scaled in-place problem the iteration uses
    Scaling scaling_;
    ValidationReport validation_;  ///< setup diagnostics
    Index n_ = 0;
    Index m_ = 0;

    /**
     * sigma actually inside the KKT system — settings_.sigma until a
     * checkpoint-restore recovery boosts it; reset on the next solve.
     */
    Real sigmaEff_ = 1e-6;

    /** Seeded soft-error source (only when settings enable it). */
    std::unique_ptr<FaultInjector> faultInjector_;

    Real rhoBar_ = 0.1;  ///< current scalar rho before per-constraint map
    Vector rhoVec_;
    Vector rhoInvVec_;

    std::unique_ptr<KktSolver> kkt_;

    // Scaled-space iterates (persist across solves for warm starting).
    Vector x_, y_, z_;

    OsqpInfo lastInfo_;
};

} // namespace rsqp

#endif // RSQP_OSQP_SOLVER_HPP
