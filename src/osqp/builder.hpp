/**
 * @file
 * Ergonomic QP construction: incremental objective/constraint assembly
 * without touching triplet lists or CSC layouts directly.
 *
 * @code
 *   QpBuilder builder(2);
 *   builder.quadraticCost(0, 0, 4.0);
 *   builder.quadraticCost(0, 1, 1.0);   // symmetric entry
 *   builder.quadraticCost(1, 1, 2.0);
 *   builder.linearCost(0, 1.0);
 *   builder.linearCost(1, 1.0);
 *   builder.addConstraint(1.0, 1.0, {{0, 1.0}, {1, 1.0}});  // x0+x1 = 1
 *   builder.addBox(0, 0.0, 0.7);
 *   builder.addBox(1, 0.0, 0.7);
 *   QpProblem qp = builder.build();
 * @endcode
 */

#ifndef RSQP_OSQP_BUILDER_HPP
#define RSQP_OSQP_BUILDER_HPP

#include <utility>
#include <vector>

#include "osqp/problem.hpp"

namespace rsqp
{

/** Incremental builder for QpProblem. */
class QpBuilder
{
  public:
    /** Start a problem with n decision variables. */
    explicit QpBuilder(Index n);

    /**
     * Add v to the quadratic cost coefficient P[i][j] (= P[j][i]).
     * The objective is (1/2) x'Px, so a pure quadratic c*x_i^2 is
     * entered as quadraticCost(i, i, 2*c).
     */
    QpBuilder& quadraticCost(Index i, Index j, Real v);

    /** Add v to the linear cost coefficient q[i]. */
    QpBuilder& linearCost(Index i, Real v);

    /**
     * Add a constraint l <= sum coeff_k * x_{var_k} <= u.
     * @return the constraint's row index.
     */
    Index addConstraint(Real l, Real u,
                        const std::vector<std::pair<Index, Real>>& terms);

    /** Add an equality constraint (l = u = b). */
    Index addEquality(Real b,
                      const std::vector<std::pair<Index, Real>>& terms);

    /** Box constraint lo <= x_var <= hi (a single-entry row). */
    Index addBox(Index var, Real lo, Real hi);

    /** Number of constraints added so far. */
    Index numConstraints() const
    {
        return static_cast<Index>(lower_.size());
    }

    /** Assemble (and validate) the problem. */
    QpProblem build(std::string name = "") const;

  private:
    Index n_;
    std::vector<Triplet> pEntries_;  ///< upper-triangle accumulation
    Vector q_;
    std::vector<Triplet> aEntries_;
    Vector lower_;
    Vector upper_;
};

} // namespace rsqp

#endif // RSQP_OSQP_BUILDER_HPP
