#include "osqp/status.hpp"

namespace rsqp
{

const char*
statusToString(SolveStatus status)
{
    switch (status) {
      case SolveStatus::Solved: return "solved";
      case SolveStatus::MaxIterReached: return "max_iter_reached";
      case SolveStatus::PrimalInfeasible: return "primal_infeasible";
      case SolveStatus::DualInfeasible: return "dual_infeasible";
      case SolveStatus::NumericalError: return "numerical_error";
      case SolveStatus::InvalidProblem: return "invalid_problem";
      case SolveStatus::TimeLimitReached: return "time_limit_reached";
      case SolveStatus::Rejected: return "rejected";
      case SolveStatus::ShuttingDown: return "shutting_down";
      case SolveStatus::Cancelled: return "cancelled";
      case SolveStatus::Unsolved: return "unsolved";
    }
    return "unknown";
}

const char*
toString(SolveStatus status)
{
    return statusToString(status);
}

} // namespace rsqp
