/**
 * @file
 * Solution polishing (the OSQP post-processing step).
 *
 * After ADMM terminates, the active constraints are guessed from the
 * signs of the dual variables, and the equality-constrained QP on that
 * active set is solved directly:
 *
 *   [ P + delta*I   A_act' ] [ x ]   [ -q    ]
 *   [ A_act        -delta*I ] [ y ] = [ b_act ]
 *
 * with a few steps of iterative refinement against the unregularized
 * system. The polished point typically satisfies the KKT conditions to
 * near machine precision; it is adopted only if it improves both
 * residuals.
 */

#ifndef RSQP_OSQP_POLISH_HPP
#define RSQP_OSQP_POLISH_HPP

#include "osqp/problem.hpp"
#include "osqp/settings.hpp"
#include "osqp/status.hpp"

namespace rsqp
{

/**
 * Try to polish a solved result in place (unscaled data).
 *
 * @param problem The original (unscaled) problem.
 * @param settings Solver settings (polishDelta, polishRefineIter).
 * @param result Solution to polish; x/y/z and the residual info are
 *        replaced if polishing succeeds.
 * @return report of what happened.
 */
PolishReport polishSolution(const QpProblem& problem,
                            const OsqpSettings& settings,
                            OsqpResult& result);

} // namespace rsqp

#endif // RSQP_OSQP_POLISH_HPP
