/**
 * @file
 * QP problem serialization: a small self-describing text container
 * (embedded MatrixMarket sections for P and A) so benchmark instances
 * can be exported to disk and re-imported exactly — e.g. to feed the
 * same problems to another OSQP implementation.
 */

#ifndef RSQP_OSQP_PROBLEM_IO_HPP
#define RSQP_OSQP_PROBLEM_IO_HPP

#include <iosfwd>
#include <string>

#include "osqp/problem.hpp"

namespace rsqp
{

/** Write a problem to a stream (text, round-trip exact). */
void writeQpProblem(std::ostream& os, const QpProblem& problem);

/** Read a problem written by writeQpProblem. */
QpProblem readQpProblem(std::istream& is);

/** Convenience file wrappers. */
void saveQpProblem(const std::string& path, const QpProblem& problem);
QpProblem loadQpProblem(const std::string& path);

} // namespace rsqp

#endif // RSQP_OSQP_PROBLEM_IO_HPP
