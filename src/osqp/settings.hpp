/**
 * @file
 * Settings of the OSQP ADMM solver (defaults follow the reference
 * implementation; alpha = 1.6 and sigma = 1e-6 as quoted in the paper).
 */

#ifndef RSQP_OSQP_SETTINGS_HPP
#define RSQP_OSQP_SETTINGS_HPP

#include "backends/backend_config.hpp"
#include "common/execution.hpp"
#include "common/fault_injection.hpp"
#include "common/types.hpp"
#include "osqp/recovery.hpp"
#include "solvers/ordering.hpp"
#include "solvers/pcg.hpp"

namespace rsqp
{

/** Which linear-system backend solves the KKT step. */
enum class KktBackend
{
    DirectLdl,    ///< sparse LDL' (OSQP default / MKL-Pardiso role)
    IndirectPcg,  ///< matrix-free PCG (cuOSQP / RSQP role)
};

/** OSQP algorithm settings. */
struct OsqpSettings
{
    Real rho = 0.1;           ///< initial ADMM step size
    Real sigma = 1e-6;        ///< primal regularization
    Real alpha = 1.6;         ///< relaxation parameter, in (0, 2)

    Real epsAbs = 1e-3;       ///< absolute termination tolerance
    Real epsRel = 1e-3;       ///< relative termination tolerance
    Real epsPrimInf = 1e-4;   ///< primal infeasibility tolerance
    Real epsDualInf = 1e-4;   ///< dual infeasibility tolerance

    Index maxIter = 4000;     ///< ADMM iteration cap
    Index checkInterval = 25; ///< termination check period

    bool adaptiveRho = true;         ///< enable rho adaptation
    Index adaptiveRhoInterval = 100; ///< iterations between rho updates
    Real adaptiveRhoTolerance = 5.0; ///< ratio threshold for an update

    Index scalingIterations = 10; ///< Ruiz equilibration sweeps (0 = off)

    bool polish = false;          ///< active-set solution polishing
    Real polishDelta = 1e-6;      ///< polish KKT regularization
    Index polishRefineIter = 3;   ///< iterative-refinement steps

    Real rhoEqScale = 1e3;  ///< rho multiplier for equality constraints
    Real rhoMin = 1e-6;     ///< lower clamp for per-constraint rho
    Real rhoMax = 1e6;      ///< upper clamp for per-constraint rho

    KktBackend backend = KktBackend::DirectLdl;
    OrderingKind ordering = OrderingKind::Rcm;  ///< direct backend only
    PcgSettings pcg;                            ///< indirect backend only

    /**
     * Execution-resource knobs (host threads for the hot-path vector
     * kernels and PCG). Results never depend on the thread count:
     * the serial-vs-chunked summation order of a reduction is picked
     * by vector length alone (kParallelThreshold), so vectors at or
     * above the threshold use the fixed-grain chunked order even at
     * numThreads = 1 — bitwise-identical across settings, but not to
     * a plain left-to-right accumulation. Below the threshold every
     * kernel is the exact legacy serial loop.
     */
    ExecutionConfig execution;

    /** Effective thread count of this solve's hot path. */
    Index
    resolvedNumThreads() const
    {
        return execution.numThreads;
    }

    bool recordTrace = false;  ///< keep per-iteration residual history

    /**
     * Wall-clock budget for one solve() call in seconds (0 = no
     * limit). Checked once per ADMM iteration; an expired budget
     * terminates with SolveStatus::TimeLimitReached and the current
     * (finite) iterates.
     */
    Real timeLimit = 0.0;

    /** Divergence watchdog thresholds and recovery policy. */
    FaultToleranceSettings faultTolerance;

    /**
     * Seeded soft-error injection into the software PCG operator
     * stream (testing/bench only; disabled by default).
     */
    FaultInjectionConfig faultInjection;

    /**
     * First-order backend selection (makeBackend factory) plus the
     * accelerated-ADMM and PDHG engine knobs. The default
     * (BackendKind::Admm, acceleration off) is bit-for-bit the
     * pre-backend-subsystem ADMM loop.
     */
    FirstOrderSettings firstOrder;
};

} // namespace rsqp

#endif // RSQP_OSQP_SETTINGS_HPP
