#include "builder.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace rsqp
{

QpBuilder::QpBuilder(Index n)
    : n_(n), q_(static_cast<std::size_t>(n), 0.0)
{
    RSQP_ASSERT(n >= 1, "a QP needs at least one variable");
}

QpBuilder&
QpBuilder::quadraticCost(Index i, Index j, Real v)
{
    RSQP_ASSERT(i >= 0 && i < n_ && j >= 0 && j < n_,
                "quadraticCost index out of range");
    if (i > j)
        std::swap(i, j);  // store the upper triangle
    pEntries_.push_back(Triplet{i, j, v});
    return *this;
}

QpBuilder&
QpBuilder::linearCost(Index i, Real v)
{
    RSQP_ASSERT(i >= 0 && i < n_, "linearCost index out of range");
    q_[static_cast<std::size_t>(i)] += v;
    return *this;
}

Index
QpBuilder::addConstraint(Real l, Real u,
                         const std::vector<std::pair<Index, Real>>& terms)
{
    if (l > u)
        RSQP_FATAL("constraint bounds crossed: l = ", l, " > u = ", u);
    const Index row = numConstraints();
    for (const auto& [var, coeff] : terms) {
        RSQP_ASSERT(var >= 0 && var < n_,
                    "constraint variable out of range");
        aEntries_.push_back(Triplet{row, var, coeff});
    }
    lower_.push_back(l);
    upper_.push_back(u);
    return row;
}

Index
QpBuilder::addEquality(Real b,
                       const std::vector<std::pair<Index, Real>>& terms)
{
    return addConstraint(b, b, terms);
}

Index
QpBuilder::addBox(Index var, Real lo, Real hi)
{
    return addConstraint(lo, hi, {{var, 1.0}});
}

QpProblem
QpBuilder::build(std::string name) const
{
    const Index m = numConstraints();
    TripletList p_triplets(n_, n_);
    for (const Triplet& t : pEntries_)
        p_triplets.add(t.row, t.col, t.value);
    TripletList a_triplets(m, n_);
    for (const Triplet& t : aEntries_)
        a_triplets.add(t.row, t.col, t.value);

    QpProblem problem;
    problem.pUpper = CscMatrix::fromTriplets(p_triplets);
    problem.q = q_;
    problem.a = CscMatrix::fromTriplets(a_triplets);
    problem.l = lower_;
    problem.u = upper_;
    problem.name = std::move(name);
    problem.validate();
    return problem;
}

} // namespace rsqp
