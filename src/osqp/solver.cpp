#include "solver.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.hpp"
#include "common/thread_pool.hpp"
#include "common/timer.hpp"
#include "linalg/simd_kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "osqp/polish.hpp"
#include "osqp/residuals.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace rsqp
{

OsqpSolver::OsqpSolver(QpProblem problem, OsqpSettings settings)
    : settings_(std::move(settings)), original_(std::move(problem))
{
    Timer setup_timer;

    // Malformed settings and malformed problem data are both *caller*
    // input, not programming errors: record the diagnostics and come
    // up inert so solve() returns a typed InvalidProblem result
    // instead of crashing (the constructor threw RSQP_FATAL for bad
    // settings before PR 5).
    validation_ = validateSettings(settings_);
    ValidationReport problem_report = validateProblem(original_);
    validation_.issues.insert(validation_.issues.end(),
                              problem_report.issues.begin(),
                              problem_report.issues.end());
    if (!validation_.ok()) {
        RSQP_WARN("problem '", original_.name,
                  "' failed validation:\n", validation_.describe());
        lastInfo_.status = SolveStatus::InvalidProblem;
        lastInfo_.setupTime = setup_timer.seconds();
        return;
    }

    if (settings_.faultInjection.enabled)
        faultInjector_ =
            std::make_unique<FaultInjector>(settings_.faultInjection);

    n_ = original_.numVariables();
    m_ = original_.numConstraints();

    scaled_ = original_;
    scaling_ = ruizEquilibrate(scaled_, settings_.scalingIterations);

    rhoBar_ = settings_.rho;
    sigmaEff_ = settings_.sigma;
    buildRhoVec(rhoBar_);
    rebuildKktSolver();

    x_.assign(static_cast<std::size_t>(n_), 0.0);
    y_.assign(static_cast<std::size_t>(m_), 0.0);
    z_.assign(static_cast<std::size_t>(m_), 0.0);
    lastInfo_.setupTime = setup_timer.seconds();
}

OsqpSolver::~OsqpSolver() = default;

void
OsqpSolver::buildRhoVec(Real rho_bar)
{
    rhoVec_.resize(static_cast<std::size_t>(m_));
    rhoInvVec_.resize(static_cast<std::size_t>(m_));
    for (Index i = 0; i < m_; ++i) {
        const Real lo = scaled_.l[static_cast<std::size_t>(i)];
        const Real hi = scaled_.u[static_cast<std::size_t>(i)];
        Real rho_i = rho_bar;
        if (lo <= -kInf && hi >= kInf) {
            // Loose constraint: keep its multiplier near zero.
            rho_i = settings_.rhoMin;
        } else if (hi - lo < 1e-12) {
            // Equality constraint: stiffer rho speeds convergence.
            rho_i = settings_.rhoEqScale * rho_bar;
        }
        rho_i = clampReal(rho_i, settings_.rhoMin, settings_.rhoMax);
        rhoVec_[static_cast<std::size_t>(i)] = rho_i;
        rhoInvVec_[static_cast<std::size_t>(i)] = 1.0 / rho_i;
    }
}

void
OsqpSolver::rebuildKktSolver()
{
    switch (settings_.backend) {
      case KktBackend::DirectLdl:
        kkt_ = std::make_unique<DirectKktSolver>(
            scaled_.pUpper, scaled_.a, sigmaEff_, rhoVec_,
            settings_.ordering);
        break;
      case KktBackend::IndirectPcg:
        kkt_ = std::make_unique<IndirectKktSolver>(
            scaled_.pUpper, scaled_.a, sigmaEff_, rhoVec_,
            effectivePcgSettings());
        break;
    }
}

PcgSettings
OsqpSolver::effectivePcgSettings() const
{
    // The execution-level precision knob enables mixed precision even
    // when the caller never touched the nested PcgSettings.
    PcgSettings pcg = settings_.pcg;
    if (settings_.execution.precision == PrecisionMode::MixedFp32)
        pcg.precision = PrecisionMode::MixedFp32;
    return pcg;
}

bool
OsqpSolver::warmStart(const Vector& x, const Vector& y)
{
    if (!validation_.ok())
        return false;  // inert solver: solve() reports InvalidProblem
    if (static_cast<Index>(x.size()) != n_ ||
        static_cast<Index>(y.size()) != m_) {
        // A malformed client guess must not take the solver down; the
        // next solve simply starts from the current iterates.
        RSQP_WARN("warmStart ignored: got sizes (", x.size(), ", ",
                  y.size(), "), expected (", n_, ", ", m_, ")");
        return false;
    }
    // Map the unscaled guess into scaled space.
    for (Index j = 0; j < n_; ++j)
        x_[static_cast<std::size_t>(j)] =
            scaling_.dInv[static_cast<std::size_t>(j)] *
            x[static_cast<std::size_t>(j)];
    for (Index i = 0; i < m_; ++i)
        y_[static_cast<std::size_t>(i)] = scaling_.c *
            scaling_.eInv[static_cast<std::size_t>(i)] *
            y[static_cast<std::size_t>(i)];
    scaled_.a.spmv(x_, z_);
    return true;
}

void
OsqpSolver::updateLinearCost(const Vector& q)
{
    if (!validation_.ok())
        return;
    RSQP_ASSERT(static_cast<Index>(q.size()) == n_, "q size mismatch");
    original_.q = q;
    for (Index j = 0; j < n_; ++j)
        scaled_.q[static_cast<std::size_t>(j)] = scaling_.c *
            scaling_.d[static_cast<std::size_t>(j)] *
            q[static_cast<std::size_t>(j)];
}

void
OsqpSolver::updateBounds(const Vector& l, const Vector& u)
{
    if (!validation_.ok())
        return;
    RSQP_ASSERT(static_cast<Index>(l.size()) == m_ &&
                static_cast<Index>(u.size()) == m_, "bound size mismatch");
    for (Index i = 0; i < m_; ++i)
        if (l[static_cast<std::size_t>(i)] > u[static_cast<std::size_t>(i)])
            RSQP_FATAL("updateBounds: l > u at constraint ", i);
    original_.l = l;
    original_.u = u;
    for (Index i = 0; i < m_; ++i) {
        const Real e_i = scaling_.e[static_cast<std::size_t>(i)];
        const Real lo = l[static_cast<std::size_t>(i)];
        const Real hi = u[static_cast<std::size_t>(i)];
        scaled_.l[static_cast<std::size_t>(i)] =
            (lo <= -kInf) ? lo : e_i * lo;
        scaled_.u[static_cast<std::size_t>(i)] =
            (hi >= kInf) ? hi : e_i * hi;
    }
}

void
OsqpSolver::updateRho(Real rho_bar)
{
    if (!validation_.ok())
        return;
    if (rho_bar <= 0.0)
        RSQP_FATAL("rho must be positive, got ", rho_bar);
    rhoBar_ = clampReal(rho_bar, settings_.rhoMin, settings_.rhoMax);
    buildRhoVec(rhoBar_);
    kkt_->updateRho(rhoVec_);
}

void
OsqpSolver::updateMatrixValues(const std::vector<Real>& p_values,
                               const std::vector<Real>& a_values)
{
    if (!validation_.ok())
        return;
    if (!p_values.empty()) {
        RSQP_ASSERT(p_values.size() == original_.pUpper.values().size(),
                    "P value count mismatch");
        original_.pUpper.values() = p_values;
        // Re-apply the fixed scaling: Pb = c * D P D.
        auto& scaled_vals = scaled_.pUpper.values();
        const auto& col_ptr = scaled_.pUpper.colPtr();
        const auto& row_idx = scaled_.pUpper.rowIdx();
        for (Index c = 0; c < n_; ++c)
            for (Index p = col_ptr[c]; p < col_ptr[c + 1]; ++p)
                scaled_vals[static_cast<std::size_t>(p)] = scaling_.c *
                    scaling_.d[static_cast<std::size_t>(row_idx[p])] *
                    scaling_.d[static_cast<std::size_t>(c)] *
                    p_values[static_cast<std::size_t>(p)];
    }
    if (!a_values.empty()) {
        RSQP_ASSERT(a_values.size() == original_.a.values().size(),
                    "A value count mismatch");
        original_.a.values() = a_values;
        auto& scaled_vals = scaled_.a.values();
        const auto& col_ptr = scaled_.a.colPtr();
        const auto& row_idx = scaled_.a.rowIdx();
        for (Index c = 0; c < n_; ++c)
            for (Index p = col_ptr[c]; p < col_ptr[c + 1]; ++p)
                scaled_vals[static_cast<std::size_t>(p)] =
                    scaling_.e[static_cast<std::size_t>(row_idx[p])] *
                    scaling_.d[static_cast<std::size_t>(c)] *
                    a_values[static_cast<std::size_t>(p)];
    }
    if (!p_values.empty() || !a_values.empty()) {
        // The backends reference the scaled matrices rewritten above;
        // refresh their execution forms in place when they can (same
        // sparsity pattern), rebuild from scratch otherwise.
        if (!kkt_->updateMatrixValues(scaled_.pUpper.values(),
                                      scaled_.a.values()))
            rebuildKktSolver();
    }
}

void
OsqpSolver::computeResiduals(const Vector& x, const Vector& y,
                             const Vector& z, Real& prim_res,
                             Real& dual_res, Real& eps_prim,
                             Real& eps_dual) const
{
    // All quantities here are unscaled.
    const ResidualInfo info = rsqp::computeResiduals(
        original_, x, y, z, settings_.epsAbs, settings_.epsRel);
    prim_res = info.primRes;
    dual_res = info.dualRes;
    eps_prim = info.epsPrim;
    eps_dual = info.epsDual;
}

bool
OsqpSolver::checkPrimalInfeasibility(const Vector& delta_y) const
{
    const Real norm_dy = normInf(delta_y);
    if (norm_dy <= settings_.epsPrimInf)
        return false;
    // Certificate: A' dy ~ 0 and u'(dy)+ + l'(dy)- sufficiently negative.
    Vector at_dy;
    original_.a.spmvTranspose(delta_y, at_dy);
    if (normInf(at_dy) > settings_.epsPrimInf * norm_dy)
        return false;
    Real support = 0.0;
    for (Index i = 0; i < m_; ++i) {
        const Real dy_i = delta_y[static_cast<std::size_t>(i)];
        if (dy_i > 0.0) {
            const Real u_i = original_.u[static_cast<std::size_t>(i)];
            if (u_i >= kInf)
                return false;
            support += u_i * dy_i;
        } else if (dy_i < 0.0) {
            const Real l_i = original_.l[static_cast<std::size_t>(i)];
            if (l_i <= -kInf)
                return false;
            support += l_i * dy_i;
        }
    }
    return support <= -settings_.epsPrimInf * norm_dy;
}

bool
OsqpSolver::checkDualInfeasibility(const Vector& delta_x) const
{
    const Real norm_dx = normInf(delta_x);
    if (norm_dx <= settings_.epsDualInf)
        return false;
    if (dot(original_.q, delta_x) > -settings_.epsDualInf * norm_dx)
        return false;
    Vector p_dx;
    original_.pUpper.spmvSymUpper(delta_x, p_dx);
    if (normInf(p_dx) > settings_.epsDualInf * norm_dx)
        return false;
    Vector a_dx;
    original_.a.spmv(delta_x, a_dx);
    const Real tol = settings_.epsDualInf * norm_dx;
    for (Index i = 0; i < m_; ++i) {
        const Real v = a_dx[static_cast<std::size_t>(i)];
        if (original_.u[static_cast<std::size_t>(i)] < kInf && v > tol)
            return false;
        if (original_.l[static_cast<std::size_t>(i)] > -kInf && v < -tol)
            return false;
    }
    return true;
}

bool
OsqpSolver::adaptRho(Real prim_res, Real dual_res, const Vector& x,
                     const Vector& y, const Vector& z)
{
    // Scaled residual ratio as in OSQP Section 5.2 (unscaled space).
    Vector ax, px, aty;
    original_.a.spmv(x, ax);
    original_.pUpper.spmvSymUpper(x, px);
    original_.a.spmvTranspose(y, aty);
    const Real prim_den = std::max(normInf(ax), normInf(z));
    const Real dual_den = std::max({normInf(px), normInf(aty),
                                    normInf(original_.q)});
    const Real prim_rel = prim_res / std::max(prim_den, Real(1e-10));
    const Real dual_rel = dual_res / std::max(dual_den, Real(1e-10));
    const Real ratio = prim_rel / std::max(dual_rel, Real(1e-10));

    const Real rho_new =
        clampReal(rhoBar_ * std::sqrt(ratio), settings_.rhoMin,
                  settings_.rhoMax);
    if (rho_new > rhoBar_ * settings_.adaptiveRhoTolerance ||
        rho_new < rhoBar_ / settings_.adaptiveRhoTolerance) {
        rhoBar_ = rho_new;
        buildRhoVec(rhoBar_);
        kkt_->updateRho(rhoVec_);
        return true;
    }
    return false;
}

OsqpResult
OsqpSolver::solve()
{
    TELEMETRY_SPAN("admm.solve");
    Timer solve_timer;
    AccumulatingTimer kkt_timer;
    // Route the settings knob to the vector kernels and PCG below.
    NumThreadsScope threads_scope(settings_.resolvedNumThreads());

    OsqpResult result;
    OsqpInfo& info = result.info;
    info = lastInfo_;
    info.status = SolveStatus::MaxIterReached;
    info.iterations = 0;
    info.rhoUpdates = 0;
    info.pcgIterationsTotal = 0;
    info.refinementSweepsTotal = 0;
    info.fp64Rescues = 0;
    info.hotPath = HotPathProfile{};
    info.recovery = RecoveryReport{};
    info.telemetry = SolveTelemetry{};

    if (!validation_.ok()) {
        result.validation = validation_;
        info.status = SolveStatus::InvalidProblem;
        info.solveTime = solve_timer.seconds();
        lastInfo_ = info;
        return result;
    }

    // A sigma boost from a previous solve's recovery is not sticky.
    if (sigmaEff_ != settings_.sigma) {
        sigmaEff_ = settings_.sigma;
        rebuildKktSolver();
    }
    // Per-solve hot-path counters: zero the backend's profiler so
    // info.hotPath reports this solve only.
    kkt_->resetHotPathProfile();

    // Soft-error source for the software PCG path (tests/bench only);
    // each solve sees a fresh deterministic fault pattern.
    FaultScope fault_scope(faultInjector_.get());
    if (faultInjector_ != nullptr)
        faultInjector_->advanceEpoch();

    const FaultToleranceSettings& ft = settings_.faultTolerance;
    DivergenceWatchdog watchdog(ft);
    IterateCheckpoint checkpoint;
    Index recovery_attempts = 0;
    const Count faults_before = faultInjector_ != nullptr
                                    ? faultInjector_->faultsInjected()
                                    : 0;

    Vector rhs_x(static_cast<std::size_t>(n_));
    Vector rhs_z(static_cast<std::size_t>(m_));
    Vector x_tilde, z_tilde;
    Vector x_prev, y_prev;
    Vector delta_x(static_cast<std::size_t>(n_));
    Vector delta_y(static_cast<std::size_t>(m_));
    Vector proj_arg(static_cast<std::size_t>(m_));

    const Real alpha = settings_.alpha;

    // Nesterov-accelerated mode (Goldstein et al., "Fast ADMM"): the
    // KKT step and projection read extrapolated hat iterates; momentum
    // restarts whenever the combined momentum residual c_k fails to
    // decay. Off by default — the plain path below binds the hats to
    // the accepted iterates themselves and runs the exact legacy
    // arithmetic, bit for bit.
    const bool accel_on = settings_.firstOrder.accel.enabled ||
        settings_.firstOrder.method == BackendKind::AdmmAccelerated;
    Vector z_hat, y_hat, z_prev_accept;
    Real accel_theta = 1.0;
    Real accel_c_prev = kInf;
    Count accel_restarts = 0;
    if (accel_on) {
        z_hat = z_;
        y_hat = y_;
        z_prev_accept = z_;
    }
    Vector& z_in = accel_on ? z_hat : z_;
    Vector& y_in = accel_on ? y_hat : y_;
    const auto reset_momentum = [&]() {
        if (!accel_on)
            return;
        accel_theta = 1.0;
        accel_c_prev = kInf;
        z_hat = z_;
        y_hat = y_;
    };

    // Roll the iterates back to the last-good checkpoint (or a cold
    // start if none was taken yet).
    const auto roll_back = [&]() {
        if (checkpoint.valid()) {
            checkpoint.restore(x_, y_, z_);
        } else {
            x_.assign(static_cast<std::size_t>(n_), 0.0);
            y_.assign(static_cast<std::size_t>(m_), 0.0);
            z_.assign(static_cast<std::size_t>(m_), 0.0);
        }
    };

    // One checkpoint-restore + sigma-boost recovery attempt. Returns
    // false when the watchdog is off or the attempt budget is spent —
    // the caller then terminates with a typed failure.
    const auto try_recover = [&](Index iter, const char* trigger) {
        if (!ft.watchdog || recovery_attempts >= ft.maxRecoveryAttempts)
            return false;
        ++recovery_attempts;
        roll_back();
        reset_momentum();  // hats must track the restored iterates
        sigmaEff_ *= ft.sigmaBoost;
        rebuildKktSolver();
        watchdog.reset();
        info.recovery.record(RecoveryAction::CheckpointRestore, iter,
                             std::string(trigger) + "; rolled back to " +
                                 (checkpoint.valid()
                                      ? "iteration " +
                                            std::to_string(
                                                checkpoint.iteration())
                                      : std::string("a cold start")));
        ++info.recovery.checkpointRestores;
        info.recovery.record(RecoveryAction::SigmaBoost, iter,
                             "sigma = " + std::to_string(sigmaEff_));
        ++info.recovery.sigmaBoosts;
        RSQP_WARN("admm recovery at iteration ", iter, ": ", trigger,
                  "; sigma boosted to ", sigmaEff_);
        return true;
    };

    for (Index iter = 1; iter <= settings_.maxIter; ++iter) {
        TELEMETRY_SPAN("admm.iter");
        // A wall-clock budget turns a hung or flailing solve into a
        // typed result instead of an unbounded stall.
        if (settings_.timeLimit > 0.0 &&
            solve_timer.seconds() >= settings_.timeLimit) {
            info.status = SolveStatus::TimeLimitReached;
            break;
        }

        x_prev = x_;
        y_prev = y_;
        if (accel_on)
            z_prev_accept = z_;

        // Step 3: solve the (reduced) KKT system.
        parallelForRange(n_, [&](Index jb, Index je) {
            for (Index j = jb; j < je; ++j)
                rhs_x[static_cast<std::size_t>(j)] =
                    sigmaEff_ * x_[static_cast<std::size_t>(j)] -
                    scaled_.q[static_cast<std::size_t>(j)];
        });
        parallelForRange(m_, [&](Index ib, Index ie) {
            for (Index i = ib; i < ie; ++i)
                rhs_z[static_cast<std::size_t>(i)] =
                    z_in[static_cast<std::size_t>(i)] -
                    rhoInvVec_[static_cast<std::size_t>(i)] *
                        y_in[static_cast<std::size_t>(i)];
        });
        kkt_timer.start();
        const KktSolveStats kstats =
            kkt_->solve(rhs_x, rhs_z, x_tilde, z_tilde);
        kkt_timer.stop();
        ++info.telemetry.kktSolves;
        info.pcgIterationsTotal += kstats.pcgIterations;
        info.refinementSweepsTotal += kstats.refinementSweeps;
        if (kstats.fp64Rescue)
            ++info.fp64Rescues;
        if (kstats.usedFallback) {
            info.recovery.record(RecoveryAction::PcgDirectFallback, iter,
                                 toString(kstats.pcgBreakdown));
            ++info.recovery.pcgFallbacks;
        }

        // Steps 5-7: relaxation, projection, dual update.
        parallelForRange(n_, [&](Index jb, Index je) {
            for (Index j = jb; j < je; ++j)
                x_[static_cast<std::size_t>(j)] =
                    alpha * x_tilde[static_cast<std::size_t>(j)] +
                    (1.0 - alpha) * x_[static_cast<std::size_t>(j)];
        });
        parallelForRange(m_, [&](Index ib, Index ie) {
            for (Index i = ib; i < ie; ++i) {
                const auto s = static_cast<std::size_t>(i);
                const Real z_relaxed =
                    alpha * z_tilde[s] + (1.0 - alpha) * z_in[s];
                proj_arg[s] = z_relaxed + rhoInvVec_[s] * y_in[s];
                const Real z_next =
                    clampReal(proj_arg[s], scaled_.l[s], scaled_.u[s]);
                y_[s] = y_in[s] + rhoVec_[s] * (z_relaxed - z_next);
                z_[s] = z_next;
            }
        });

        if (accel_on) {
            // Momentum residual c_k: how far the accepted (z, y) moved
            // off the extrapolated point, in the rho metric. Serial
            // accumulation — this branch has no bitwise-vs-legacy
            // contract to keep, only run-to-run determinism.
            Real c_k = 0.0;
            for (Index i = 0; i < m_; ++i) {
                const auto s = static_cast<std::size_t>(i);
                const Real dz = z_[s] - z_hat[s];
                const Real dy = y_[s] - y_hat[s];
                c_k += rhoVec_[s] * dz * dz + rhoInvVec_[s] * dy * dy;
            }
            if (c_k <
                settings_.firstOrder.accel.restartEta * accel_c_prev) {
                const Real theta_next = 0.5 *
                    (1.0 +
                     std::sqrt(1.0 + 4.0 * accel_theta * accel_theta));
                const Real beta = (accel_theta - 1.0) / theta_next;
                parallelForRange(m_, [&](Index ib, Index ie) {
                    for (Index i = ib; i < ie; ++i) {
                        const auto s = static_cast<std::size_t>(i);
                        z_hat[s] = z_[s] +
                            beta * (z_[s] - z_prev_accept[s]);
                        y_hat[s] =
                            y_[s] + beta * (y_[s] - y_prev[s]);
                    }
                });
                accel_theta = theta_next;
                accel_c_prev = c_k;
            } else {
                // Weak convexity can make the momentum sequence cycle;
                // the restart drops it and continues from the accepted
                // point (theta back to 1, hats snapped to the iterate).
                accel_theta = 1.0;
                accel_c_prev = c_k;
                z_hat = z_;
                y_hat = y_;
                ++accel_restarts;
            }
        }

        info.iterations = iter;

        const bool check_now = (iter % settings_.checkInterval == 0) ||
            iter == settings_.maxIter;
        const bool adapt_now = settings_.adaptiveRho &&
            settings_.adaptiveRhoInterval > 0 &&
            (iter % settings_.adaptiveRhoInterval == 0);
        if (!check_now && !adapt_now)
            continue;

        if (hasNonFinite(x_) || hasNonFinite(y_) || hasNonFinite(z_)) {
            if (try_recover(iter, "non-finite iterates"))
                continue;
            roll_back();  // never hand back a poisoned iterate
            info.status = SolveStatus::NumericalError;
            break;
        }

        // Unscale the iterates for residuals and certificates.
        Vector x_u(static_cast<std::size_t>(n_));
        Vector y_u(static_cast<std::size_t>(m_));
        Vector z_u(static_cast<std::size_t>(m_));
        for (Index j = 0; j < n_; ++j)
            x_u[static_cast<std::size_t>(j)] =
                scaling_.d[static_cast<std::size_t>(j)] *
                x_[static_cast<std::size_t>(j)];
        for (Index i = 0; i < m_; ++i) {
            const auto s = static_cast<std::size_t>(i);
            y_u[s] = scaling_.cInv * scaling_.e[s] * y_[s];
            z_u[s] = scaling_.eInv[s] * z_[s];
        }

        Real prim_res = 0.0, dual_res = 0.0, eps_prim = 0.0,
             eps_dual = 0.0;
        computeResiduals(x_u, y_u, z_u, prim_res, dual_res, eps_prim,
                         eps_dual);
        info.primRes = prim_res;
        info.dualRes = dual_res;
        info.telemetry.pushResidual(iter, prim_res, dual_res);

        if (settings_.recordTrace) {
            IterationRecord rec;
            rec.iteration = iter;
            rec.primRes = prim_res;
            rec.dualRes = dual_res;
            rec.rho = rhoBar_;
            rec.pcgIterations = kstats.pcgIterations;
            result.trace.push_back(rec);
        }

        if (ft.watchdog) {
            const DivergenceWatchdog::Verdict verdict =
                watchdog.observe(prim_res, dual_res);
            if (verdict == DivergenceWatchdog::Verdict::Diverged) {
                if (try_recover(iter, "residual divergence"))
                    continue;
                roll_back();
                info.status = SolveStatus::NumericalError;
                break;
            }
            if (verdict == DivergenceWatchdog::Verdict::Stalled) {
                // One recovery shot; out of attempts the solve just
                // runs to its iteration budget.
                if (try_recover(iter, "residual stall"))
                    continue;
            } else {
                checkpoint.capture(x_, y_, z_, iter);
            }
        }

        if (check_now) {
            if (prim_res <= eps_prim && dual_res <= eps_dual) {
                info.status = SolveStatus::Solved;
                break;
            }
            // Infeasibility certificates from the iterate deltas.
            for (Index j = 0; j < n_; ++j)
                delta_x[static_cast<std::size_t>(j)] =
                    scaling_.d[static_cast<std::size_t>(j)] *
                    (x_[static_cast<std::size_t>(j)] -
                     x_prev[static_cast<std::size_t>(j)]);
            for (Index i = 0; i < m_; ++i) {
                const auto s = static_cast<std::size_t>(i);
                delta_y[s] = scaling_.cInv * scaling_.e[s] *
                    (y_[s] - y_prev[s]);
            }
            if (checkPrimalInfeasibility(delta_y)) {
                info.status = SolveStatus::PrimalInfeasible;
                break;
            }
            if (checkDualInfeasibility(delta_x)) {
                info.status = SolveStatus::DualInfeasible;
                break;
            }
        }

        if (adapt_now && adaptRho(prim_res, dual_res, x_u, y_u, z_u)) {
            ++info.rhoUpdates;
            // The momentum metric is rho-weighted; a new rho vector
            // invalidates both c_k history and the extrapolation.
            reset_momentum();
        }
    }

    // Exit paths that break out between termination checks (time
    // limit, iteration cap) may carry iterates an injected fault
    // poisoned after the last screen — never return them.
    if (hasNonFinite(x_) || hasNonFinite(y_) || hasNonFinite(z_)) {
        roll_back();
        if (info.status != SolveStatus::TimeLimitReached)
            info.status = SolveStatus::NumericalError;
    }

    // Final unscaled solution.
    result.x.resize(static_cast<std::size_t>(n_));
    result.y.resize(static_cast<std::size_t>(m_));
    result.z.resize(static_cast<std::size_t>(m_));
    for (Index j = 0; j < n_; ++j)
        result.x[static_cast<std::size_t>(j)] =
            scaling_.d[static_cast<std::size_t>(j)] *
            x_[static_cast<std::size_t>(j)];
    for (Index i = 0; i < m_; ++i) {
        const auto s = static_cast<std::size_t>(i);
        result.y[s] = scaling_.cInv * scaling_.e[s] * y_[s];
        result.z[s] = scaling_.eInv[s] * z_[s];
    }
    info.objective = original_.objective(result.x);

    if (settings_.polish && info.status == SolveStatus::Solved)
        result.polish = polishSolution(original_, settings_, result);

    info.solveTime = solve_timer.seconds();
    info.kktSolveTime = kkt_timer.totalSeconds();
    if (const HotPathProfiler* profiler = kkt_->hotPathProfiler())
        info.hotPath = profiler->snapshot();

    // Per-solve telemetry record + process-wide aggregates. The
    // registry adds happen once per solve (never per iteration), so
    // their cost is invisible next to even one KKT step.
    SolveTelemetry& tele = info.telemetry;
    tele.backend = backendKindName(accel_on
                                       ? BackendKind::AdmmAccelerated
                                       : BackendKind::Admm);
    tele.restarts = accel_restarts;
    tele.iterations = info.iterations;
    tele.pcgIterationsTotal = info.pcgIterationsTotal;
    tele.pcgItersPerSolve = tele.kktSolves > 0
        ? static_cast<Real>(tele.pcgIterationsTotal) /
            static_cast<Real>(tele.kktSolves)
        : 0.0;
    tele.isaLevel = isaLevelName(simd::activeIsaLevel());
    tele.precision = precisionModeName(
        settings_.backend == KktBackend::IndirectPcg
            ? effectivePcgSettings().precision
            : PrecisionMode::Fp64);
    tele.refinementSweeps = info.refinementSweepsTotal;
    tele.fp64Rescues = info.fp64Rescues;
    tele.recoveryEvents =
        static_cast<Count>(info.recovery.events.size());
    tele.faultsInjected = faultInjector_ != nullptr
        ? faultInjector_->faultsInjected() - faults_before
        : 0;
    tele.solveSeconds = info.solveTime;
    {
        using telemetry::MetricsRegistry;
        MetricsRegistry& registry = MetricsRegistry::global();
        static telemetry::Counter& solves = registry.counter(
            "rsqp_admm_solves_total", "Completed OsqpSolver::solve "
            "calls");
        static telemetry::Counter& iterations = registry.counter(
            "rsqp_admm_iterations_total", "ADMM iterations executed");
        static telemetry::Counter& pcg_iterations = registry.counter(
            "rsqp_admm_pcg_iterations_total",
            "Inner PCG iterations executed");
        static telemetry::Counter& refinement_sweeps = registry.counter(
            "rsqp_admm_refinement_sweeps_total",
            "fp64 iterative-refinement sweeps of mixed-precision PCG");
        static telemetry::Counter& rho_updates = registry.counter(
            "rsqp_admm_rho_updates_total", "Adaptive-rho refactors");
        static telemetry::Counter& recoveries = registry.counter(
            "rsqp_admm_recovery_events_total",
            "Watchdog/fallback recovery actions");
        static telemetry::Histogram& solve_ns = registry.histogram(
            "rsqp_admm_solve_ns", "Wall-clock nanoseconds per solve");
        solves.increment();
        iterations.add(static_cast<std::uint64_t>(info.iterations));
        pcg_iterations.add(
            static_cast<std::uint64_t>(info.pcgIterationsTotal));
        refinement_sweeps.add(
            static_cast<std::uint64_t>(info.refinementSweepsTotal));
        rho_updates.add(static_cast<std::uint64_t>(info.rhoUpdates));
        recoveries.add(
            static_cast<std::uint64_t>(tele.recoveryEvents));
        solve_ns.observe(
            static_cast<std::uint64_t>(info.solveTime * 1e9));
    }

    lastInfo_ = info;
    return result;
}

} // namespace rsqp
