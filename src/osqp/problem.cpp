#include "problem.hpp"

#include "common/logging.hpp"
#include "linalg/vector_ops.hpp"

namespace rsqp
{

Real
QpProblem::objective(const Vector& x) const
{
    Vector px;
    pUpper.spmvSymUpper(x, px);
    return 0.5 * dot(x, px) + dot(q, x);
}

void
QpProblem::validate() const
{
    const Index n = pUpper.cols();
    const Index m = a.rows();
    if (pUpper.rows() != n)
        RSQP_FATAL("P must be square, got ", pUpper.rows(), "x", n);
    if (static_cast<Index>(q.size()) != n)
        RSQP_FATAL("q length ", q.size(), " != n = ", n);
    if (a.cols() != n)
        RSQP_FATAL("A has ", a.cols(), " columns but n = ", n);
    if (static_cast<Index>(l.size()) != m ||
        static_cast<Index>(u.size()) != m)
        RSQP_FATAL("bound lengths must equal m = ", m);
    if (!pUpper.isValid() || !a.isValid())
        RSQP_FATAL("invalid sparse structure in problem data");
    for (Index c = 0; c < n; ++c)
        for (Index p = pUpper.colPtr()[c]; p < pUpper.colPtr()[c + 1]; ++p)
            if (pUpper.rowIdx()[p] > c)
                RSQP_FATAL("P must be given as its upper triangle");
    for (Index i = 0; i < m; ++i)
        if (l[static_cast<std::size_t>(i)] > u[static_cast<std::size_t>(i)])
            RSQP_FATAL("infeasible bounds at constraint ", i, ": l = ",
                       l[static_cast<std::size_t>(i)], " > u = ",
                       u[static_cast<std::size_t>(i)]);
}

} // namespace rsqp
