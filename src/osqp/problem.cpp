#include "problem.hpp"

#include "common/logging.hpp"
#include "linalg/vector_ops.hpp"
#include "osqp/validate.hpp"

namespace rsqp
{

Real
QpProblem::objective(const Vector& x) const
{
    Vector px;
    pUpper.spmvSymUpper(x, px);
    return 0.5 * dot(x, px) + dot(q, x);
}

void
QpProblem::validate() const
{
    // Throwing wrapper around the structured validator — kept for the
    // problem generators and I/O loaders, where malformed data is a
    // bug in *our* code. OsqpSolver/RsqpSolver instead consume
    // validateProblem() directly and report a typed InvalidProblem.
    const ValidationReport report = validateProblem(*this);
    if (!report.ok())
        RSQP_FATAL("invalid problem '", name, "':\n", report.describe());
}

} // namespace rsqp
