/**
 * @file
 * File-based solver front end: export any benchmark instance to the
 * RSQP-QP container, or solve a problem file with a chosen backend —
 * the command-line workflow for feeding external problems into the
 * library.
 *
 * Usage:
 *   solve_file export <domain> <size> <path>    write a problem file
 *   solve_file solve <path> [direct|indirect|fpga]
 */

#include <cstdio>
#include <cstring>

#include "rsqp_api.hpp"

using namespace rsqp;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  solve_file export <domain> <size> <path>\n"
                 "  solve_file solve <path> [direct|indirect|fpga]\n"
                 "domains: control lasso huber portfolio svm eqqp\n");
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 3)
        return usage();

    if (std::strcmp(argv[1], "export") == 0) {
        if (argc != 5)
            return usage();
        Domain domain = Domain::Svm;
        bool found = false;
        for (Domain d : allDomains())
            if (std::strcmp(argv[2], toString(d)) == 0) {
                domain = d;
                found = true;
            }
        if (!found)
            return usage();
        const Index size = std::atoi(argv[3]);
        const QpProblem qp = generateProblem(domain, size, 12345);
        saveQpProblem(argv[4], qp);
        std::printf("wrote %s: n=%d m=%d nnz=%lld\n", argv[4],
                    qp.numVariables(), qp.numConstraints(),
                    static_cast<long long>(qp.totalNnz()));
        return 0;
    }

    if (std::strcmp(argv[1], "solve") == 0) {
        const QpProblem qp = loadQpProblem(argv[2]);
        const char* backend = argc > 3 ? argv[3] : "direct";
        std::printf("loaded '%s': n=%d m=%d nnz=%lld\n",
                    qp.name.c_str(), qp.numVariables(),
                    qp.numConstraints(),
                    static_cast<long long>(qp.totalNnz()));

        OsqpSettings settings;
        settings.polish = true;
        Timer timer;
        if (std::strcmp(backend, "fpga") == 0) {
            settings.backend = KktBackend::IndirectPcg;
            CustomizeSettings custom;
            RsqpSolver solver(qp, settings, custom);
            const RsqpResult result = solver.solve();
            std::printf("fpga(%s): %s in %d iters, obj=%.8g\n"
                        "device time %.3f ms (%lld cycles @ %.0f MHz), "
                        "eta=%.3f, host wall %.1f ms\n",
                        result.archName.c_str(),
                        statusToString(result.status), result.iterations,
                        result.objective, result.deviceSeconds * 1e3,
                        static_cast<long long>(
                            result.machineStats.totalCycles),
                        result.fmaxMhz, result.eta,
                        timer.seconds() * 1e3);
            return result.status == SolveStatus::Solved ? 0 : 1;
        }
        settings.backend = std::strcmp(backend, "indirect") == 0
            ? KktBackend::IndirectPcg
            : KktBackend::DirectLdl;
        OsqpSolver solver(qp, settings);
        const OsqpResult result = solver.solve();
        std::printf("%s: %s in %d iters, obj=%.8g, prim=%.2e, "
                    "dual=%.2e, %.1f ms%s\n",
                    backend, statusToString(result.info.status),
                    result.info.iterations, result.info.objective,
                    result.info.primRes, result.info.dualRes,
                    result.info.solveTime * 1e3,
                    result.polish.adopted ? " (polished)" : "");
        return result.info.status == SolveStatus::Solved ? 0 : 1;
    }
    return usage();
}
