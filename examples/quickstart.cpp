/**
 * @file
 * Quickstart: define a small QP by hand, solve it on the CPU reference
 * solver and on a problem-customized simulated RSQP accelerator, and
 * compare the results.
 *
 *   minimize    (1/2) x' [[4,1],[1,2]] x + [1,1]' x
 *   subject to  1 <= x0 + x1 <= 1,   0 <= x0 <= 0.7,  0 <= x1 <= 0.7
 *
 * (the classic OSQP demo problem; optimum ~ (0.3, 0.7)).
 */

#include <cstdio>
#include <future>

#include "rsqp_api.hpp"

using namespace rsqp;

int
main()
{
    // --- 1. Problem data (P upper-triangular CSC via triplets) ----------
    QpProblem qp;
    TripletList p_triplets(2, 2);
    p_triplets.add(0, 0, 4.0);
    p_triplets.add(0, 1, 1.0);
    p_triplets.add(1, 1, 2.0);
    qp.pUpper = CscMatrix::fromTriplets(p_triplets);
    qp.q = {1.0, 1.0};

    TripletList a_triplets(3, 2);
    a_triplets.add(0, 0, 1.0);
    a_triplets.add(0, 1, 1.0);
    a_triplets.add(1, 0, 1.0);
    a_triplets.add(2, 1, 1.0);
    qp.a = CscMatrix::fromTriplets(a_triplets);
    qp.l = {1.0, 0.0, 0.0};
    qp.u = {1.0, 0.7, 0.7};
    qp.name = "quickstart";

    // --- 2. Reference CPU solve (direct LDL' backend) -------------------
    OsqpSettings settings;
    settings.epsAbs = 1e-5;
    settings.epsRel = 1e-5;
    OsqpSolver cpu(qp, settings);
    const OsqpResult ref = cpu.solve();
    std::printf("CPU   : status=%s x=(%.4f, %.4f) obj=%.6f iters=%d\n",
                statusToString(ref.info.status), ref.x[0], ref.x[1],
                ref.info.objective, ref.info.iterations);

    // --- 3. Accelerated solve on a customized architecture --------------
    settings.backend = KktBackend::IndirectPcg;
    CustomizeSettings custom;
    custom.c = 16;  // datapath width
    RsqpSolver fpga(qp, settings, custom);
    const RsqpResult acc = fpga.solve();
    std::printf("RSQP  : status=%s x=(%.4f, %.4f) obj=%.6f iters=%d\n",
                statusToString(acc.status), acc.x[0], acc.x[1], acc.objective,
                acc.iterations);
    std::printf("arch  : %s  eta=%.3f  fmax=%.0f MHz\n",
                acc.archName.c_str(), acc.eta, acc.fmaxMhz);
    std::printf("cycles: %lld  (%.2f us simulated device time)\n",
                static_cast<long long>(acc.machineStats.totalCycles),
                acc.deviceSeconds * 1e6);

    // --- 4. First-order backend knobs ------------------------------------
    // The host solve can also run on the other first-order engines:
    // Nesterov-accelerated ADMM (momentum with residual-based restart)
    // and restarted PDHG. BackendKind::Auto lets the per-problem
    // selector pick and arms a mid-solve switch-on-stall.
    OsqpSettings accel_settings = settings;
    accel_settings.backend = KktBackend::DirectLdl;
    accel_settings.firstOrder.method = BackendKind::AdmmAccelerated;
    accel_settings.firstOrder.accel.restartEta = 0.999;
    const OsqpResult acc_ref = makeBackend(qp, accel_settings)->solve();
    std::printf("accel : status=%s x=(%.4f, %.4f) obj=%.6f iters=%d\n",
                statusToString(acc_ref.info.status), acc_ref.x[0],
                acc_ref.x[1], acc_ref.info.objective,
                acc_ref.info.iterations);

    OsqpSettings pdhg_settings = accel_settings;
    pdhg_settings.firstOrder.method = BackendKind::Pdhg;
    pdhg_settings.firstOrder.pdhg.restart = PdhgRestart::Adaptive;
    const OsqpResult pdhg_ref = makeBackend(qp, pdhg_settings)->solve();
    std::printf("pdhg  : status=%s x=(%.4f, %.4f) obj=%.6f iters=%d "
                "restarts=%lld\n",
                statusToString(pdhg_ref.info.status), pdhg_ref.x[0],
                pdhg_ref.x[1], pdhg_ref.info.objective,
                pdhg_ref.info.iterations,
                static_cast<long long>(
                    pdhg_ref.info.telemetry.restarts));

    // --- 5. The same QP through the multi-client service ----------------
    // Serving path: open a session, describe the request in
    // SubmitOptions (admission class, deadline, warm start), and
    // either take a future (shown here) or pass submitAsync a
    // callback (see examples/async_service.cpp).
    SolverService service;
    const SessionId session = service.openSession();
    SubmitOptions options;
    options.admissionClass = AdmissionClass::Interactive;
    std::future<SessionResult> pending =
        service.submit(session, qp, options);
    const SessionResult served = pending.get();
    std::printf("serve : status=%s x=(%.4f, %.4f) obj=%.6f\n",
                statusToString(served.status), served.x[0],
                served.x[1], served.objective);

    // --- 6. The generated "hardware" artifact ---------------------------
    const std::string header =
        generateArchitectureHeader(fpga.config());
    std::printf("\ngenerated HLS architecture header (%zu bytes), "
                "first lines:\n",
                header.size());
    std::printf("%.*s...\n", 240, header.c_str());
    return 0;
}
