/**
 * @file
 * Model-predictive-control example: a receding-horizon controller
 * solving one QP per control step on a single generated architecture.
 *
 * This is the deployment pattern the paper's amortization argument
 * targets: the sparsity structure is fixed by the plant model, so the
 * (expensive, offline) customization is reused every step, while q and
 * the bounds change with the measured state.
 */

#include <cmath>
#include <cstdio>

#include "rsqp_api.hpp"

using namespace rsqp;

int
main()
{
    // Plant + horizon are fixed -> one QP structure for the whole run.
    const Index nx = 8;
    Rng rng(2024);
    QpProblem qp = generateControl(nx, rng);
    std::printf("MPC problem: n=%d variables, m=%d constraints, "
                "nnz=%lld\n",
                qp.numVariables(), qp.numConstraints(),
                static_cast<long long>(qp.totalNnz()));

    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;

    // Offline: customize the architecture once.
    Timer setup_timer;
    CustomizeSettings custom;
    custom.c = 32;
    RsqpSolver controller(qp, settings, custom);
    std::printf("architecture %s generated in %.1f ms (offline)\n",
                controller.config().name().c_str(),
                setup_timer.seconds() * 1e3);
    std::printf("eta = %.3f\n", controller.customization().eta());

    // Online: closed-loop control. Each step perturbs the tracking
    // cost (new reference) and re-solves with a warm start.
    const int steps = 10;
    Count total_cycles = 0;
    Index total_iters = 0;
    RsqpResult result = controller.solve();
    for (int step = 0; step < steps; ++step) {
        Vector q = qp.q;
        for (std::size_t j = 0; j < q.size(); ++j)
            q[j] = 0.05 * std::sin(0.3 * step + 0.01 *
                                   static_cast<Real>(j));
        controller.updateLinearCost(q);
        controller.warmStart(result.x, result.y);
        result = controller.solve();
        total_cycles += result.machineStats.totalCycles;
        total_iters += result.iterations;
        std::printf("step %2d: %-9s iters=%3d  device=%7.1f us  "
                    "u0=%+.4f\n",
                    step, statusToString(result.status), result.iterations,
                    result.deviceSeconds * 1e6,
                    result.x[static_cast<std::size_t>(
                        10 * nx)]);  // first input variable
    }
    std::printf("\ntotals: %d ADMM iterations, %lld device cycles, "
                "%.2f ms simulated control time for %d steps\n",
                total_iters, static_cast<long long>(total_cycles),
                static_cast<double>(total_cycles) /
                    (result.fmaxMhz * 1e3),
                steps);
    return 0;
}
