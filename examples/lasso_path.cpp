/**
 * @file
 * Lasso regularization path: sweep the l1 penalty from loose to tight
 * on one generated architecture, warm starting every solve — the
 * classic parametric sequence for data-assimilation workloads (one of
 * the application domains motivating the paper).
 *
 * Only q changes along the path (the penalty enters through the linear
 * cost on the t variables), so the sparsity structure — and therefore
 * the customized hardware — is reused for the whole sweep.
 */

#include <cmath>
#include <cstdio>

#include "rsqp_api.hpp"

using namespace rsqp;

int
main()
{
    const Index features = 40;
    Rng rng(31);
    QpProblem qp = generateLasso(features, rng);
    const Index n_tot = qp.numVariables();
    const Index md = n_tot - 2 * features;  // data rows
    std::printf("lasso: %d features, %d data rows, nnz=%lld\n",
                features, md, static_cast<long long>(qp.totalNnz()));

    // The generator's lambda is the largest q entry on the t block.
    Real lambda_max = 0.0;
    for (Index j = features + md; j < n_tot; ++j)
        lambda_max = std::max(lambda_max,
                              qp.q[static_cast<std::size_t>(j)]);
    std::printf("lambda_max = %.4f\n\n", lambda_max);

    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    CustomizeSettings custom;
    custom.c = 32;
    RsqpSolver solver(qp, settings, custom);
    std::printf("architecture: %s (eta = %.3f)\n\n",
                solver.config().name().c_str(),
                solver.customization().eta());

    std::printf("%-10s %-9s %6s %12s %10s %9s\n", "lambda", "status",
                "iters", "device_us", "nonzeros", "obj");
    const int path_points = 12;
    RsqpResult result;
    bool warm = false;
    for (int k = 0; k < path_points; ++k) {
        // Geometric path from lambda_max down to lambda_max / 100.
        const Real lambda = lambda_max *
            std::pow(0.01, static_cast<Real>(k) / (path_points - 1));
        Vector q = qp.q;
        for (Index j = features + md; j < n_tot; ++j)
            q[static_cast<std::size_t>(j)] = lambda;
        solver.updateLinearCost(q);
        if (warm)
            solver.warmStart(result.x, result.y);
        result = solver.solve();
        warm = true;

        // Count the selected features (|x_j| above a small threshold).
        Index selected = 0;
        for (Index j = 0; j < features; ++j)
            if (std::abs(result.x[static_cast<std::size_t>(j)]) > 1e-4)
                ++selected;
        std::printf("%-10.4f %-9s %6d %12.1f %10d %9.3f\n", lambda,
                    statusToString(result.status), result.iterations,
                    result.deviceSeconds * 1e6, selected,
                    result.objective);
    }
    std::printf("\nthe support grows monotonically as lambda shrinks; "
                "every point reused the\nsame generated architecture "
                "with a warm start.\n");
    return 0;
}
