/**
 * @file
 * Sequential Quadratic Programming on the accelerator: the paper's
 * introduction names SQP subproblems as a prime consumer of fast QP
 * solves. This example minimizes a nonconvex objective under linear
 * constraints by solving a sequence of convex QP subproblems — all on
 * ONE generated architecture, because an SQP iteration changes only
 * the numeric values of P (the Hessian approximation) and q (the
 * gradient), never the sparsity structure.
 *
 *   minimize   f(x) = sum_i 100 (x_{i+1} - x_i^2)^2 + (1 - x_i)^2
 *   subject to sum_i x_i = n/2,   -2 <= x_i <= 2
 *
 * (a chained Rosenbrock valley with a coupling equality.)
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "rsqp_api.hpp"

using namespace rsqp;

namespace
{

constexpr Index kDim = 12;

/** Rosenbrock chain value. */
Real
objective(const Vector& x)
{
    Real f = 0.0;
    for (Index i = 0; i + 1 < kDim; ++i) {
        const Real a = x[i + 1] - x[i] * x[i];
        const Real b = 1.0 - x[i];
        f += 100.0 * a * a + b * b;
    }
    return f;
}

/** Gradient of the Rosenbrock chain. */
Vector
gradient(const Vector& x)
{
    Vector g(kDim, 0.0);
    for (Index i = 0; i + 1 < kDim; ++i) {
        const Real a = x[i + 1] - x[i] * x[i];
        g[i] += -400.0 * x[i] * a - 2.0 * (1.0 - x[i]);
        g[i + 1] += 200.0 * a;
    }
    return g;
}

/**
 * Gauss-Newton Hessian on the fixed tridiagonal pattern (diagonal +
 * superdiagonal, upper storage). As a sum of residual-Jacobian outer
 * products plus a small regularizer it is positive definite by
 * construction — the convex model SQP needs.
 *
 * Residuals: a_i = x_{i+1} - x_i^2 (weight 100), b_i = 1 - x_i.
 */
std::vector<Real>
hessianValues(const Vector& x)
{
    Vector diag(kDim, 1.0);  // regularizer
    Vector off(kDim, 0.0);   // off[j] = H(j-1, j)
    for (Index i = 0; i + 1 < kDim; ++i) {
        // 200 * (da_i)'(da_i) with da_i = [-2 x_i, 1].
        diag[i] += 800.0 * x[i] * x[i];
        diag[i + 1] += 200.0;
        off[i + 1] += -400.0 * x[i];
        // 2 * (db_i)'(db_i) with db_i = [-1].
        diag[i] += 2.0;
    }
    // Pattern order matches the CSC upper layout built in main():
    // column 0: (0,0); column j>0: (j-1,j) then (j,j).
    std::vector<Real> values;
    for (Index j = 0; j < kDim; ++j) {
        if (j > 0)
            values.push_back(off[j]);
        values.push_back(diag[j]);
    }
    return values;
}

} // namespace

int
main()
{
    // Fixed QP skeleton: tridiagonal P, budget equality + boxes.
    QpBuilder builder(kDim);
    for (Index j = 0; j < kDim; ++j) {
        builder.quadraticCost(j, j, 1.0);
        if (j > 0)
            builder.quadraticCost(j - 1, j, 0.1);
    }
    std::vector<std::pair<Index, Real>> budget;
    for (Index j = 0; j < kDim; ++j)
        budget.emplace_back(j, 1.0);
    builder.addEquality(static_cast<Real>(kDim) / 2.0, budget);
    for (Index j = 0; j < kDim; ++j)
        builder.addBox(j, -2.0, 2.0);
    QpProblem qp = builder.build("sqp_subproblem");

    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;
    settings.epsAbs = 1e-6;
    settings.epsRel = 1e-6;
    CustomizeSettings custom;
    custom.c = 16;
    RsqpSolver solver(qp, settings, custom);
    std::printf("architecture %s generated once for the whole SQP "
                "run\n\n",
                solver.config().name().c_str());

    Vector x(kDim, 0.0);  // feasible-ish start
    for (Index j = 0; j < kDim; ++j)
        x[j] = 0.5;

    std::printf("%4s %14s %12s %10s %6s\n", "it", "f(x)", "|step|",
                "device_us", "qp_it");
    Count total_cycles = 0;
    for (int iter = 0; iter < 15; ++iter) {
        // Build the local QP: min 0.5 d'Hd + g'd around x, with the
        // original constraints shifted by x.
        solver.updateMatrixValues(hessianValues(x), {});
        solver.updateLinearCost(gradient(x));
        Vector l = qp.l;
        Vector u = qp.u;
        // Equality row: sum(x + d) = n/2  ->  sum d = n/2 - sum x.
        Real sum_x = 0.0;
        for (Real v : x)
            sum_x += v;
        l[0] = u[0] = static_cast<Real>(kDim) / 2.0 - sum_x;
        // Boxes: -2 <= x + d <= 2.
        for (Index j = 0; j < kDim; ++j) {
            l[1 + j] = -2.0 - x[j];
            u[1 + j] = 2.0 - x[j];
        }
        solver.updateBounds(l, u);

        const RsqpResult step = solver.solve();
        if (step.status != SolveStatus::Solved) {
            std::printf("subproblem failed: %s\n",
                        statusToString(step.status));
            return 1;
        }
        total_cycles += step.machineStats.totalCycles;

        // Damped update with a simple backtracking line search.
        Real alpha = 1.0;
        const Real f0 = objective(x);
        Vector trial(kDim);
        while (alpha > 1e-4) {
            for (Index j = 0; j < kDim; ++j)
                trial[j] = x[j] + alpha * step.x[j];
            if (objective(trial) < f0)
                break;
            alpha *= 0.5;
        }
        Real step_norm = 0.0;
        for (Index j = 0; j < kDim; ++j) {
            const Real dx = alpha * step.x[j];
            step_norm = std::max(step_norm, std::abs(dx));
            x[j] += dx;
        }
        std::printf("%4d %14.6f %12.3e %10.1f %6d\n", iter,
                    objective(x), step_norm,
                    step.deviceSeconds * 1e6, step.iterations);
        if (step_norm < 1e-6)
            break;
    }
    std::printf("\nfinal f(x) = %.8f; %lld total device cycles for "
                "the SQP run\n",
                objective(x), static_cast<long long>(total_cycles));
    std::printf("(one architecture, %d parametric re-solves — the "
                "paper's SQP use case)\n", 15);
    return 0;
}
