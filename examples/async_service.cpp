/**
 * @file
 * The async service API end to end: callback submission with
 * completion tokens, cancellation of queued requests, admission
 * classes, and the class-aware retry-after hint on overflow.
 *
 * Three short acts against one single-core service:
 *
 *   1. submitAsync + callback — every request resolves its callback
 *      exactly once, off the service lock, with no future in sight.
 *   2. Cancellation — tokens revoke requests that still wait in the
 *      queue (SolveStatus::Cancelled); requests already launched run
 *      to completion and cancel() reports false.
 *   3. Overflow — a Batch burst past the queue bound comes back
 *      Rejected immediately, each rejection carrying a
 *      retryAfterSeconds hint sized to the class's backlog.
 *
 * Exits nonzero if any callback is lost or duplicated, or if the
 * terminal statuses don't add up — the exactly-once contract this
 * example demonstrates.
 */

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <vector>

#include "rsqp_api.hpp"

using namespace rsqp;

namespace
{

/** Counts callbacks and lets the main thread wait for the last one. */
class Latch
{
  public:
    explicit Latch(std::size_t expected) : expected_(expected) {}

    void arrive()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++arrived_;
        if (arrived_ >= expected_)
            done_.notify_all();
    }

    void wait()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return arrived_ >= expected_; });
    }

    std::size_t count()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return arrived_;
    }

  private:
    std::mutex mutex_;
    std::condition_variable done_;
    std::size_t expected_;
    std::size_t arrived_ = 0;
};

QpProblem
perturbed(const QpProblem& base, int request)
{
    QpProblem qp = base;
    for (Real& v : qp.q)
        v += 0.01 * static_cast<Real>(request + 1);
    return qp;
}

} // namespace

int
main()
{
    Rng rng(7);
    const QpProblem qp = generateControl(4, rng);

    // One core, one slot, a short queue: small enough that act 3 can
    // overflow it from a single burst.
    ServiceConfig config;
    config.fleet.coreCount = 1;
    config.fleet.slotsPerCore = 1;
    config.maxQueueDepth = 4;
    SolverService service(config);

    SessionConfig sessionConfig;
    sessionConfig.custom.c = 16;
    const SessionId session = service.openSession(sessionConfig);

    // --- 1. Callback submission -----------------------------------------
    // No future, no polling: the callback IS the completion path. It
    // runs off the service lock, so it may inspect the service (here:
    // per-request results) without deadlocking.
    {
        const int requests = 3;
        Latch latch(requests);
        std::vector<SessionResult> results(requests);
        for (int r = 0; r < requests; ++r) {
            SubmitOptions options;
            options.admissionClass = AdmissionClass::Realtime;
            service.submitAsync(session, perturbed(qp, r), options,
                                [&latch, &results, r](SessionResult res) {
                                    results[r] = std::move(res);
                                    latch.arrive();
                                });
        }
        latch.wait();
        for (int r = 0; r < requests; ++r)
            std::printf("act1 request %d: %s, %d iterations, %s\n", r,
                        statusToString(results[r].status),
                        results[r].iterations,
                        results[r].parametricReuse ? "parametric"
                                                   : "cold");
        if (latch.count() != requests)
            return 1;
    }

    // --- 2. Cancellation -------------------------------------------------
    // Submit a burst, then immediately try to cancel every token. The
    // request that already launched runs to completion (cancel ->
    // false); requests still queued resolve Cancelled (cancel -> true),
    // exactly once, without ever touching the session's solver state.
    {
        const int requests = 4;
        Latch latch(requests);
        std::vector<SolveStatus> statuses(requests,
                                          SolveStatus::Unsolved);
        std::vector<RequestToken> tokens;
        for (int r = 0; r < requests; ++r) {
            SubmitOptions options;
            options.admissionClass = AdmissionClass::Interactive;
            tokens.push_back(service.submitAsync(
                session, perturbed(qp, 10 + r), options,
                [&latch, &statuses, r](SessionResult res) {
                    statuses[r] = res.status;
                    latch.arrive();
                }));
        }
        int revoked = 0;
        for (const RequestToken& token : tokens)
            if (service.cancel(token))
                ++revoked;
        latch.wait();

        int cancelled = 0;
        int finished = 0;
        for (int r = 0; r < requests; ++r) {
            std::printf("act2 request %d: %s\n", r,
                        statusToString(statuses[r]));
            if (statuses[r] == SolveStatus::Cancelled)
                ++cancelled;
            else
                ++finished;
        }
        std::printf("act2: %d revoked, %d ran to completion\n",
                    revoked, finished);
        // cancel() returning true and a Cancelled callback are the
        // same event — the counts must agree, and nothing may be lost.
        if (latch.count() != requests || cancelled != revoked ||
            cancelled + finished != requests)
            return 1;
    }

    // --- 3. Overflow and the retry-after hint ---------------------------
    // Ten Batch requests against a queue bound of four: the overflow
    // resolves Rejected on the submitting thread itself, each carrying
    // a hint that grows with the class's backlog — back off, then
    // come back.
    {
        const int requests = 10;
        Latch latch(requests);
        std::vector<SessionResult> results(requests);
        for (int r = 0; r < requests; ++r) {
            SubmitOptions options;
            options.admissionClass = AdmissionClass::Batch;
            service.submitAsync(session, perturbed(qp, 20 + r), options,
                                [&latch, &results, r](SessionResult res) {
                                    results[r] = std::move(res);
                                    latch.arrive();
                                });
        }
        latch.wait();

        int rejected = 0;
        for (int r = 0; r < requests; ++r) {
            if (results[r].status != SolveStatus::Rejected)
                continue;
            ++rejected;
            std::printf("act3 request %d rejected, retry after "
                        "%.3f ms\n",
                        r, results[r].retryAfterSeconds * 1e3);
            if (results[r].retryAfterSeconds <= 0.0)
                return 1;
        }
        std::printf("act3: %d of %d rejected with hints\n", rejected,
                    requests);
        if (latch.count() != requests || rejected == 0)
            return 1;
    }

    const ServiceStats stats = service.stats();
    std::printf("service: %lld submitted = %lld completed + %lld "
                "rejected + %lld cancelled\n",
                static_cast<long long>(stats.submitted),
                static_cast<long long>(stats.completed),
                static_cast<long long>(stats.rejected),
                static_cast<long long>(stats.cancelled));
    // Exactly-once, in aggregate: every admitted or rejected request
    // resolved through precisely one terminal counter.
    if (stats.completed + stats.rejected + stats.cancelled +
            stats.shed + stats.expired !=
        stats.submitted)
        return 1;
    return 0;
}
