/**
 * @file
 * Receding-horizon MPC through the service layer: a controller client
 * opens one session, solves a QP every control step (new reference in
 * q, new state bounds), and the service routes every step after the
 * first through the parametric fast path — the sparsity structure is
 * fixed by the plant, so the customization pipeline runs exactly once
 * for the whole closed-loop run. A second controller instance ("cold
 * restart") then attaches to the same service and pays only the cache
 * thaw, not the pipeline.
 *
 * Exits nonzero if the service reports more than one customization
 * cache miss — the amortization contract this example demonstrates.
 */

#include <cmath>
#include <cstdio>

#include "rsqp_api.hpp"

using namespace rsqp;

namespace
{

/** New measurement -> new tracking cost, same structure. */
QpProblem
stepProblem(const QpProblem& base, int step)
{
    QpProblem qp = base;
    for (std::size_t j = 0; j < qp.q.size(); ++j)
        qp.q[j] = 0.05 * std::sin(0.3 * step +
                                  0.01 * static_cast<Real>(j));
    return qp;
}

} // namespace

int
main()
{
    // Plant + horizon are fixed -> one QP structure for the whole run.
    Rng rng(2024);
    const QpProblem qp = generateControl(8, rng);
    std::printf("MPC problem: n=%d variables, m=%d constraints\n",
                qp.numVariables(), qp.numConstraints());

    SolverService service;
    SessionConfig config;
    config.custom.c = 32;

    // Controller #1: the first step pays the full customization; every
    // later step is a parametric re-solve with warm start. A control
    // loop is latency-critical, so each request rides the Realtime
    // admission class — under mixed load the service dispatches it
    // ahead of Interactive and Batch work and never sheds it.
    SubmitOptions realtime;
    realtime.admissionClass = AdmissionClass::Realtime;
    const SessionId controller = service.openSession(config);
    const int steps = 10;
    for (int step = 0; step < steps; ++step) {
        const SessionResult result =
            service.solve(controller, stepProblem(qp, step), realtime);
        if (result.status != SolveStatus::Solved) {
            std::printf("step %d failed: %s\n", step,
                        statusToString(result.status));
            return 1;
        }
        std::printf("step %2d: iters=%3d  setup=%7.2f us  "
                    "device=%7.1f us  %s%s\n",
                    step, result.iterations,
                    result.setupSeconds * 1e6,
                    result.deviceSeconds * 1e6,
                    result.parametricReuse ? "parametric"
                    : result.cacheHit     ? "cache-hit"
                                          : "cold",
                    result.warmStarted ? "+warm" : "");
    }

    // Controller #2: a process restart in real deployments. The
    // structure is already in the cache, so setup skips the pipeline.
    const SessionId restarted = service.openSession(config);
    const SessionResult rewarm =
        service.solve(restarted, stepProblem(qp, 0), realtime);
    std::printf("restarted controller: %s, setup=%.2f us\n",
                rewarm.cacheHit ? "cache-hit" : "MISS",
                rewarm.setupSeconds * 1e6);

    const SessionStats loop = service.sessionStats(controller);
    const ServiceStats stats = service.stats();
    std::printf("loop session: %lld solves, %lld parametric, "
                "%lld rebuilds\n",
                static_cast<long long>(loop.solves),
                static_cast<long long>(loop.parametricSolves),
                static_cast<long long>(loop.rebuilds));
    std::printf("service cache: %lld hits, %lld misses\n",
                static_cast<long long>(stats.cache.hits),
                static_cast<long long>(stats.cache.misses));

    // The whole point: one structure, one customization — ever.
    if (stats.cache.misses != 1 || !rewarm.cacheHit ||
        loop.parametricSolves != steps - 1) {
        std::printf("amortization contract violated\n");
        return 1;
    }
    return 0;
}
