/**
 * @file
 * Portfolio-optimization backtest: the paper's amortization example.
 * A trading strategy re-solves the same Markowitz QP structure with a
 * new expected-return vector every rebalancing period; the hardware
 * generation cost is paid once and amortized over the whole backtest
 * (the paper cites 120 000 solves over 2 years of data).
 */

#include <cstdio>

#include "rsqp_api.hpp"

using namespace rsqp;

int
main()
{
    const Index assets = 60;
    Rng rng(7);
    QpProblem qp = generatePortfolio(assets, rng);
    std::printf("portfolio QP: %d assets (+%d factors), m=%d, "
                "nnz=%lld\n",
                assets, qp.numVariables() - assets,
                qp.numConstraints(),
                static_cast<long long>(qp.totalNnz()));

    OsqpSettings settings;
    settings.backend = KktBackend::IndirectPcg;

    // Offline customization (in deployment: HLS + place&route, hours;
    // here: the simulated equivalent, milliseconds).
    CustomizeSettings custom;
    custom.c = 64;
    RsqpSolver solver(qp, settings, custom);
    std::printf("generated architecture: %s (eta = %.3f, fmax = %.0f "
                "MHz)\n\n",
                solver.config().name().c_str(),
                solver.customization().eta(),
                estimateFmaxMhz(solver.config()));

    // Backtest: a random walk of expected returns; rebalance daily.
    const int periods = 25;
    Vector mu(static_cast<std::size_t>(assets));
    for (Real& v : mu)
        v = rng.normal(0.0, 0.2);

    double device_seconds_total = 0.0;
    RsqpResult result = solver.solve();
    Real prev_top_weight = 0.0;
    for (int t = 0; t < periods; ++t) {
        // Returns drift.
        for (Real& v : mu)
            v += rng.normal(0.0, 0.05);
        Vector q = qp.q;
        for (Index j = 0; j < assets; ++j)
            q[static_cast<std::size_t>(j)] = -mu[
                static_cast<std::size_t>(j)];
        solver.updateLinearCost(q);
        solver.warmStart(result.x, result.y);
        result = solver.solve();
        device_seconds_total += result.deviceSeconds;

        // Portfolio summary: largest position.
        Real top = 0.0;
        Index top_asset = 0;
        for (Index j = 0; j < assets; ++j) {
            if (result.x[static_cast<std::size_t>(j)] > top) {
                top = result.x[static_cast<std::size_t>(j)];
                top_asset = j;
            }
        }
        if (t % 5 == 0 || t == periods - 1)
            std::printf("period %2d: %-9s iters=%3d  device=%7.1f us  "
                        "top asset #%d (%.1f %%)\n",
                        t, statusToString(result.status), result.iterations,
                        result.deviceSeconds * 1e6, top_asset,
                        100.0 * top);
        prev_top_weight = top;
    }
    (void)prev_top_weight;

    std::printf("\nbacktest of %d periods: %.2f ms simulated device "
                "time total (%.1f us/solve)\n",
                periods, device_seconds_total * 1e3,
                device_seconds_total / periods * 1e6);
    std::printf("paper's amortization: ~120000 such solves repay the "
                "2-5 h CAD run\n");
    return 0;
}
