/**
 * @file
 * Backend comparison: one QP, every first-order engine.
 *
 * Solves a single control-domain QP (tall, mixed equality/inequality
 * constraint set — the shape the backend selector routes to PDHG)
 * with each BackendKind through the makeBackend factory and prints an
 * iteration/latency table, plus the selector's reasoning: the feature
 * vector it extracted and the engine it picked.
 *
 * The solves run with adaptiveRho off so every engine brings its own
 * step-size policy: plain ADMM is the fixed-penalty baseline, the
 * accelerated variant adds Nesterov momentum with restart, PDHG
 * adapts its primal weight at restarts, and Auto starts from the
 * selector's pick with a mid-solve switch armed.
 */

#include <cstdio>

#include "backends/backend_driver.hpp"
#include "backends/backend_selector.hpp"
#include "rsqp_api.hpp"

using namespace rsqp;

int
main()
{
    const QpProblem qp = generateProblem(Domain::Control, 30, 7);
    std::printf("problem: %s  n=%d m=%d nnz=%lld\n", qp.name.c_str(),
                qp.numVariables(), qp.numConstraints(),
                static_cast<long long>(qp.totalNnz()));

    // What the selector sees, and what it would pick.
    const BackendFeatures features = computeBackendFeatures(qp);
    const SelectorConfig selector_defaults;
    std::printf("features: equality=%.2f loose=%.2f tall=%.2f\n",
                features.equalityFraction, features.looseFraction,
                features.tallRatio);
    std::printf("selector pick: %s\n\n",
                backendKindName(chooseBackend(features,
                                              selector_defaults)));

    OsqpSettings settings;
    settings.adaptiveRho = false;  // each engine's own step policy
    settings.maxIter = 20000;

    std::printf("%-12s %-12s %-10s %8s %8s %8s %10s %12s\n",
                "backend", "finished_on", "status", "iters",
                "restarts", "switches", "ms", "objective");
    for (BackendKind kind :
         {BackendKind::Admm, BackendKind::AdmmAccelerated,
          BackendKind::Pdhg, BackendKind::Auto}) {
        OsqpSettings run_settings = settings;
        run_settings.firstOrder.method = kind;
        std::unique_ptr<QpBackend> backend =
            makeBackend(qp, std::move(run_settings));
        const OsqpResult result = backend->solve();
        std::printf("%-12s %-12s %-10s %8d %8lld %8lld %10.2f %12.6f\n",
                    backendKindName(kind),
                    result.info.telemetry.backend.c_str(),
                    statusToString(result.info.status),
                    result.info.iterations,
                    static_cast<long long>(
                        result.info.telemetry.restarts),
                    static_cast<long long>(
                        result.info.telemetry.backendSwitches),
                    result.info.solveTime * 1e3,
                    result.info.objective);
    }
    return 0;
}
