/**
 * @file
 * Design-space explorer: walk a user-selectable benchmark problem
 * through the whole customization flow, printing the sparsity
 * encoding, the structure search, the CVB compression, the Table
 * 3-style candidate family, and the generated HLS routing snippet.
 *
 * Usage: design_explorer [domain] [size]
 *   domain in {control, lasso, huber, portfolio, svm, eqqp}
 */

#include <cstdio>
#include <cstring>
#include <iostream>

#include "rsqp_api.hpp"

using namespace rsqp;

namespace
{

Domain
parseDomain(const char* name)
{
    for (Domain domain : allDomains())
        if (std::strcmp(name, toString(domain)) == 0)
            return domain;
    std::fprintf(stderr, "unknown domain '%s'\n", name);
    std::exit(2);
}

} // namespace

int
main(int argc, char** argv)
{
    const Domain domain =
        argc > 1 ? parseDomain(argv[1]) : Domain::Svm;
    const Index size = argc > 2 ? std::atoi(argv[2])
                                : (domain == Domain::Control ? 10 : 60);

    QpProblem qp = generateProblem(domain, size, 99);
    std::printf("== %s (size %d): n=%d m=%d nnz=%lld ==\n\n",
                toString(domain), size, qp.numVariables(),
                qp.numConstraints(),
                static_cast<long long>(qp.totalNnz()));
    ruizEquilibrate(qp, 10);

    // 1. Sparsity encoding.
    const Index c = 64;
    const CsrMatrix a_csr = CsrMatrix::fromCsc(qp.a);
    const SparsityString a_str = encodeMatrix(a_csr, c);
    std::printf("A sparsity string (first 96 chars of %zu):\n  %.96s\n",
                a_str.length(), a_str.encoded.c_str());
    std::printf("character histogram:");
    for (const auto& [ch, count] : characterHistogram(a_str.encoded))
        std::printf(" %c=%lld", ch, static_cast<long long>(count));
    std::printf("\n\n");

    // 2. Structure search (E_p optimization).
    StructureSearchSettings search;
    search.targetSize = 4;
    const StructureSearchResult found =
        searchStructureSet(a_str, search);
    std::printf("structure search: baseline %lld slots (E_p=%lld) -> "
                "%s with %lld slots (E_p=%lld)\n\n",
                static_cast<long long>(found.baselineSlots),
                static_cast<long long>(found.baselineEp),
                found.set.name().c_str(),
                static_cast<long long>(found.chosenSlots),
                static_cast<long long>(found.chosenEp));

    // 3. CVB compression (E_c optimization).
    const Schedule schedule = scheduleString(a_str, found.set);
    const PackedMatrix packed =
        packMatrix(a_csr, a_str, schedule, found.set);
    const AccessRequirements req = buildAccessRequirements(packed);
    const CvbPlan plan = compressFirstFit(req);
    std::printf("CVB: L=%d elements, %d used; full duplication depth "
                "%d (E_c=%.1f) -> compressed depth %d (E_c=%.2f)\n\n",
                plan.length, req.usedElements(), plan.length,
                static_cast<double>(c), plan.depth, plan.ec());

    // 4. Match score and the Table 3-style design family.
    std::printf("match score eta for this matrix: %.3f\n\n",
                matchScore(schedule.nnz,
                           static_cast<Count>(a_csr.cols()),
                           schedule.ep,
                           std::max(Real(1.0), plan.ec())));
    std::printf("design-space family (Table 3 style):\n");
    std::printf("%-18s %6s %7s %9s %6s %7s %7s\n", "arch", "fmax",
                "dEta", "SpMV/us", "DSP", "FF", "LUT");
    for (const DesignPoint& point : exploreDesignSpace(qp))
        std::printf("%-18s %6.0f %7.3f %9.3f %6d %7d %7d\n",
                    point.name.c_str(), point.fmaxMhz, point.deltaEta,
                    point.spmvPerUs, point.resources.dsp,
                    point.resources.ff, point.resources.lut);

    // 5. Generated HLS routing logic (Figs. 4-5).
    std::printf("\ngenerated alignment switch for %s:\n",
                found.set.name().c_str());
    const std::string snippet = generateAlignmentSwitch(found.set);
    // Print at most ~20 lines.
    std::size_t pos = 0;
    for (int line = 0; line < 20 && pos < snippet.size(); ++line) {
        const std::size_t eol = snippet.find('\n', pos);
        std::printf("  %s\n",
                    snippet.substr(pos, eol - pos).c_str());
        pos = eol + 1;
    }
    if (pos < snippet.size())
        std::printf("  ... (%zu more bytes)\n", snippet.size() - pos);
    return 0;
}
